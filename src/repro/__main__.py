"""``python -m repro`` — shorthand for ``python -m repro.experiments``.

The experiments CLI is the package's only entry point; this alias just
saves the suffix (``python -m repro open_system``, ``python -m repro
status DIR --watch``, ...).
"""

import sys

from repro.experiments.__main__ import main

if __name__ == "__main__":
    main(sys.argv[1:])
