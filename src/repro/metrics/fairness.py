"""Fairness metrics (Section IV-D).

For each completed process: arrival ``a_i``, completion ``C_i``, and
isolated processing time ``t_i``.  Then

* flow time ``F_j = C_j − a_j``,
* **max-flow** ``max_j F_j`` — "if even one process is starving, this
  number will increase significantly",
* **max-stretch** ``max_j F_j / t_j`` — "the largest slowdown of a job",
* **average process time** — mean flow time of completed processes.

(Max-flow and max-stretch are from Bender, Chakrabarti & Muthukrishnan's
work on fairness for continuous job streams.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.metrics.stats import mean


def _completed(processes) -> list:
    done = [p for p in processes if p.completion is not None]
    if not done:
        raise ReproError("no completed processes to evaluate")
    return done


def max_flow(processes) -> float:
    """max_j (C_j - a_j) over completed processes."""
    return max(p.flow_time for p in _completed(processes))


def max_stretch(processes) -> float:
    """max_j (C_j - a_j) / t_j over completed processes.

    Raises:
        ReproError: if a completed process has no isolated time.
    """
    done = _completed(processes)
    stretches = []
    for p in done:
        if p.isolated_time <= 0:
            raise ReproError(
                f"process {p.pid} ({p.name}) has no isolated processing time"
            )
        stretches.append(p.flow_time / p.isolated_time)
    return max(stretches)


def average_process_time(processes) -> float:
    """Mean flow time of completed processes."""
    return mean(p.flow_time for p in _completed(processes))


def percent_decrease(baseline: float, tuned: float) -> float:
    """Percent decrease of *tuned* relative to *baseline*.

    Positive = improvement, matching Table 2's sign convention.
    """
    if baseline == 0:
        raise ReproError("percent_decrease with zero baseline")
    return 100.0 * (baseline - tuned) / baseline


@dataclass(frozen=True)
class FairnessReport:
    """The three Table 2 columns for one run."""

    max_flow: float
    max_stretch: float
    average_time: float
    completed: int

    def versus(self, baseline: "FairnessReport") -> "FairnessComparison":
        """Percent decreases relative to *baseline* (Table 2 rows)."""
        return FairnessComparison(
            percent_decrease(baseline.max_flow, self.max_flow),
            percent_decrease(baseline.max_stretch, self.max_stretch),
            percent_decrease(baseline.average_time, self.average_time),
        )


@dataclass(frozen=True)
class FairnessComparison:
    """Percent decreases over the stock-scheduler baseline."""

    max_flow_decrease: float
    max_stretch_decrease: float
    average_time_decrease: float


def fairness_report(processes) -> FairnessReport:
    """Compute all fairness metrics for one run's processes."""
    done = _completed(processes)
    return FairnessReport(
        max_flow(done),
        max_stretch(done),
        average_process_time(done),
        len(done),
    )
