"""Throughput: instructions committed over a time interval.

"Throughput was measured in terms of instructions committed over a time
interval (0% representing no improvement) ... the data is taken from
the first 400 seconds of the workload execution."  Phase-mark
instructions are included, as the paper notes theirs are.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.sim.executor import SimulationResult


def throughput(result: SimulationResult, horizon: float = 400.0) -> float:
    """Instructions committed in the first *horizon* seconds."""
    if horizon <= 0:
        raise ReproError(f"throughput horizon must be positive, got {horizon}")
    return result.instructions_before(horizon)


def throughput_improvement(
    baseline: SimulationResult,
    tuned: SimulationResult,
    horizon: float = 400.0,
) -> float:
    """Percent throughput improvement of *tuned* over *baseline*."""
    base = throughput(baseline, horizon)
    if base <= 0:
        raise ReproError("baseline committed no instructions")
    return 100.0 * (throughput(tuned, horizon) - base) / base


def throughput_series(
    result: SimulationResult, horizon: float = 400.0, bucket: float = 10.0
) -> list:
    """Instruction counts per *bucket*-second window over the horizon."""
    if bucket <= 0:
        raise ReproError(f"bucket must be positive, got {bucket}")
    windows = int(horizon // bucket)
    series = [0.0] * windows
    for second, count in result.throughput_buckets.items():
        index = int(second // bucket)
        if 0 <= index < windows:
            series[index] += count
    return series
