"""Space and time overhead metrics (Section IV-B).

Space overhead compares instrumented to original binary sizes across the
whole benchmark suite (Figure 3's box plots).  Time overhead compares a
baseline run against an identical run whose marks switch to "all cores"
(Figure 4) — the marks execute and make the same affinity API calls, but
never constrain the schedule, so the runtime difference is pure mark
cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.instrument.marker import MarkingStrategy
from repro.instrument.rewriter import instrument
from repro.metrics.stats import BoxPlot, box_plot, mean


@dataclass(frozen=True)
class SpaceOverheadReport:
    """Suite-wide space overhead of one technique.

    Attributes:
        strategy_name: e.g. ``"Loop[45]"``.
        per_benchmark: ``{name: fractional overhead}``.
        summary: five-number summary across benchmarks (Figure 3).
        mean_marks: average phase marks per benchmark.
        max_mark_bytes: size of the largest single mark.
    """

    strategy_name: str
    per_benchmark: dict
    summary: BoxPlot
    mean_marks: float
    max_mark_bytes: int


def space_overhead_report(
    benchmarks, strategy: MarkingStrategy
) -> SpaceOverheadReport:
    """Instrument every benchmark with *strategy* and report overheads.

    Args:
        benchmarks: iterable of
            :class:`~repro.workloads.synthetic.SyntheticBenchmark`.
    """
    per_benchmark = {}
    mark_counts = []
    max_mark = 0
    for benchmark in benchmarks:
        inst = instrument(benchmark.program, strategy)
        per_benchmark[benchmark.name] = inst.space_overhead
        mark_counts.append(len(inst.marks))
        for mark in inst.marks:
            max_mark = max(max_mark, mark.total_bytes)
    if not per_benchmark:
        raise ReproError("space_overhead_report over an empty suite")
    return SpaceOverheadReport(
        strategy.name,
        per_benchmark,
        box_plot(per_benchmark.values()),
        mean(mark_counts),
        max_mark,
    )


def time_overhead(baseline_result, marked_result, horizon: float = 400.0) -> float:
    """Fractional slowdown of the switch-to-all-cores run vs baseline.

    Both runs must use the same workload queues.  Measured on committed
    instructions over the horizon: with identical work and schedules,
    fewer instructions per interval means mark cycles displaced real
    work.
    """
    base = baseline_result.instructions_before(horizon)
    marked = marked_result.instructions_before(horizon)
    if base <= 0:
        raise ReproError("baseline committed no instructions")
    return max(0.0, (base - marked) / base)
