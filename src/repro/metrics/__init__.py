"""Metrics: throughput, fairness (Bender et al.), and overheads.

The paper evaluates with instructions-committed throughput over a time
interval (Section IV-C), the max-flow / max-stretch fairness metrics of
Bender, Chakrabarti & Muthukrishnan plus average process time
(Section IV-D), and space/time overheads (Section IV-B).  This package
computes all of them from simulation results.

Open-system runs add a fourth family: streaming latency percentiles
(p50/p95/p99 sojourn and wait time), queue-depth time series, and
per-class throughput under offered load (:mod:`repro.metrics.latency`).
"""

from repro.metrics.latency import (
    LatencySketch,
    QueueDepthSeries,
    per_class_throughput,
)
from repro.metrics.stats import BoxPlot, box_plot, geometric_mean
from repro.metrics.throughput import (
    throughput,
    throughput_improvement,
    throughput_series,
)
from repro.metrics.fairness import (
    FairnessReport,
    average_process_time,
    fairness_report,
    max_flow,
    max_stretch,
    percent_decrease,
)
from repro.metrics.overhead import (
    SpaceOverheadReport,
    space_overhead_report,
    time_overhead,
)

__all__ = [
    "BoxPlot",
    "LatencySketch",
    "QueueDepthSeries",
    "box_plot",
    "geometric_mean",
    "per_class_throughput",
    "throughput",
    "throughput_improvement",
    "throughput_series",
    "FairnessReport",
    "average_process_time",
    "fairness_report",
    "max_flow",
    "max_stretch",
    "percent_decrease",
    "SpaceOverheadReport",
    "space_overhead_report",
    "time_overhead",
]
