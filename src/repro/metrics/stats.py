"""Small statistics helpers (box plots, geometric means)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class BoxPlot:
    """Five-number summary, as drawn in the paper's Figure 3.

    "The box represents the two inner quartiles and the line extends to
    the minimum and maximum points."
    """

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    def as_tuple(self) -> tuple:
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)


def _quantile(sorted_values: list, q: float) -> float:
    """Linear-interpolation quantile of pre-sorted data."""
    if not sorted_values:
        raise ReproError("quantile of empty data")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def box_plot(values) -> BoxPlot:
    """Five-number summary of *values*.

    Raises:
        ReproError: on empty input.
    """
    data = sorted(values)
    if not data:
        raise ReproError("box_plot of empty data")
    return BoxPlot(
        data[0],
        _quantile(data, 0.25),
        _quantile(data, 0.5),
        _quantile(data, 0.75),
        data[-1],
    )


def geometric_mean(values) -> float:
    """Geometric mean; values must be positive.

    Raises:
        ReproError: on empty input or non-positive values.
    """
    data = list(values)
    if not data:
        raise ReproError("geometric_mean of empty data")
    if any(v <= 0 for v in data):
        raise ReproError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))


def mean(values) -> float:
    """Arithmetic mean.

    Raises:
        ReproError: on empty input.
    """
    data = list(values)
    if not data:
        raise ReproError("mean of empty data")
    return sum(data) / len(data)
