"""Streaming latency percentiles and queue-depth series.

Open-system runs (:mod:`repro.sim.opensys`) retire thousands of jobs
and need p50/p95/p99 sojourn and wait times without keeping every
sample.  :class:`LatencySketch` is a DDSketch-style log-bucketed
histogram: values land in geometrically spaced buckets sized so any
reported quantile is within the configured *relative* error of the
true sample quantile.

Determinism contract: every quantile is a pure function of the
*multiset* of added values — no RNG, no insertion-order dependence, no
float accumulation in the quantile path (bucket counts are integers).
Two runs of a deterministic simulation add the same values in the same
order and therefore produce byte-identical ``to_dict()`` images (the
one float accumulator, ``total``, sees the identical operation
sequence).  That is what lets CI pin sketch output across seed-fixed
reruns.

:class:`QueueDepthSeries` is the companion time series: jobs-in-system
sampled at every change point (arrival, completion, cancellation),
with time-weighted means over any window.  :func:`per_class_throughput`
turns per-class completion counts into jobs/second.
"""

from __future__ import annotations

import math
from bisect import bisect_right

from repro.errors import MetricsError

__all__ = ["LatencySketch", "QueueDepthSeries", "per_class_throughput"]

#: Values at or below this are folded into the zero bucket (reported
#: back as 0.0): guards the log against 0/negative rounding dust.
_MIN_TRACKABLE = 1e-12


class LatencySketch:
    """A deterministic streaming quantile sketch over durations.

    Args:
        relative_error: guaranteed bound on the relative error of any
            reported quantile (default 1%).

    The bucket for a value ``v`` is ``ceil(log(v) / log(gamma))`` with
    ``gamma = (1 + e) / (1 - e)``; the bucket's representative value
    ``2 * gamma**i / (gamma + 1)`` (its geometric midpoint) is then
    within ``e`` of every value the bucket holds.
    """

    __slots__ = ("relative_error", "_gamma", "_inv_log_gamma", "_buckets",
                 "count", "zero_count", "total", "min", "max")

    def __init__(self, relative_error: float = 0.01):
        if not 0.0 < relative_error < 1.0:
            raise MetricsError(
                f"relative_error must be in (0, 1), got {relative_error}"
            )
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._inv_log_gamma = 1.0 / math.log(self._gamma)
        self._buckets: dict = {}
        self.count = 0
        self.zero_count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one duration (seconds) into the sketch."""
        if not math.isfinite(value) or value < 0.0:
            raise MetricsError(f"latency samples must be finite >= 0: {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= _MIN_TRACKABLE:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) * self._inv_log_gamma)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """The q-quantile (``q`` in [0, 1]) of everything added, within
        the configured relative error; ``0.0`` on an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Rank of the order statistic to report (0-based, nearest-rank).
        rank = min(self.count - 1, int(q * self.count))
        if rank < self.zero_count:
            return 0.0
        seen = self.zero_count
        gamma = self._gamma
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                return 2.0 * gamma**index / (gamma + 1.0)
        return self.max  # pragma: no cover - rank < count always lands

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencySketch") -> None:
        """Fold *other* into this sketch (order-independent)."""
        if not isinstance(other, LatencySketch):
            raise MetricsError(f"cannot merge {type(other).__name__}")
        if other.relative_error != self.relative_error:
            raise MetricsError(
                "cannot merge sketches with different relative errors: "
                f"{self.relative_error} vs {other.relative_error}"
            )
        buckets = self._buckets
        for index, n in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + n
        self.count += other.count
        self.zero_count += other.zero_count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def to_dict(self) -> dict:
        """JSON-able image with a canonical (sorted) bucket order, so
        equal sketches serialize byte-identically."""
        return {
            "relative_error": self.relative_error,
            "count": self.count,
            "zero_count": self.zero_count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [[i, self._buckets[i]] for i in sorted(self._buckets)],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencySketch":
        sketch = cls(relative_error=data["relative_error"])
        sketch.count = int(data["count"])
        sketch.zero_count = int(data["zero_count"])
        sketch.total = float(data["total"])
        sketch.min = math.inf if data["min"] is None else float(data["min"])
        sketch.max = -math.inf if data["max"] is None else float(data["max"])
        sketch._buckets = {int(i): int(n) for i, n in data["buckets"]}
        return sketch

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LatencySketch(count={self.count}, p50={self.quantile(0.5):.4f}, "
            f"p95={self.quantile(0.95):.4f}, p99={self.quantile(0.99):.4f})"
        )


class QueueDepthSeries:
    """Jobs-in-system over time, sampled at change points.

    The depth is a step function: it holds its value between samples,
    so time-weighted statistics integrate rectangles.  Samples must be
    recorded in non-decreasing time order (event order guarantees it).
    """

    __slots__ = ("times", "depths")

    def __init__(self):
        self.times: list = []
        self.depths: list = []

    @classmethod
    def from_events(cls, arrivals, departures) -> "QueueDepthSeries":
        """Build the series from arrival times (+1 each) and departure
        times (-1 each: completions and cancellations alike).

        Ties are resolved departures-first, matching the executor's
        dispatch of a completion before an arrival pushed at the same
        instant can be enqueued behind it; any fixed rule would do —
        what matters is that the rule is deterministic.
        """
        deltas = [(t, 1) for t in arrivals] + [(t, -1) for t in departures]
        deltas.sort(key=lambda item: (item[0], item[1]))
        series = cls()
        depth = 0
        for t, delta in deltas:
            depth += delta
            series.record(t, depth)
        return series

    def record(self, t: float, depth: int) -> None:
        if self.times and t < self.times[-1]:
            raise MetricsError(
                f"queue-depth samples must be time-ordered: {t} after "
                f"{self.times[-1]}"
            )
        self.times.append(t)
        self.depths.append(depth)

    def at(self, t: float) -> int:
        """Depth in effect at time *t* (0 before the first sample)."""
        i = bisect_right(self.times, t)
        return self.depths[i - 1] if i else 0

    def peak(self) -> int:
        return max(self.depths, default=0)

    def mean(self, start: float = 0.0, end: float = None) -> float:
        """Time-weighted mean depth over ``[start, end]`` (defaults to
        the full recorded span)."""
        if not self.times:
            return 0.0
        if end is None:
            end = self.times[-1]
        if end <= start:
            return float(self.at(start))
        area = 0.0
        t_prev = start
        depth = self.at(start)
        i = bisect_right(self.times, start)
        while i < len(self.times) and self.times[i] < end:
            area += depth * (self.times[i] - t_prev)
            t_prev = self.times[i]
            depth = self.depths[i]
            i += 1
        area += depth * (end - t_prev)
        return area / (end - start)

    def to_dict(self) -> dict:
        return {"times": list(self.times), "depths": list(self.depths)}

    def __len__(self) -> int:
        return len(self.times)


def per_class_throughput(completions: dict, horizon: float) -> dict:
    """Per-class throughput in jobs/second: ``{class: count}`` over
    *horizon* simulated seconds, in sorted class order."""
    if horizon <= 0:
        raise MetricsError(f"horizon must be positive, got {horizon}")
    return {name: completions[name] / horizon for name in sorted(completions)}
