"""Process-wide recorder management and environment wiring.

The simulator, runtime, schedulers, pipeline cache and harness all
resolve their recorder through :func:`current_recorder`, so enabling
telemetry is one call (or one environment variable) — no constructor
plumbing through the experiment stack.

Environment variables:

``REPRO_TRACE_DIR``
    When set, the process installs a :class:`TraceRecorder` on first
    use and ``python -m repro.experiments`` writes ``trace.json`` /
    ``metrics.json`` there at exit.  Harness worker processes inherit
    the variable, so spawned workers trace themselves and ship their
    events back to the parent.
``REPRO_TRACE_CATEGORIES``
    Comma list of categories (``all`` / ``default`` accepted); see
    :mod:`repro.telemetry.events`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.telemetry.events import parse_categories
from repro.telemetry.recorder import NULL_RECORDER, Recorder, TraceRecorder

__all__ = [
    "TRACE_DIR_ENV",
    "TRACE_CATEGORIES_ENV",
    "current_recorder",
    "set_recorder",
    "env_categories",
    "tracing",
]

#: Directory for trace output; setting it also auto-enables tracing.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Category selection for environment-enabled tracing.
TRACE_CATEGORIES_ENV = "REPRO_TRACE_CATEGORIES"

_current: Recorder = NULL_RECORDER
_env_checked = False


def env_categories() -> frozenset:
    """The category set selected by ``REPRO_TRACE_CATEGORIES``."""
    return parse_categories(os.environ.get(TRACE_CATEGORIES_ENV, ""))


def current_recorder() -> Recorder:
    """The process-wide recorder (the null recorder unless tracing was
    enabled explicitly or through ``REPRO_TRACE_DIR``)."""
    global _current, _env_checked
    if not _env_checked:
        _env_checked = True
        if _current is NULL_RECORDER and os.environ.get(TRACE_DIR_ENV):
            _current = TraceRecorder(categories=env_categories())
    return _current


def set_recorder(recorder: Recorder) -> Recorder:
    """Install *recorder* as the process-wide recorder; returns the
    previous one (so callers can restore it)."""
    global _current, _env_checked
    _env_checked = True
    previous = _current
    _current = recorder
    return previous


@contextmanager
def tracing(categories=None):
    """Context manager: record into a fresh :class:`TraceRecorder`
    while the block runs, restoring the previous recorder after.

    Yields the recorder, ready for export or analysis::

        with tracing() as rec:
            simulation.run(40.0)
        analyzer = TimelineAnalyzer.from_recorder(rec)
    """
    recorder = TraceRecorder(categories=categories)
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
