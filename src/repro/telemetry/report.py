"""Text summary report over an analyzed trace.

``python -m repro.experiments telemetry --trace-out DIR`` prints this
report for the ``trace.json`` found in ``DIR``; it is also usable as a
library (:func:`render_report`) against any analyzer.
"""

from __future__ import annotations

from repro.telemetry.analyzer import TimelineAnalyzer

__all__ = ["render_report", "summarize"]


def summarize(analyzer: TimelineAnalyzer) -> dict:
    """A plain-data summary of every run in the trace."""
    runs = []
    for run, label, clock in analyzer.runs():
        timeline = analyzer.timeline(run)
        processes = []
        for pid in timeline.pids:
            processes.append(
                {
                    "pid": pid,
                    "name": timeline.names.get(pid, f"pid-{pid}"),
                    "switches": timeline.switches.get(pid, 0.0),
                    "migrations": timeline.migrations.get(pid, 0),
                    "phase_residency": dict(
                        timeline.phase_residency.get(pid, {})
                    ),
                    "phase_migrations": dict(
                        timeline.phase_migrations.get(pid, {})
                    ),
                }
            )
        runs.append(
            {
                "run": run,
                "label": label,
                "clock": clock,
                "processes": processes,
                "ipc_samples": len(timeline.ipc_samples),
                "decisions": len(timeline.decisions),
                "degradations": len(timeline.degradations),
                "faults": len(timeline.fault_events),
                "sched_decisions": timeline.sched_decisions,
                "idle_by_core": dict(timeline.idle_by_core),
            }
        )
    return {"runs": runs, "metrics": dict(sorted(analyzer.metrics.items()))}


def _fmt_phase_map(mapping, fmt) -> str:
    if not mapping:
        return "-"
    parts = []
    for phase in sorted(mapping, key=lambda p: (p is None, p)):
        name = "?" if phase is None else str(phase)
        parts.append(f"{name}={fmt(mapping[phase])}")
    return " ".join(parts)


def render_report(analyzer: TimelineAnalyzer) -> str:
    """Human-readable multi-line report for *analyzer*."""
    summary = summarize(analyzer)
    lines = ["telemetry summary", "================="]
    for run in summary["runs"]:
        lines.append("")
        lines.append(
            f"run {run['run']}: {run['label']} [{run['clock']} clock]"
        )
        lines.append(
            "  samples={ipc_samples} decisions={decisions} "
            "degradations={degradations} faults={faults} "
            "sched={sched_decisions}".format(**run)
        )
        if run["idle_by_core"]:
            idle = " ".join(
                f"core{core}={seconds:.3f}s"
                for core, seconds in sorted(run["idle_by_core"].items())
            )
            lines.append(f"  idle: {idle}")
        for proc in run["processes"]:
            lines.append(
                f"  pid {proc['pid']} {proc['name']}: "
                f"switches={proc['switches']:g} "
                f"migrations={proc['migrations']}"
            )
            if proc["phase_residency"]:
                lines.append(
                    "    residency: "
                    + _fmt_phase_map(
                        proc["phase_residency"], lambda v: f"{v:.3f}s"
                    )
                )
            if proc["phase_migrations"]:
                lines.append(
                    "    phase migrations: "
                    + _fmt_phase_map(proc["phase_migrations"], str)
                )
    if summary["metrics"]:
        lines.append("")
        lines.append("metrics")
        lines.append("-------")
        for name, value in summary["metrics"].items():
            lines.append(f"  {name} = {value:g}")
    return "\n".join(lines)
