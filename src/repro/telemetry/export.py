"""Exporters: Chrome ``trace_event`` JSON and flat metrics.

The Chrome format (one JSON object with a ``traceEvents`` array) loads
directly in ``chrome://tracing`` and https://ui.perfetto.dev.  Each
recorded *run* becomes one ``pid`` track group, named through ``M``
(metadata) events; timestamps are converted from the run's clock domain
(seconds) to the format's microseconds.

:func:`validate_chrome_trace` is the schema check the CI smoke job
runs on emitted traces; :func:`load_chrome_trace` parses a trace file
back into recorder-shaped event tuples for the
:class:`~repro.telemetry.analyzer.TimelineAnalyzer`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import TelemetryError

__all__ = [
    "chrome_event",
    "chrome_trace",
    "run_meta_event",
    "write_chrome_trace",
    "validate_chrome_trace",
    "load_chrome_trace",
    "merge_metrics",
    "write_metrics",
]

#: Phase letters this exporter emits (and the validator accepts).
_PHASES = {"X", "i", "C", "M"}

_SECONDS_TO_US = 1e6


def run_meta_event(run: int, label: str, clock: str) -> dict:
    """The ``process_name`` metadata event naming one run's track."""
    return {
        "ph": "M",
        "name": "process_name",
        "pid": run,
        "tid": 0,
        "args": {"name": f"{label} [{clock} clock]"},
    }


def chrome_event(ev: tuple) -> dict:
    """One recorder event tuple as a Chrome ``trace_event`` object."""
    ph, cat, name, run, ts, tid, value, args = ev
    if ph == "M":
        return {
            "ph": "M",
            "name": name,
            "pid": run,
            "tid": tid,
            "args": args or {},
        }
    event = {
        "ph": "i" if ph == "I" else ph,
        "cat": cat,
        "name": name,
        "pid": run,
        "tid": tid,
        "ts": ts * _SECONDS_TO_US,
    }
    if ph == "I":
        event["s"] = "t"
        if args is not None:
            event["args"] = args
    elif ph == "X":
        event["dur"] = value * _SECONDS_TO_US
        if args is not None:
            event["args"] = args
    elif ph == "C":
        event["args"] = {"value": value}
    return event


def chrome_trace(recorder) -> dict:
    """The recorder's events as a Chrome ``trace_event`` JSON object."""
    trace_events = [
        run_meta_event(run, label, clock)
        for run, (label, clock) in sorted(recorder.runs.items())
    ]
    trace_events.extend(chrome_event(ev) for ev in recorder.events)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.telemetry"},
    }


def write_chrome_trace(recorder, path) -> Path:
    """Serialise the recorder to *path* as Chrome trace JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(recorder)))
    return path


def validate_chrome_trace(obj) -> int:
    """Validate a Chrome trace object (or JSON text / file path).

    Checks the containment schema this exporter guarantees: a top-level
    ``traceEvents`` list whose entries carry a known phase, integer
    ``pid``/``tid``, and (for timed phases) non-negative numeric
    ``ts``/``dur``.  Returns the number of events validated.

    Raises:
        TelemetryError: the object is not a loadable Chrome trace.
    """
    if isinstance(obj, (str, Path)) and not (
        isinstance(obj, str) and obj.lstrip().startswith("{")
    ):
        obj = json.loads(Path(obj).read_text())
    elif isinstance(obj, str):
        obj = json.loads(obj)
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        raise TelemetryError("trace has no traceEvents array")
    for index, event in enumerate(obj["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise TelemetryError(f"{where} is not an object")
        ph = event.get("ph")
        if ph not in _PHASES:
            raise TelemetryError(f"{where} has unknown phase {ph!r}")
        if not isinstance(event.get("name"), str):
            raise TelemetryError(f"{where} has no name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise TelemetryError(f"{where}.{key} is not an integer")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise TelemetryError(f"{where}.ts is not a non-negative number")
            if not isinstance(event.get("cat"), str):
                raise TelemetryError(f"{where}.cat is not a string")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TelemetryError(f"{where}.dur is not a non-negative number")
        if ph == "C" and "value" not in event.get("args", {}):
            raise TelemetryError(f"{where} counter has no args.value")
    return len(obj["traceEvents"])


def _load_jsonl(text: str, tolerant_tail: bool) -> dict:
    """Parse a streamed JSONL trace into a Chrome trace object.

    With *tolerant_tail* a single undecodable line *at the very end* is
    dropped — the signature of a process killed mid-append — while a
    corrupt line anywhere else still raises, because events after it
    did decode and silently skipping the middle would misrepresent the
    timeline.
    """
    lines = text.split("\n")
    content = [i for i, line in enumerate(lines) if line.strip()]
    trace_events = []
    for lineno in content:
        try:
            event = json.loads(lines[lineno])
        except ValueError:
            if tolerant_tail and lineno == content[-1]:
                break
            raise TelemetryError(
                f"corrupt JSONL trace line {lineno + 1}"
                + (
                    ""
                    if tolerant_tail
                    else " (tolerant_tail=True drops a torn final line)"
                )
            ) from None
        trace_events.append(event)
    return {"traceEvents": trace_events}


def load_chrome_trace(path_or_obj, tolerant_tail: bool = False):
    """Parse a Chrome trace back into ``(runs, events)`` recorder shape.

    Inverse of :func:`chrome_trace` (modulo the seconds/microseconds
    conversion), so the analyzer can consume traces from disk as well
    as live recorders.  Accepts both the one-document ``trace.json``
    format and the streamed JSONL format
    (:class:`~repro.telemetry.recorder.TraceRecorder` with
    ``stream_to=``) — detected by the first line parsing as a single
    event object rather than a ``traceEvents`` document.

    Args:
        tolerant_tail: for JSONL input, drop (rather than raise on) one
            undecodable *final* line — the torn append of a killed
            process.  Corruption anywhere else always raises.
    """
    obj = path_or_obj
    if isinstance(obj, (str, Path)):
        text = Path(obj).read_text()
        first = text.split("\n", 1)[0].strip()
        is_jsonl = False
        if first:
            try:
                head = json.loads(first)
                is_jsonl = isinstance(head, dict) and "traceEvents" not in head
            except ValueError:
                is_jsonl = False
        obj = _load_jsonl(text, tolerant_tail) if is_jsonl else json.loads(text)
    validate_chrome_trace(obj)
    runs: dict = {}
    events: list = []
    for event in obj["traceEvents"]:
        ph = event["ph"]
        run = event["pid"]
        if ph == "M":
            if event["name"] == "process_name":
                label = event.get("args", {}).get("name", f"run-{run}")
                clock = "sim"
                if label.endswith(" clock]") and "[" in label:
                    label, _, tag = label.rpartition(" [")
                    clock = tag[: -len(" clock]")]
                runs[run] = (label, clock)
            continue
        ts = event["ts"] / _SECONDS_TO_US
        tid = event["tid"]
        cat = event.get("cat")
        name = event["name"]
        if ph == "i":
            events.append(("I", cat, name, run, ts, tid, None, event.get("args")))
        elif ph == "X":
            events.append(
                (
                    "X",
                    cat,
                    name,
                    run,
                    ts,
                    tid,
                    event["dur"] / _SECONDS_TO_US,
                    event.get("args"),
                )
            )
        elif ph == "C":
            events.append(("C", cat, name, run, ts, tid, event["args"]["value"], None))
    return runs, events


def merge_metrics(*metric_dicts) -> dict:
    """Sum flat metrics dicts key-wise (harness-worker merging)."""
    merged: dict = {}
    for metrics in metric_dicts:
        for name, value in metrics.items():
            merged[name] = merged.get(name, 0.0) + value
    return merged


def write_metrics(recorder, path) -> Path:
    """Write the recorder's flat metrics to *path* as sorted JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(dict(sorted(recorder.metrics.items())), indent=2))
    return path
