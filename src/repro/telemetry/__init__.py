"""repro.telemetry — tracing, metrics, and profiling for the repro stack.

The subsystem has three layers:

1. **Recording** (:mod:`~repro.telemetry.recorder`,
   :mod:`~repro.telemetry.context`): a process-wide
   :class:`Recorder` resolved via :func:`current_recorder`.  The
   default :class:`NullRecorder` makes every hook point a no-op — an
   untraced run produces byte-identical output to a build without
   telemetry.  Install a :class:`TraceRecorder` with
   :func:`set_recorder`, the :func:`tracing` context manager, or the
   ``REPRO_TRACE_DIR`` environment variable.
2. **Export** (:mod:`~repro.telemetry.export`): Chrome ``trace_event``
   JSON (loads in chrome://tracing and Perfetto) plus a flat metrics
   dict; both merge across harness worker processes.
3. **Analysis** (:mod:`~repro.telemetry.analyzer`,
   :mod:`~repro.telemetry.report`): post-run per-phase residency,
   float-exact core-switch totals, migration counts, stall
   attribution, and a text report
   (``python -m repro.experiments telemetry``).

Quickstart::

    from repro.telemetry import tracing, TimelineAnalyzer

    with tracing() as rec:
        simulation.run(40.0)
    analyzer = TimelineAnalyzer.from_recorder(rec)
    print(analyzer.switches(run=0, pid=1))
"""

from __future__ import annotations

from repro.telemetry.analyzer import RunTimeline, TimelineAnalyzer
from repro.telemetry.context import (
    TRACE_CATEGORIES_ENV,
    TRACE_DIR_ENV,
    current_recorder,
    env_categories,
    set_recorder,
    tracing,
)
from repro.telemetry.events import (
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    PROC_TID_BASE,
    parse_categories,
)
from repro.telemetry.export import (
    chrome_trace,
    load_chrome_trace,
    merge_metrics,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceRecorder,
)
from repro.telemetry.report import render_report, summarize

__all__ = [
    "ALL_CATEGORIES",
    "DEFAULT_CATEGORIES",
    "NULL_RECORDER",
    "NullRecorder",
    "PROC_TID_BASE",
    "Recorder",
    "RunTimeline",
    "TRACE_CATEGORIES_ENV",
    "TRACE_DIR_ENV",
    "TimelineAnalyzer",
    "TraceRecorder",
    "chrome_trace",
    "current_recorder",
    "env_categories",
    "load_chrome_trace",
    "merge_metrics",
    "parse_categories",
    "render_report",
    "set_recorder",
    "summarize",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
]
