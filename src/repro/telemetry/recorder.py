"""The Recorder protocol and its two implementations.

:class:`NullRecorder` is the default: ``enabled`` is ``False``, every
method is a no-op, and instrumented code is expected to gate on
``enabled`` (hot paths resolve the gate once, at construction) — so an
untraced run executes exactly the float operations it executed before
telemetry existed, and its outputs stay byte-identical.

:class:`TraceRecorder` collects typed events (spans, instants,
counters; see :mod:`repro.telemetry.events` for the tuple layout) plus
a flat metrics dict, grouped into *runs*: every simulation (and the
harness itself) opens its own run, which becomes its own ``pid`` track
group in the exported Chrome trace.  Runs carry a clock-domain tag
(``"sim"`` seconds or ``"wall"`` seconds) so the analyzer never mixes
simulated and real time.

Event streams are execution-mode invariant: the executor's coalesced
macro-quantum path emits per-turn ``quantum`` spans (and ``sched`` /
``exec`` instants) one by one as it replays the stepped event order,
so a traced coalesced run records the same events, in the same order,
with the same timestamps as the per-quantum loop — turning tracing on
never forces coalescing off, and traces from either mode diff clean.

Recorders are shipped across process boundaries the same way the
pipeline cache ships entries: :meth:`TraceRecorder.export_blob` on the
worker, :meth:`TraceRecorder.absorb_blob` on the parent (run ids are
re-based on absorb, so worker runs never collide with parent runs).
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from zlib import crc32

from repro.telemetry.events import DEFAULT_CATEGORIES
from repro.telemetry.export import chrome_event, run_meta_event

__all__ = ["NullRecorder", "Recorder", "TraceRecorder", "NULL_RECORDER"]


class Recorder:
    """Protocol base: the full recorder surface, as no-ops.

    Hook points call these methods; implementations override what they
    store.  ``enabled`` is an attribute (not a property) so hot paths
    pay one load to check it.
    """

    enabled: bool = False
    categories: frozenset = frozenset()

    def wants(self, cat: str) -> bool:
        """Whether events of category *cat* should be recorded."""
        return False

    def begin_run(self, label: str, clock: str = "sim") -> int:
        """Open a new run (track group); returns its id and makes it
        current."""
        return 0

    def instant(self, cat, name, ts, tid=0, args=None, run=None) -> None:
        """Record a point event."""

    def span(self, cat, name, ts, dur, tid=0, args=None, run=None) -> None:
        """Record a complete span of duration *dur* starting at *ts*."""

    def counter(self, cat, name, ts, value, tid=0, run=None) -> None:
        """Record one point of a counter series."""

    def meta(self, name, tid, args, run=None) -> None:
        """Record viewer metadata (e.g. lane names)."""

    def incr(self, name: str, delta: float = 1.0) -> None:
        """Bump a flat (timeline-free) metric."""


class NullRecorder(Recorder):
    """The zero-overhead default recorder: records nothing."""

    __slots__ = ()


#: Shared null instance — stateless, so one is enough.
NULL_RECORDER = NullRecorder()


class _StreamedEvents(list):
    """Event list that tees every append onto the recorder's JSONL
    stream, so events hit disk as they are recorded rather than only at
    final export."""

    __slots__ = ("_recorder",)

    def __init__(self, recorder):
        super().__init__()
        self._recorder = recorder

    def append(self, ev) -> None:
        list.append(self, ev)
        self._recorder._stream_event(ev)

    def extend(self, evs) -> None:
        for ev in evs:
            self.append(ev)


class _SampledEvents(_StreamedEvents):
    """Event list applying a deterministic per-event keep decision to
    sampled categories before storing (and streaming) the event.

    The filter lives on the list rather than in the ``instant``/
    ``span``/``counter`` methods because the hottest instrumentation
    sites (executor quantum spans, scheduler dispatch decisions) append
    raw event tuples directly — the container is the one choke point
    every event passes through.

    The keep decision is a pure function of the event's category, lane,
    and timestamp (hashed via CRC-32 with the recorder's sample seed,
    never Python's randomized ``hash``), so two runs of a
    deterministic simulation keep exactly the same subset, events
    sharing (category, lane, timestamp) keep or drop together, and
    re-appending an event — e.g. a worker blob absorbed into a parent
    recorder with the same sampling config — decides identically.
    """

    __slots__ = ("_thresholds", "_seed")

    def __init__(self, recorder, thresholds, seed):
        super().__init__(recorder)
        self._thresholds = thresholds
        self._seed = seed

    def append(self, ev) -> None:
        threshold = self._thresholds.get(ev[1])
        if threshold is not None:
            key = f"{self._seed}|{ev[1]}|{ev[5]}|{ev[4]!r}"
            # CRC-32 is linear over GF(2): two keys differing in one
            # byte hash to values a *constant* XOR apart, so without a
            # finalizer two seeds would keep nearly identical subsets.
            # The odd-multiplier mix (Fibonacci hashing) breaks the
            # linearity; it is still a pure function of the key.
            h = (crc32(key.encode()) * 0x9E3779B1) & 0xFFFFFFFF
            if (h ^ (h >> 16)) >= threshold:
                return
        list.append(self, ev)
        self._recorder._stream_event(ev)


class TraceRecorder(Recorder):
    """In-memory collector of typed events and flat metrics.

    Args:
        categories: categories to record; the cheap default set when
            omitted (see :mod:`repro.telemetry.events`).
        stream_to: optional path; every event is additionally appended
            to this file as one Chrome ``trace_event`` JSON object per
            line, flushed every *stream_flush_every* events.  A run
            killed mid-flight leaves at worst one torn final line,
            which :func:`~repro.telemetry.export.load_chrome_trace`
            drops under ``tolerant_tail=True`` — so the trace of a
            crashed run is recoverable up to the last flush.
        stream_flush_every: events between stream flushes.
        sample: optional ``{category: keep_rate}`` with rates in
            ``(0, 1]``; events of a sampled category are kept with a
            deterministic seeded-hash decision (see
            :class:`_SampledEvents`), so the high-volume categories
            (``quantum``, ``segment``) are no longer all-or-nothing on
            1000-process runs.  A rate of ``1.0`` keeps everything —
            byte-identical to not listing the category.  Sampling a
            category does not enable it: it must still be in
            *categories*.
        sample_seed: seed for the keep decision; the same seed keeps
            the same subset across runs.
    """

    enabled = True

    def __init__(
        self,
        categories=None,
        stream_to=None,
        stream_flush_every=256,
        sample=None,
        sample_seed=0,
    ):
        self.categories = (
            frozenset(categories) if categories is not None else DEFAULT_CATEGORIES
        )
        self.sample = dict(sample) if sample else None
        self.sample_seed = int(sample_seed)
        if self.sample is not None:
            from repro.errors import TelemetryError

            for cat, rate in self.sample.items():
                if not 0.0 < rate <= 1.0:
                    raise TelemetryError(
                        f"sample rate for {cat!r} must be in (0, 1], got {rate}"
                    )
        #: Flat event tuples: ``(ph, cat, name, run, ts, tid, value, args)``.
        self.events: list = []
        #: Flat metrics: name -> accumulated value.
        self.metrics: dict = {}
        #: Run registry: run id -> ``(label, clock)``.
        self.runs: dict = {}
        self._next_run = 0
        #: The current run id (events default here when ``run=None``).
        self.run = 0
        self._stream = None
        self._stream_pending = 0
        self._stream_flush_every = max(1, int(stream_flush_every))
        if stream_to is not None:
            path = Path(stream_to)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(path, "w", encoding="utf-8")
            self.events = _StreamedEvents(self)
        if self.sample is not None:
            # CRC-32 yields 32-bit values; a rate of 1.0 maps to 2**32,
            # which every hash is strictly below, i.e. keep-all.
            thresholds = {
                cat: int(rate * 2**32) for cat, rate in self.sample.items()
            }
            sampled = _SampledEvents(self, thresholds, self.sample_seed)
            sampled.extend(self.events)
            self.events = sampled

    # -- run management -----------------------------------------------------

    def wants(self, cat: str) -> bool:
        return cat in self.categories

    def begin_run(self, label: str, clock: str = "sim") -> int:
        run = self._next_run
        self._next_run = run + 1
        self.runs[run] = (label, clock)
        self.run = run
        if self._stream is not None:
            # Run starts are rare and name whole track groups: make
            # them durable immediately.
            self._write_stream_line(run_meta_event(run, label, clock))
            self.flush_stream()
        return run

    # -- event emission -----------------------------------------------------

    def instant(self, cat, name, ts, tid=0, args=None, run=None) -> None:
        self.events.append(
            ("I", cat, name, self.run if run is None else run, ts, tid, None, args)
        )

    def span(self, cat, name, ts, dur, tid=0, args=None, run=None) -> None:
        self.events.append(
            ("X", cat, name, self.run if run is None else run, ts, tid, dur, args)
        )

    def counter(self, cat, name, ts, value, tid=0, run=None) -> None:
        self.events.append(
            ("C", cat, name, self.run if run is None else run, ts, tid, value, None)
        )

    def meta(self, name, tid, args, run=None) -> None:
        self.events.append(
            ("M", None, name, self.run if run is None else run, 0.0, tid, None, args)
        )

    def incr(self, name: str, delta: float = 1.0) -> None:
        metrics = self.metrics
        metrics[name] = metrics.get(name, 0.0) + delta

    # -- streaming ----------------------------------------------------------

    def _stream_event(self, ev: tuple) -> None:
        if self._stream is not None:
            self._write_stream_line(chrome_event(ev))

    def _write_stream_line(self, obj: dict) -> None:
        # default=repr: args dicts may carry arbitrary objects; a trace
        # line must never be able to kill the run being traced.
        self._stream.write(json.dumps(obj, default=repr) + "\n")
        self._stream_pending += 1
        if self._stream_pending >= self._stream_flush_every:
            self.flush_stream()

    def flush_stream(self) -> None:
        """Push buffered stream lines to the OS."""
        if self._stream is not None:
            self._stream.flush()
            self._stream_pending = 0

    def close_stream(self) -> None:
        """Flush and close the JSONL stream (events keep collecting
        in memory)."""
        if self._stream is not None:
            self._stream.flush()
            self._stream.close()
            self._stream = None

    # -- shipping (harness workers) -----------------------------------------

    def export_blob(self) -> bytes:
        """Everything recorded, as one pickled blob for
        :meth:`absorb_blob` (``export_entries``-style shipping)."""
        # list(): never pickle the streaming subclass (it references
        # this recorder and its open file).
        return pickle.dumps(
            (self._next_run, self.runs, list(self.events), self.metrics),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def absorb_blob(self, blob: bytes) -> int:
        """Merge a blob exported by another recorder (typically a
        harness worker); returns the number of events absorbed.

        Run ids from the blob are re-based past this recorder's own so
        worker runs stay distinct track groups.
        """
        n_runs, runs, events, metrics = pickle.loads(blob)
        offset = self._next_run
        self._next_run = offset + n_runs
        for run, info in runs.items():
            self.runs[run + offset] = info
            if self._stream is not None:
                label, clock = info
                self._write_stream_line(
                    run_meta_event(run + offset, label, clock)
                )
        if offset:
            self.events.extend(
                (ph, cat, name, run + offset, ts, tid, value, args)
                for ph, cat, name, run, ts, tid, value, args in events
            )
        else:
            self.events.extend(events)
        if self._stream is not None:
            # One absorbed blob is one completed task: flush so its
            # whole trace is durable at the task boundary.
            self.flush_stream()
        own = self.metrics
        for name, value in metrics.items():
            own[name] = own.get(name, 0.0) + value
        return len(events)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.metrics.clear()
        self.runs.clear()
        self._next_run = 0
        self.run = 0
