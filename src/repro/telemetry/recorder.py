"""The Recorder protocol and its two implementations.

:class:`NullRecorder` is the default: ``enabled`` is ``False``, every
method is a no-op, and instrumented code is expected to gate on
``enabled`` (hot paths resolve the gate once, at construction) — so an
untraced run executes exactly the float operations it executed before
telemetry existed, and its outputs stay byte-identical.

:class:`TraceRecorder` collects typed events (spans, instants,
counters; see :mod:`repro.telemetry.events` for the tuple layout) plus
a flat metrics dict, grouped into *runs*: every simulation (and the
harness itself) opens its own run, which becomes its own ``pid`` track
group in the exported Chrome trace.  Runs carry a clock-domain tag
(``"sim"`` seconds or ``"wall"`` seconds) so the analyzer never mixes
simulated and real time.

Recorders are shipped across process boundaries the same way the
pipeline cache ships entries: :meth:`TraceRecorder.export_blob` on the
worker, :meth:`TraceRecorder.absorb_blob` on the parent (run ids are
re-based on absorb, so worker runs never collide with parent runs).
"""

from __future__ import annotations

import pickle

from repro.telemetry.events import DEFAULT_CATEGORIES

__all__ = ["NullRecorder", "Recorder", "TraceRecorder", "NULL_RECORDER"]


class Recorder:
    """Protocol base: the full recorder surface, as no-ops.

    Hook points call these methods; implementations override what they
    store.  ``enabled`` is an attribute (not a property) so hot paths
    pay one load to check it.
    """

    enabled: bool = False
    categories: frozenset = frozenset()

    def wants(self, cat: str) -> bool:
        """Whether events of category *cat* should be recorded."""
        return False

    def begin_run(self, label: str, clock: str = "sim") -> int:
        """Open a new run (track group); returns its id and makes it
        current."""
        return 0

    def instant(self, cat, name, ts, tid=0, args=None, run=None) -> None:
        """Record a point event."""

    def span(self, cat, name, ts, dur, tid=0, args=None, run=None) -> None:
        """Record a complete span of duration *dur* starting at *ts*."""

    def counter(self, cat, name, ts, value, tid=0, run=None) -> None:
        """Record one point of a counter series."""

    def meta(self, name, tid, args, run=None) -> None:
        """Record viewer metadata (e.g. lane names)."""

    def incr(self, name: str, delta: float = 1.0) -> None:
        """Bump a flat (timeline-free) metric."""


class NullRecorder(Recorder):
    """The zero-overhead default recorder: records nothing."""

    __slots__ = ()


#: Shared null instance — stateless, so one is enough.
NULL_RECORDER = NullRecorder()


class TraceRecorder(Recorder):
    """In-memory collector of typed events and flat metrics.

    Args:
        categories: categories to record; the cheap default set when
            omitted (see :mod:`repro.telemetry.events`).
    """

    enabled = True

    def __init__(self, categories=None):
        self.categories = (
            frozenset(categories) if categories is not None else DEFAULT_CATEGORIES
        )
        #: Flat event tuples: ``(ph, cat, name, run, ts, tid, value, args)``.
        self.events: list = []
        #: Flat metrics: name -> accumulated value.
        self.metrics: dict = {}
        #: Run registry: run id -> ``(label, clock)``.
        self.runs: dict = {}
        self._next_run = 0
        #: The current run id (events default here when ``run=None``).
        self.run = 0

    # -- run management -----------------------------------------------------

    def wants(self, cat: str) -> bool:
        return cat in self.categories

    def begin_run(self, label: str, clock: str = "sim") -> int:
        run = self._next_run
        self._next_run = run + 1
        self.runs[run] = (label, clock)
        self.run = run
        return run

    # -- event emission -----------------------------------------------------

    def instant(self, cat, name, ts, tid=0, args=None, run=None) -> None:
        self.events.append(
            ("I", cat, name, self.run if run is None else run, ts, tid, None, args)
        )

    def span(self, cat, name, ts, dur, tid=0, args=None, run=None) -> None:
        self.events.append(
            ("X", cat, name, self.run if run is None else run, ts, tid, dur, args)
        )

    def counter(self, cat, name, ts, value, tid=0, run=None) -> None:
        self.events.append(
            ("C", cat, name, self.run if run is None else run, ts, tid, value, None)
        )

    def meta(self, name, tid, args, run=None) -> None:
        self.events.append(
            ("M", None, name, self.run if run is None else run, 0.0, tid, None, args)
        )

    def incr(self, name: str, delta: float = 1.0) -> None:
        metrics = self.metrics
        metrics[name] = metrics.get(name, 0.0) + delta

    # -- shipping (harness workers) -----------------------------------------

    def export_blob(self) -> bytes:
        """Everything recorded, as one pickled blob for
        :meth:`absorb_blob` (``export_entries``-style shipping)."""
        return pickle.dumps(
            (self._next_run, self.runs, self.events, self.metrics),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def absorb_blob(self, blob: bytes) -> int:
        """Merge a blob exported by another recorder (typically a
        harness worker); returns the number of events absorbed.

        Run ids from the blob are re-based past this recorder's own so
        worker runs stay distinct track groups.
        """
        n_runs, runs, events, metrics = pickle.loads(blob)
        offset = self._next_run
        self._next_run = offset + n_runs
        for run, info in runs.items():
            self.runs[run + offset] = info
        if offset:
            self.events.extend(
                (ph, cat, name, run + offset, ts, tid, value, args)
                for ph, cat, name, run, ts, tid, value, args in events
            )
        else:
            self.events.extend(events)
        own = self.metrics
        for name, value in metrics.items():
            own[name] = own.get(name, 0.0) + value
        return len(events)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.metrics.clear()
        self.runs.clear()
        self._next_run = 0
        self.run = 0
