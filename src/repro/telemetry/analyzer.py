"""Post-run timeline analysis.

A :class:`TimelineAnalyzer` digests a recorded event stream (live
recorder or a ``trace.json`` from disk) into per-run, per-process
aggregates: core-switch totals, per-phase residency and migration
counts, IPC-sample/decision/degradation inventories, and per-core
idle/busy attribution.

Exactness contract: a process's switch total is accumulated in event
order with the same float operations the executor applies to
``ProcessStats.switches`` (``+1.0`` per migration instant, ``+value``
per thrash counter), so on a traced run
``analyzer.switches(run, pid)`` equals ``process.stats.switches``
*exactly* — the cross-check Table 1 / Figure 5 rest on
(``tests/telemetry/test_table1_agreement.py`` pins it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.events import PROC_TID_BASE

__all__ = ["RunTimeline", "TimelineAnalyzer"]


def _event_pid(tid, args):
    if args is not None:
        pid = args.get("pid")
        if pid is not None:
            return pid
    return tid - PROC_TID_BASE if tid >= PROC_TID_BASE else None


@dataclass
class RunTimeline:
    """Aggregates of one recorded run."""

    run: int
    label: str
    clock: str
    #: Per-pid core-switch totals (executor accumulation order).
    switches: dict = field(default_factory=dict)
    #: Per-pid integer migration counts.
    migrations: dict = field(default_factory=dict)
    #: Per-pid ``{phase: switches}`` (migrations + thrash, attributed to
    #: the process's phase at the event's timestamp).
    phase_switches: dict = field(default_factory=dict)
    #: Per-pid ``{phase: int migration count}``.
    phase_migrations: dict = field(default_factory=dict)
    #: Per-pid ``{phase: seconds}`` residency between phase transitions.
    phase_residency: dict = field(default_factory=dict)
    #: Per-pid benchmark names (from process start/end events).
    names: dict = field(default_factory=dict)
    #: Per-pid final stats payload from the process-end event.
    end_stats: dict = field(default_factory=dict)
    #: Per-core idle seconds (run-close summary counters).
    idle_by_core: dict = field(default_factory=dict)
    #: Per-core busy seconds from quantum spans (when recorded).
    quantum_busy: dict = field(default_factory=dict)
    ipc_samples: list = field(default_factory=list)
    decisions: list = field(default_factory=list)
    degradations: list = field(default_factory=list)
    fault_events: list = field(default_factory=list)
    #: Open-system dynamics: ``(ts, name, args)`` for arrival, cancel,
    #: breakdown, and repair instants (``opensys`` category).
    opensys_events: list = field(default_factory=list)
    #: Jobs-in-system counter samples ``(ts, value)`` from the
    #: open-system engine, in event order.
    queue_depth_samples: list = field(default_factory=list)
    sched_decisions: int = 0
    _phase_open: dict = field(default_factory=dict, repr=False)
    _max_ts: float = field(default=0.0, repr=False)

    # -- event folding ------------------------------------------------------

    def _fold(self, ph, cat, name, ts, tid, value, args) -> None:
        if ts > self._max_ts:
            self._max_ts = ts
        pid = _event_pid(tid, args)
        if cat == "exec":
            if name == "migrate":
                self.switches[pid] = self.switches.get(pid, 0.0) + 1.0
                self.migrations[pid] = self.migrations.get(pid, 0) + 1
                phase = self._phase_open.get(pid, (None, None))[0]
                by_phase = self.phase_switches.setdefault(pid, {})
                by_phase[phase] = by_phase.get(phase, 0.0) + 1.0
                counts = self.phase_migrations.setdefault(pid, {})
                counts[phase] = counts.get(phase, 0) + 1
            elif name == "thrash":
                self.switches[pid] = self.switches.get(pid, 0.0) + value
                phase = self._phase_open.get(pid, (None, None))[0]
                by_phase = self.phase_switches.setdefault(pid, {})
                by_phase[phase] = by_phase.get(phase, 0.0) + value
            elif name == "start":
                if args is not None and "name" in args:
                    self.names[pid] = args["name"]
            elif name == "end":
                if args is not None:
                    if "name" in args:
                        self.names[pid] = args["name"]
                    self.end_stats[pid] = args
                self._close_phase(pid, ts)
            elif name == "idle" and ph == "C":
                self.idle_by_core[tid] = value
        elif cat == "phase":
            phase = args["phase"] if args else None
            self._close_phase(pid, ts)
            self._phase_open[pid] = (phase, ts)
        elif cat == "tuning":
            if name == "ipc-sample":
                self.ipc_samples.append((ts, args))
            elif name == "decide":
                self.decisions.append((ts, args))
            elif name == "degrade":
                self.degradations.append((ts, args))
        elif cat == "fault":
            self.fault_events.append((ts, name, args))
        elif cat == "opensys":
            if ph == "C" and name == "jobs_in_system":
                self.queue_depth_samples.append((ts, value))
            else:
                self.opensys_events.append((ts, name, args))
        elif cat == "sched":
            self.sched_decisions += 1
        elif cat == "quantum" and ph == "X":
            self.quantum_busy[tid] = self.quantum_busy.get(tid, 0.0) + value

    def _close_phase(self, pid, ts) -> None:
        open_phase = self._phase_open.pop(pid, None)
        if open_phase is None:
            return
        phase, since = open_phase
        residency = self.phase_residency.setdefault(pid, {})
        residency[phase] = residency.get(phase, 0.0) + max(0.0, ts - since)

    def _finish(self) -> None:
        """Close residency intervals still open at the end of the run."""
        for pid in list(self._phase_open):
            self._close_phase(pid, self._max_ts)

    # -- derived ------------------------------------------------------------

    @property
    def pids(self) -> list:
        seen = set(self.switches) | set(self.names) | set(self.phase_residency)
        seen.discard(None)
        return sorted(seen)

    def total_switches(self) -> float:
        return sum(self.switches.values())

    def total_migrations(self) -> int:
        return sum(self.migrations.values())


class TimelineAnalyzer:
    """Folds a recorded event stream into :class:`RunTimeline`\\ s.

    Build from a live recorder (:meth:`from_recorder`) or a Chrome
    trace file (:meth:`from_file`).
    """

    def __init__(self, runs: dict, events: list, metrics=None):
        self.metrics = dict(metrics or {})
        self.timelines: dict = {}
        for run, (label, clock) in sorted(runs.items()):
            self.timelines[run] = RunTimeline(run, label, clock)
        for ph, cat, name, run, ts, tid, value, args in events:
            if ph == "M":
                continue
            timeline = self.timelines.get(run)
            if timeline is None:
                timeline = self.timelines[run] = RunTimeline(
                    run, f"run-{run}", "sim"
                )
            timeline._fold(ph, cat, name, ts, tid, value, args)
        for timeline in self.timelines.values():
            timeline._finish()

    @classmethod
    def from_recorder(cls, recorder) -> "TimelineAnalyzer":
        return cls(recorder.runs, recorder.events, recorder.metrics)

    @classmethod
    def from_file(
        cls, path, metrics=None, tolerant_tail: bool = False
    ) -> "TimelineAnalyzer":
        from repro.telemetry.export import load_chrome_trace

        runs, events = load_chrome_trace(path, tolerant_tail=tolerant_tail)
        return cls(runs, events, metrics)

    # -- access -------------------------------------------------------------

    def runs(self) -> list:
        """``(run id, label, clock)`` triples, in id order."""
        return [(t.run, t.label, t.clock) for t in self.timelines.values()]

    def timeline(self, run: int) -> RunTimeline:
        return self.timelines[run]

    def switches(self, run: int, pid: int) -> float:
        """Core-switch total of one process — exact against
        ``ProcessStats.switches`` (see module docstring)."""
        return self.timelines[run].switches.get(pid, 0.0)

    def migration_counts(self, run: int, pid: int) -> dict:
        """Per-phase integer migration counts of one process."""
        return dict(self.timelines[run].phase_migrations.get(pid, {}))

    def phase_residency(self, run: int, pid: int) -> dict:
        """Per-phase residency seconds of one process."""
        return dict(self.timelines[run].phase_residency.get(pid, {}))

    def queue_depth(self, run: int) -> list:
        """Jobs-in-system ``(ts, value)`` samples of one run, in event
        order (recorded by open-system engine runs under the
        ``opensys`` category)."""
        return list(self.timelines[run].queue_depth_samples)

    def stall_attribution(self, run: int, pid: int) -> dict:
        """Overhead attribution from the process-end stats payload:
        mark overhead, migration cycles, and per-core-type cycles."""
        stats = self.timelines[run].end_stats.get(pid)
        if not stats:
            return {}
        cycles_by_type = stats.get("cycles_by_type", {})
        total_cycles = sum(cycles_by_type.values())
        switches = stats.get("switches", 0.0)
        from repro.sim.scheduler.affinity import MIGRATION_CYCLES

        migration_cycles = switches * MIGRATION_CYCLES
        mark_cycles = stats.get("mark_overhead_cycles", 0.0)
        return {
            "total_cycles": total_cycles,
            "cycles_by_type": dict(cycles_by_type),
            "mark_overhead_cycles": mark_cycles,
            "migration_cycles": migration_cycles,
            "overhead_fraction": (
                (mark_cycles + migration_cycles) / total_cycles
                if total_cycles > 0
                else 0.0
            ),
        }
