"""Typed trace events and their categories.

Events are stored as flat 8-tuples rather than objects — the recorder
sits on simulator hot paths, and a tuple append is the cheapest thing
CPython can do per event.  The layout is fixed::

    (ph, cat, name, run, ts, tid, value, args)

``ph`` is the Chrome ``trace_event`` phase letter ("X" complete span,
"I" instant, "C" counter, "M" metadata), ``cat`` the category string,
``run`` the run id (exported as the Chrome ``pid``, so every simulation
gets its own track group), ``ts`` the timestamp in the run's clock
domain (simulation seconds, or wall seconds for harness runs), ``tid``
the lane within the run, ``value`` the counter value or span duration,
and ``args`` an optional payload dict.

Lanes: core-level events (quantum spans, idle counters) use the core id
directly as ``tid``; process-level events offset the pid by
:data:`PROC_TID_BASE` so core lanes and process lanes never collide in
the viewer.

Categories
==========

=============  ==================================================  ========
category       events                                              default
=============  ==================================================  ========
``exec``       migrations, thrash switches, process start/end,     on
               per-core idle totals
``sched``      dispatch decisions: placements, steals, balance     on
               moves
``tuning``     IPC samples, Algorithm-2 core picks,                on
               degradation-ladder steps
``phase``      per-process phase-type transitions                  on
``fault``      injected fault applications/restores/skips          on
``cache``      pipeline-cache hit/miss metrics (no timeline)       on
``task``       harness task lifecycle (wall clock)                 on
``broker``     sweep-broker protocol: enqueue, claim, complete,    on
               fail, reclaim, quarantine, dedupe (wall clock)
``opensys``    open-system dynamics: arrivals, cancellations,      off
               breakdown/repair windows, jobs-in-system samples
``quantum``    one span per scheduling quantum                     off
``segment``    per-trace-step counters                             off
=============  ==================================================  ========

The off-by-default categories either cost too much for the <5% tracing
budget (a paper-scale run executes hundreds of thousands of quanta) or
only mean something for a specific run shape (``opensys`` events fire
only when an open-system engine drives the run; keeping the category
opt-in leaves every closed-run trace byte-identical to before it
existed).  Enable them explicitly (``REPRO_TRACE_CATEGORIES=all`` or
``...=exec,opensys``) when needed.

For the high-volume categories there is a second lever: deterministic
sampling.  ``TraceRecorder(sample={"quantum": 1/16})`` keeps a seeded
hash-chosen subset of a category's events instead of all or none —
see :class:`~repro.telemetry.recorder.TraceRecorder`.
"""

from __future__ import annotations

#: Offset added to a process pid to form its event lane, keeping
#: process lanes clear of core-id lanes in the trace viewer.
PROC_TID_BASE = 1000

#: Categories recorded by default: the decision-level timeline, cheap
#: enough that full-scale runs stay within the tracing overhead budget.
DEFAULT_CATEGORIES = frozenset(
    {"exec", "sched", "tuning", "phase", "fault", "cache", "task", "broker",
     "store"}
)

#: Every category, including the high-volume per-quantum/per-step ones
#: and the open-system dynamics timeline.
ALL_CATEGORIES = DEFAULT_CATEGORIES | {"quantum", "segment", "opensys"}


def parse_categories(text: str) -> frozenset:
    """Parse a ``REPRO_TRACE_CATEGORIES``-style comma list.

    ``"all"`` selects every category, ``"default"`` (or an empty
    string) the default set; otherwise the comma-separated names are
    validated against :data:`ALL_CATEGORIES`.
    """
    from repro.errors import TelemetryError

    text = (text or "").strip().lower()
    if not text or text == "default":
        return DEFAULT_CATEGORIES
    if text == "all":
        return frozenset(ALL_CATEGORIES)
    names = frozenset(part.strip() for part in text.split(",") if part.strip())
    unknown = names - ALL_CATEGORIES
    if unknown:
        raise TelemetryError(
            f"unknown trace categories {sorted(unknown)}; "
            f"choose from {sorted(ALL_CATEGORIES)}"
        )
    return names
