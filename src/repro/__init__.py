"""Phase-based tuning for performance-asymmetric multicore processors.

A complete, self-contained reproduction of Sondag & Rajan (CGO 2011):
the static phase-transition analysis (basic-block, interval, and
inter-procedural loop techniques), the phase-mark binary rewriter, the
dynamic IPC-monitoring runtime with Algorithm 2 core assignment — plus
everything the paper's evaluation rested on, rebuilt as simulation: a
synthetic ISA, SPEC-like phased benchmarks, a 4-core AMP with an
O(1)-scheduler baseline, hardware counters, and the fairness/throughput
metrics.

Quickstart::

    from repro import tune_program, LoopStrategy, core2quad_amp
    from repro.workloads import spec_benchmark

    bench = spec_benchmark("183.equake")
    tuned = tune_program(bench.program, LoopStrategy(45), spec=bench.spec)
    print(tuned.instrumented)          # marks + space overhead
    print(tuned.isolated_seconds)      # baseline wall time, alone

See ``examples/`` for runnable end-to-end scenarios and
``repro.experiments`` for the paper's tables and figures.
"""

from repro.errors import ReproError
from repro.isa import assemble, disassemble, ProgramBuilder
from repro.program import Program, validate_program
from repro.analysis import (
    StaticBlockTyper,
    ProfileBlockTyper,
    annotate_program,
    inject_clustering_error,
)
from repro.instrument import (
    BBStrategy,
    IntervalStrategy,
    LoopStrategy,
    instrument,
    parse_strategy,
)
from repro.sim import (
    BehaviorSpec,
    MachineConfig,
    Simulation,
    SimProcess,
    TraceGenerator,
    core2quad_amp,
    three_core_amp,
)
from repro.tuning import (
    PhaseTuningRuntime,
    select_core,
    standard_runtime,
    tune_program,
)
from repro.workloads import Workload, WorkloadRun, spec_benchmark, spec_suite
from repro.metrics import fairness_report, throughput_improvement

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "assemble",
    "disassemble",
    "ProgramBuilder",
    "Program",
    "validate_program",
    "StaticBlockTyper",
    "ProfileBlockTyper",
    "annotate_program",
    "inject_clustering_error",
    "BBStrategy",
    "IntervalStrategy",
    "LoopStrategy",
    "instrument",
    "parse_strategy",
    "BehaviorSpec",
    "MachineConfig",
    "Simulation",
    "SimProcess",
    "TraceGenerator",
    "core2quad_amp",
    "three_core_amp",
    "PhaseTuningRuntime",
    "select_core",
    "standard_runtime",
    "tune_program",
    "Workload",
    "WorkloadRun",
    "spec_benchmark",
    "spec_suite",
    "fairness_report",
    "throughput_improvement",
    "__version__",
]
