"""Slot-based workloads (Section IV-A2 of the paper).

"Our workloads maintain a constant number of running jobs ... we
maintain a job queue for each workload slot.  That is, if we have a
workload of size 18 then there are 18 queues ... each created
individually from randomly selected benchmarks.  When a workload is
started, the first benchmark in each queue is run.  Upon completion of
any process in a queue, the next job in the queue is immediately
started.  When comparing two techniques, the same queues were used for
each experiment."

A :class:`Workload` is the queue structure (pure data, seeded); a
:class:`WorkloadRun` binds it to one machine + technique and runs it on
the simulator, pre-generating one tuned and one baseline trace per
distinct benchmark so repeated jobs are cheap.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import WorkloadError
from repro.instrument.marker import MarkingStrategy
from repro.sim.checkpoint import CheckpointManager
from repro.sim.executor import Simulation, SimulationResult
from repro.sim.machine import MachineConfig
from repro.sim.process import SimProcess, Trace
from repro.tuning.pipeline import PipelineCache, baseline_binary, tune_program
from repro.workloads.spec import SPEC_BENCHMARKS, spec_benchmark
from repro.workloads.synthetic import SyntheticBenchmark


@dataclass
class Workload:
    """A fixed-size multiprogramming workload.

    Attributes:
        slots: number of simultaneously running jobs (paper: 18-84).
        queues: per-slot benchmark-name sequences.
        seed: the seed the queues were drawn from.
    """

    slots: int
    queues: list
    seed: int

    @classmethod
    def random(
        cls,
        slots: int,
        seed: int = 0,
        queue_length: int = 512,
        benchmarks: Optional[tuple] = None,
    ) -> "Workload":
        """Draw per-slot queues of randomly selected benchmarks.

        Args:
            slots: workload size.
            seed: RNG seed; the same seed reproduces the same queues.
            queue_length: jobs per queue (long enough to never run dry).
            benchmarks: candidate names; the full SPEC-like suite by
                default.
        """
        if slots <= 0:
            raise WorkloadError(f"workload needs at least one slot, got {slots}")
        names = tuple(benchmarks or SPEC_BENCHMARKS)
        rng = random.Random(seed)
        queues = [
            [names[rng.randrange(len(names))] for _ in range(queue_length)]
            for _ in range(slots)
        ]
        return cls(slots, queues, seed)

    def benchmark_names(self) -> set:
        """All distinct benchmark names appearing in any queue."""
        return {name for queue in self.queues for name in queue}


@dataclass
class _PreparedBenchmark:
    benchmark: SyntheticBenchmark
    trace_template: Trace
    isolated_seconds: float


class WorkloadRun:
    """One workload bound to a machine and (optionally) a technique.

    Args:
        workload: the slot/queue structure.
        machine: the AMP to run on.
        strategy: marking strategy for tuned runs; ``None`` runs the
            uninstrumented baseline.
        typing_overrides: optional ``{benchmark_name: BlockTyping}``
            (e.g. with injected clustering error, Figure 7).
        cache: static-pipeline cache; the process-wide default when
            omitted, so sweeps over runtime parameters reuse the
            instrumented programs and traces across runs.
    """

    def __init__(
        self,
        workload: Workload,
        machine: MachineConfig,
        strategy: Optional[MarkingStrategy] = None,
        typing_overrides: Optional[dict] = None,
        cache: Optional[PipelineCache] = None,
    ):
        self.workload = workload
        self.machine = machine
        self.strategy = strategy
        self._prepared: dict = {}
        typing_overrides = typing_overrides or {}

        for name in sorted(workload.benchmark_names()):
            benchmark = spec_benchmark(name)
            if strategy is None:
                trace, isolated = baseline_binary(
                    benchmark.program, machine, benchmark.spec, cache=cache
                )
            else:
                tuned = tune_program(
                    benchmark.program,
                    strategy,
                    machine,
                    benchmark.spec,
                    typing=typing_overrides.get(name),
                    cache=cache,
                )
                trace = tuned.tuned_trace
                isolated = tuned.isolated_seconds
            self._prepared[name] = _PreparedBenchmark(benchmark, trace, isolated)

        self._next_pid = 0
        self._cursor = [0] * workload.slots
        #: The simulation the last :meth:`run` call executed.  On a
        #: checkpoint resume this is the *snapshot's* simulation (whose
        #: runtime carries the accumulated tuning state), not one built
        #: from this object's arguments — callers reading post-run
        #: runtime statistics must go through it.
        self.last_simulation: Optional[Simulation] = None

    def _on_complete(self, proc: SimProcess, now: float) -> SimProcess:
        # Bound method rather than a lambda so simulation snapshots stay
        # picklable; the checkpoint then carries this WorkloadRun (queue
        # cursors, pid counter) along with the simulation state.
        return self._spawn(proc.slot)

    def _spawn(self, slot: int) -> SimProcess:
        queue = self.workload.queues[slot]
        index = self._cursor[slot]
        if index >= len(queue):
            raise WorkloadError(
                f"slot {slot} ran out of queued jobs after {index}; "
                f"increase queue_length"
            )
        self._cursor[slot] = index + 1
        name = queue[index]
        prepared = self._prepared[name]
        # The trace itself is immutable — all consumption state lives in
        # the per-process cursor — so processes share the template
        # directly (and with it the flattened-array cache).
        trace = prepared.trace_template
        self._next_pid += 1
        return SimProcess(
            self._next_pid,
            name,
            trace,
            self.machine.all_cores_mask,
            isolated_time=prepared.isolated_seconds,
            slot=slot,
        )

    def run(
        self,
        interval: float,
        runtime=None,
        scheduler=None,
        contention_alpha: float = 0.4,
        pollution_beta: float = 0.6,
        faults=None,
        checkpoint=None,
        coalesce=None,
    ) -> SimulationResult:
        """Run the workload for *interval* simulated seconds.

        Args:
            runtime: tuning runtime (pass one iff a strategy was given).
            scheduler: defaults to a fresh O(1)-like scheduler.
            contention_alpha / pollution_beta: executor knobs.
            faults: optional :class:`~repro.sim.faults.FaultPlan` (or
                injector) perturbing the run; ``None`` runs fault-free.
            coalesce: macro-quantum coalescing override; ``None`` (the
                default) lets the simulation resolve the
                ``REPRO_NO_COALESCE`` environment kill-switch.  On a
                checkpoint resume the snapshot's mode wins (modulo the
                kill-switch), like every other snapshot argument.
            checkpoint: optional
                :class:`~repro.sim.checkpoint.CheckpointManager` (or a
                directory path).  The run checkpoints at the manager's
                cadence, and — the resume path — when the directory
                already holds a valid snapshot, the run *continues from
                it*, discarding the arguments' fresh state in favour of
                the checkpointed simulation (which carries its own
                WorkloadRun, scheduler, and runtime).
        """
        if checkpoint is not None and isinstance(checkpoint, (str, os.PathLike)):
            checkpoint = CheckpointManager(checkpoint)
        simulation = None
        if checkpoint is not None:
            state = checkpoint.latest_state()
            if state is not None:
                simulation = Simulation.from_snapshot(state)
        if simulation is None:
            simulation = Simulation(
                self.machine,
                scheduler=scheduler,
                runtime=runtime,
                contention_alpha=contention_alpha,
                pollution_beta=pollution_beta,
                on_complete=self._on_complete,
                faults=faults,
                coalesce=coalesce,
            )
            for slot in range(self.workload.slots):
                simulation.add_process(self._spawn(slot), 0.0)
        self.last_simulation = simulation
        result = simulation.run(interval, checkpoint=checkpoint)
        simulation.snapshot_running()
        return result

    def isolated_seconds(self, name: str) -> float:
        return self._prepared[name].isolated_seconds

    def prepared(self, name: str) -> _PreparedBenchmark:
        return self._prepared[name]
