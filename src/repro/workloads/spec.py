"""The fifteen SPEC-like benchmarks of Table 1.

Real SPEC binaries are unavailable, so each benchmark here is a
synthetic program whose *shape* mirrors what its namesake is known for
and what Table 1 reports about it:

==================  =========================================================
benchmark            shape
==================  =========================================================
401.bzip2 (2006)    block-sort/compress alternation: cache and compute
                    phases with streaming I/O bursts; many switches.
410.bwaves (2006)   long memory-bound solver sweeps, few phase changes.
429.mcf (2006)      pointer-chasing memory-bound; only a handful of
                    switches over a long run.
459.GemsFDTD        a single streaming phase type: zero phase
                    transitions (Table 1 reports 0 switches).
470.lbm (2006)      lattice-Boltzmann streaming with occasional
                    collision compute; few switches.
473.astar (2006)    short run, small loops below every marking
                    threshold: no phases at all.
188.ammp (2000)     mostly one compute phase plus a setup phase.
173.applu (2000)    alternating solver sweeps: mixed and streaming.
179.art (2000)      cache-resident neural-net scan, brief setup.
183.equake (2000)   rapid alternation between assembly (cache) and
                    solve (stream): the highest switch *rate* in Table 1.
164.gzip (2000)     small cache/compute alternation, short run.
181.mcf (2000)      short pointer-chasing run, few switches.
172.mgrid (2000)    multigrid: regular cache/stream alternation, many
                    switches over a short run.
171.swim (2000)     long shallow-water streaming with periodic compute,
                    thousands of switches over a long run.
175.vpr (2000)      compute-bound place-and-route with a small cache
                    phase.
==================  =========================================================

Phase durations are specified in *seconds on the reference fast core*
and converted to trip counts through the cost model, so retuning the
simulator's constants rescales every benchmark consistently.  Isolated
runtimes are Table 1's, scaled by ``1/50`` and clamped to [1.8 s, 60 s]
so whole workloads complete in simulable time.  As in the paper's
400-second windows over real SPEC (where e.g. 410.bwaves runs for
33,636 s), the long memory-bound codes mostly *occupy* the machine
while the short and medium codes dominate the set of completed
processes.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import WorkloadError
from repro.sim.machine import core2quad_amp
from repro.sim.tracegen import TraceGenerator
from repro.workloads.synthetic import (
    KernelSpec,
    PhaseSpec,
    SyntheticBenchmark,
    build_benchmark,
    cache_kernel,
    compute_kernel,
    mixed_kernel,
    stream_kernel,
)

#: Table 1 rows: (name, switches, isolated runtime in seconds).
TABLE1_REFERENCE = {
    "401.bzip2": (4837, 364),
    "410.bwaves": (205, 33636),
    "429.mcf": (15, 872),
    "459.GemsFDTD": (0, 3327),
    "470.lbm": (99, 1123),
    "473.astar": (0, 55),
    "188.ammp": (3, 67),
    "173.applu": (205, 3414),
    "179.art": (3, 46),
    "183.equake": (7715, 62),
    "164.gzip": (3, 23),
    "181.mcf": (6, 58),
    "172.mgrid": (2005, 172),
    "171.swim": (3204, 5720),
    "175.vpr": (6, 46),
}

#: Benchmark names in Table 1 order.
SPEC_BENCHMARKS = tuple(TABLE1_REFERENCE)

_RUNTIME_SCALE = 1.0 / 50.0
_MIN_SECONDS = 1.8
_MAX_SECONDS = 60.0


def scaled_runtime(name: str) -> float:
    """Target isolated runtime of one benchmark, in simulated seconds."""
    try:
        _, seconds = TABLE1_REFERENCE[name]
    except KeyError:
        raise WorkloadError(f"unknown SPEC-like benchmark {name!r}") from None
    return min(_MAX_SECONDS, max(_MIN_SECONDS, seconds * _RUNTIME_SCALE))


_PROBE_TRIPS = 10_000


@lru_cache(maxsize=None)
def _kernel_cycles_per_iteration(kernel: KernelSpec) -> float:
    """Cycles one kernel iteration costs on the reference fast core.

    Measured by tracing a probe benchmark, so it covers the whole loop
    body — including the branch diamond's expected path — regardless of
    how many basic blocks the kernel spans.
    """
    probe = build_benchmark(
        "__probe", [PhaseSpec("probe", kernel, _PROBE_TRIPS)], cold_procs=0
    )
    machine = core2quad_amp()
    generator = TraceGenerator(machine)
    trace = generator.generate(probe.program, probe.spec)
    fast = machine.core_types()[0]
    return trace.total_cycles(fast.name) / _PROBE_TRIPS


def _trips_for(kernel: KernelSpec, seconds: float) -> int:
    """Trip count so one visit of the phase lasts *seconds* on the
    reference fast core."""
    cycles = _kernel_cycles_per_iteration(kernel)
    fast_hz = core2quad_amp().core_types()[0].freq_hz
    return max(1, int(round(seconds * fast_hz / cycles)))


def _phased(name, parts, outer):
    """Build a benchmark from (label, kernel, seconds-per-visit) parts.

    Seconds are per *visit*; total runtime ~ outer x sum(seconds).
    """
    phases = [
        PhaseSpec(label, kernel, _trips_for(kernel, seconds))
        for label, kernel, seconds in parts
    ]
    return build_benchmark(name, phases, outer_trips=outer)


def _build_401_bzip2() -> SyntheticBenchmark:
    total = scaled_runtime("401.bzip2")  # 7.28 s
    outer = 36
    per = total / outer
    return _phased(
        "401.bzip2",
        [
            ("sort", cache_kernel(8, 9), per * 0.45),
            ("huff", compute_kernel(16, 8), per * 0.35),
            ("io", stream_kernel(12, 6), per * 0.20),
        ],
        outer,
    )


def _build_410_bwaves() -> SyntheticBenchmark:
    total = scaled_runtime("410.bwaves")  # capped at 60 s
    outer = 4
    per = total / outer
    return _phased(
        "410.bwaves",
        [
            ("sweep", stream_kernel(12, 6), per * 0.85),
            ("bc", mixed_kernel(4, 12, 6), per * 0.15),
        ],
        outer,
    )


def _build_429_mcf() -> SyntheticBenchmark:
    total = scaled_runtime("429.mcf")  # 60 s cap
    outer = 3
    per = total / outer
    return _phased(
        "429.mcf",
        [
            ("simplex", stream_kernel(14, 4, stride=8), per * 0.9),
            ("price", mixed_kernel(4, 10, 8), per * 0.1),
        ],
        outer,
    )


def _build_459_gemsfdtd() -> SyntheticBenchmark:
    total = scaled_runtime("459.GemsFDTD")  # 60 s cap
    # A single phase type: the field-update sweep.  No transitions.
    return _phased(
        "459.GemsFDTD",
        [("update", stream_kernel(12, 6), total)],
        1,
    )


def _build_470_lbm() -> SyntheticBenchmark:
    total = scaled_runtime("470.lbm")  # 60 s cap
    outer = 12
    per = total / outer
    return _phased(
        "470.lbm",
        [
            ("stream", stream_kernel(11, 7), per * 0.8),
            ("collide", mixed_kernel(4, 13, 5), per * 0.2),
        ],
        outer,
    )


def _build_473_astar() -> SyntheticBenchmark:
    total = scaled_runtime("473.astar")  # 1.1 s
    # Tiny loops: bodies far below every minimum-size threshold, so no
    # technique places a mark — "these benchmarks will simply execute on
    # any core the OS deems appropriate".
    tiny = KernelSpec(int_ops=4, table_loads=1, table_stride=16, branchy=False)
    return _phased("473.astar", [("search", tiny, total)], 1)


def _build_188_ammp() -> SyntheticBenchmark:
    total = scaled_runtime("188.ammp")  # 1.34 s
    return _phased(
        "188.ammp",
        [
            ("setup", mixed_kernel(4, 10, 6), total * 0.15),
            ("force", compute_kernel(19, 5), total * 0.85),
        ],
        1,
    )


def _build_173_applu() -> SyntheticBenchmark:
    total = scaled_runtime("173.applu")  # 60 s cap
    outer = 24
    per = total / outer
    return _phased(
        "173.applu",
        [
            ("jacobi", mixed_kernel(4, 12, 6), per * 0.5),
            ("rhs", stream_kernel(12, 6), per * 0.5),
        ],
        outer,
    )


def _build_179_art() -> SyntheticBenchmark:
    total = scaled_runtime("179.art")  # 0.92 s
    return _phased(
        "179.art",
        [
            ("scan", cache_kernel(9, 7), total * 0.9),
            ("match", compute_kernel(17, 5), total * 0.1),
        ],
        1,
    )


def _build_183_equake() -> SyntheticBenchmark:
    total = scaled_runtime("183.equake")  # 1.24 s
    outer = 48  # Rapid alternation: the highest switch rate in Table 1.
    per = total / outer
    return _phased(
        "183.equake",
        [
            ("assemble", cache_kernel(8, 9), per * 0.5),
            ("solve", stream_kernel(12, 6), per * 0.5),
        ],
        outer,
    )


def _build_164_gzip() -> SyntheticBenchmark:
    total = scaled_runtime("164.gzip")  # 0.46 s
    outer = 2
    per = total / outer
    return _phased(
        "164.gzip",
        [
            ("deflate", cache_kernel(8, 8, 6), per * 0.7),
            ("crc", compute_kernel(15, 9), per * 0.3),
        ],
        outer,
    )


def _build_181_mcf() -> SyntheticBenchmark:
    total = scaled_runtime("181.mcf")  # 1.16 s
    outer = 2
    per = total / outer
    return _phased(
        "181.mcf",
        [
            ("chase", stream_kernel(14, 4, stride=8), per * 0.85),
            ("update", mixed_kernel(4, 10, 8), per * 0.15),
        ],
        outer,
    )


def _build_172_mgrid() -> SyntheticBenchmark:
    total = scaled_runtime("172.mgrid")  # 3.44 s
    outer = 30
    per = total / outer
    return _phased(
        "172.mgrid",
        [
            ("relax", cache_kernel(8, 9), per * 0.5),
            ("resid", stream_kernel(12, 6), per * 0.5),
        ],
        outer,
    )


def _build_171_swim() -> SyntheticBenchmark:
    total = scaled_runtime("171.swim")  # 60 s cap
    outer = 40
    per = total / outer
    return _phased(
        "171.swim",
        [
            ("calc1", stream_kernel(12, 6), per * 0.6),
            ("calc2", compute_kernel(17, 7), per * 0.4),
        ],
        outer,
    )


def _build_175_vpr() -> SyntheticBenchmark:
    total = scaled_runtime("175.vpr")  # 0.92 s
    outer = 2
    per = total / outer
    return _phased(
        "175.vpr",
        [
            ("route", compute_kernel(16, 8), per * 0.75),
            ("timing", cache_kernel(8, 7), per * 0.25),
        ],
        outer,
    )


_BUILDERS = {
    "401.bzip2": _build_401_bzip2,
    "410.bwaves": _build_410_bwaves,
    "429.mcf": _build_429_mcf,
    "459.GemsFDTD": _build_459_gemsfdtd,
    "470.lbm": _build_470_lbm,
    "473.astar": _build_473_astar,
    "188.ammp": _build_188_ammp,
    "173.applu": _build_173_applu,
    "179.art": _build_179_art,
    "183.equake": _build_183_equake,
    "164.gzip": _build_164_gzip,
    "181.mcf": _build_181_mcf,
    "172.mgrid": _build_172_mgrid,
    "171.swim": _build_171_swim,
    "175.vpr": _build_175_vpr,
}


@lru_cache(maxsize=None)
def spec_benchmark(name: str) -> SyntheticBenchmark:
    """Build (and cache) one SPEC-like benchmark by Table 1 name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown SPEC-like benchmark {name!r}; "
            f"choose from {sorted(_BUILDERS)}"
        ) from None
    return builder()


def spec_suite() -> list:
    """All fifteen benchmarks, in Table 1 order."""
    return [spec_benchmark(name) for name in SPEC_BENCHMARKS]
