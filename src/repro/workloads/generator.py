"""Seeded random program generator.

Produces structurally diverse, always-valid programs — nested loops,
conditionals, calls (including recursion), memory accesses across
regions — for property-based testing of the analysis, instrumentation
and trace-generation pipelines.
"""

from __future__ import annotations

import random

from repro.isa.builder import ProcedureBuilder, ProgramBuilder
from repro.program.module import Program

_REGIONS = [("heap", 32 << 20), ("table", 1 << 20), ("small", 8 << 10)]


def _emit_straightline(b: ProcedureBuilder, rng: random.Random, n: int) -> None:
    for _ in range(n):
        choice = rng.randrange(6)
        if choice == 0:
            b.add("r1", "r1", rng.randrange(1, 7))
        elif choice == 1:
            b.fmul("f1", "f1", "f2")
        elif choice == 2:
            region, _ = _REGIONS[rng.randrange(len(_REGIONS))]
            b.load("r2", region, index="r1", stride=rng.choice((0, 4, 8, 64)))
        elif choice == 3:
            region, _ = _REGIONS[rng.randrange(len(_REGIONS))]
            b.store(region, "r2", index="r1", stride=rng.choice((0, 4, 8)))
        elif choice == 4:
            b.xor("r3", "r3", "r1")
        else:
            b.mul("r4", "r4", "r1")


def _emit_body(
    b: ProcedureBuilder,
    rng: random.Random,
    depth: int,
    procs: list,
    budget: list,
) -> None:
    """Emit a random mix of straight-line code, loops, ifs and calls."""
    pieces = rng.randrange(1, 4)
    for _ in range(pieces):
        if budget[0] <= 0:
            return
        budget[0] -= 1
        kind = rng.randrange(4)
        if kind == 0 or depth >= 3:
            _emit_straightline(b, rng, rng.randrange(2, 12))
        elif kind == 1:
            # Counted loop.
            header = b.fresh_label("loop")
            counter = f"r{rng.randrange(5, 9)}"
            b.movi(counter, 0)
            b.label(header)
            _emit_body(b, rng, depth + 1, procs, budget)
            b.add(counter, counter, 1)
            b.cmp(counter, rng.randrange(2, 50))
            b.br("lt", header)
        elif kind == 2:
            # If-else diamond.
            else_label = b.fresh_label("else")
            join_label = b.fresh_label("join")
            b.cmp("r1", rng.randrange(100))
            b.br("ge", else_label)
            _emit_straightline(b, rng, rng.randrange(1, 8))
            b.jmp(join_label)
            b.label(else_label)
            _emit_straightline(b, rng, rng.randrange(1, 8))
            b.label(join_label)
            b.nop()
        else:
            if procs:
                b.call(rng.choice(procs))
            else:
                _emit_straightline(b, rng, rng.randrange(2, 8))


def random_program(seed: int = 0, procedures: int = 3) -> Program:
    """Generate a random, structurally valid program.

    Args:
        seed: RNG seed; equal seeds give identical programs.
        procedures: number of procedures besides ``main``.
    """
    rng = random.Random(seed)
    pb = ProgramBuilder(f"random-{seed}")
    for name, size in _REGIONS:
        pb.region(name, size)

    helper_names = [f"fn{i}" for i in range(procedures)]
    # Build helpers bottom-up so calls only target already-known names
    # (plus optional self-recursion).
    for i, name in enumerate(helper_names):
        callable_procs = helper_names[:i]
        if rng.random() < 0.3:
            callable_procs = callable_procs + [name]  # Self-recursion.
        with pb.proc(name) as b:
            budget = [rng.randrange(3, 10)]
            _emit_body(b, rng, 0, callable_procs, budget)
            b.ret()

    with pb.proc("main") as b:
        budget = [rng.randrange(5, 14)]
        _emit_body(b, rng, 0, helper_names, budget)
        b.ret()

    return pb.build()
