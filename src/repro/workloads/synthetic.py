"""Parameterized synthetic benchmarks.

A benchmark is a ``main`` procedure whose outer loop walks through a
sequence of *phases*; each phase is an inner loop generated from a
:class:`KernelSpec` that fixes its position on the memory-boundedness
spectrum:

* ``fp_ops`` / ``int_ops`` — arithmetic per iteration (compute end),
* ``table_loads`` — loads into an L2-resident table (cache-resident
  code: frequency-sensitive *and* vulnerable to L2 pollution),
* ``stream_ops`` — strided loads/stores into a DRAM-sized region
  (memory-bound end: slow cores waste fewer cycles on it).

The same description also yields the
:class:`~repro.sim.tracegen.BehaviorSpec` (loop trip counts), so
program text and dynamic behaviour always agree.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import WorkloadError
from repro.isa.builder import ProcedureBuilder, ProgramBuilder
from repro.program.module import Program
from repro.sim.tracegen import BehaviorSpec

#: Name and size of the DRAM-resident streaming region.
STREAM_REGION = "heap"
STREAM_REGION_BYTES = 32 << 20  # 32 MiB: far beyond any L2.

#: Name and size of the L2-resident table region.
TABLE_REGION = "table"
TABLE_REGION_BYTES = 1536 << 10  # 1.5 MiB: fits L2, exceeds L1.


@dataclass(frozen=True)
class KernelSpec:
    """One loop kernel's per-iteration instruction recipe.

    Attributes:
        fp_ops: floating-point multiply/add pairs per iteration.
        int_ops: integer ALU operations per iteration.
        table_loads: loads from the L2-resident table per iteration.
        table_stride: byte stride of table loads.
        stream_loads: strided loads from the DRAM region per iteration.
        stream_stores: strided stores to the DRAM region per iteration.
        stream_stride: byte stride of streaming accesses.
        divides: integer divides per iteration (heavy compute end).
        branchy: emit an if/else diamond mid-body.  Diamonds split the
            body into several basic blocks, which is what makes the
            basic-block, interval and loop techniques behave differently
            (a single-block body would make them all equivalent).
    """

    fp_ops: int = 0
    int_ops: int = 0
    table_loads: int = 0
    table_stride: int = 16
    stream_loads: int = 0
    stream_stores: int = 0
    stream_stride: int = 4
    divides: int = 0
    branchy: bool = True

    #: Instructions each side of the diamond adds (4 ops + jmp/landing).
    _DIAMOND_INSTRS = 11

    def instructions_per_iteration(self) -> int:
        """Kernel body instructions, excluding the 3-instruction latch."""
        return (
            2 * self.fp_ops
            + self.int_ops
            + 2 * self.table_loads
            + 2 * self.stream_loads
            + 2 * self.stream_stores
            + self.divides
            + (self._DIAMOND_INSTRS if self.branchy else 0)
        )


@dataclass(frozen=True)
class PhaseSpec:
    """One phase: a kernel run for a number of iterations per visit.

    Attributes:
        label: loop label in the generated code (must be unique within
            the benchmark).
        kernel: the per-iteration recipe.
        trips: inner-loop iterations per visit of the phase.
    """

    label: str
    kernel: KernelSpec
    trips: int


@dataclass
class SyntheticBenchmark:
    """A built benchmark: program plus behaviour specification."""

    name: str
    program: Program
    spec: BehaviorSpec
    phases: list = field(default_factory=list)

    def __repr__(self) -> str:
        return f"SyntheticBenchmark({self.name!r}, {len(self.phases)} phases)"


def _emit_kernel_body(b: ProcedureBuilder, kernel: KernelSpec) -> None:
    """Emit one iteration's worth of kernel instructions."""
    for _ in range(kernel.table_loads):
        b.load("r6", TABLE_REGION, index="r3", stride=kernel.table_stride)
        b.add("r7", "r7", "r6")
    for _ in range(kernel.stream_loads):
        b.load("r8", STREAM_REGION, index="r5", stride=kernel.stream_stride)
        b.add("r9", "r9", "r8")
    for _ in range(kernel.stream_stores):
        b.add("r9", "r9", 1)
        b.store(STREAM_REGION, "r9", index="r5", stride=kernel.stream_stride)
    if kernel.branchy:
        # An if/else diamond: splits the body into multiple basic
        # blocks, as real loop bodies have.
        else_label = b.fresh_label("else")
        join_label = b.fresh_label("join")
        b.cmp("r9", 0)
        b.br("ge", else_label)
        b.add("r12", "r12", 1)
        b.xor("r12", "r12", "r7")
        b.shl("r13", "r12", 1)
        b.add("r13", "r13", 3)
        b.jmp(join_label)
        b.label(else_label)
        b.fmul("f3", "f3", "f1")
        b.fadd("f4", "f4", "f3")
        b.label(join_label)
        b.or_("r14", "r13", "r12")
    for _ in range(kernel.fp_ops):
        b.fmul("f1", "f1", "f2")
        b.fadd("f2", "f2", "f1")
    for _ in range(kernel.int_ops):
        b.xor("r10", "r10", "r7")
    for _ in range(kernel.divides):
        b.div("r11", "r10", 3)


def _emit_phase(b: ProcedureBuilder, phase: PhaseSpec, counter: str) -> None:
    """Emit one phase loop."""
    b.movi(counter, 0)
    b.label(phase.label)
    _emit_kernel_body(b, phase.kernel)
    b.add(counter, counter, 1)
    b.cmp(counter, phase.trips)
    b.br("lt", phase.label)


def build_benchmark(
    name: str,
    phases: list,
    outer_trips: int = 1,
    helpers: Optional[dict] = None,
    cold_procs: int = 10,
) -> SyntheticBenchmark:
    """Build a phased benchmark.

    The ``main`` procedure visits every phase in order inside an outer
    loop of ``outer_trips`` iterations, so phases recur — the behaviour
    phase-based tuning exploits.

    Args:
        name: benchmark name.
        phases: :class:`PhaseSpec` sequence (at least one).
        outer_trips: how many times the phase sequence repeats.
        helpers: optional ``{phase_label: proc_name}`` — listed phases
            are emitted into their own procedure, called from the outer
            loop, exercising the inter-procedural loop analysis.
        cold_procs: number of cold setup/utility procedures to emit.
            Real binaries are dominated by code that rarely runs
            (initialisation, error paths, cold library calls); each cold
            procedure here is called once at startup and gives the
            binary realistic bulk — without them, a 78-byte phase mark
            against a few-hundred-byte binary would inflate the space
            overhead of Figure 3 by an order of magnitude.

    Raises:
        WorkloadError: on an empty phase list or duplicate labels.
    """
    if not phases:
        raise WorkloadError(f"benchmark {name!r} needs at least one phase")
    labels = [p.label for p in phases]
    if len(set(labels)) != len(labels):
        raise WorkloadError(f"benchmark {name!r} has duplicate phase labels")
    helpers = helpers or {}

    pb = ProgramBuilder(name)
    pb.region(STREAM_REGION, STREAM_REGION_BYTES)
    pb.region(TABLE_REGION, TABLE_REGION_BYTES)

    trip_counts = {}
    helper_bodies = {}
    for phase in phases:
        proc_name = helpers.get(phase.label)
        owner = proc_name if proc_name else "main"
        trip_counts[(owner, phase.label)] = phase.trips
        if proc_name:
            helper_bodies[phase.label] = proc_name

    with pb.proc("main") as b:
        for i in range(cold_procs):
            b.call(f"__cold{i}")
        if outer_trips > 1:
            b.movi("r1", 0)
            b.movi("r2", outer_trips)
            b.label("outer")
        for phase in phases:
            if phase.label in helper_bodies:
                b.call(helper_bodies[phase.label])
            else:
                _emit_phase(b, phase, "r3")
        if outer_trips > 1:
            b.add("r1", "r1", 1)
            b.cmp("r1", "r2")
            b.br("lt", "outer")
        b.ret()

    for phase in phases:
        if phase.label not in helper_bodies:
            continue
        with pb.proc(helper_bodies[phase.label]) as hb:
            _emit_phase(hb, phase, "r4")
            hb.ret()

    for i in range(cold_procs):
        _emit_cold_proc(pb, name, i)
        trip_counts[(f"__cold{i}", f"init{i}")] = 4

    if outer_trips > 1:
        trip_counts[("main", "outer")] = outer_trips

    program = pb.build()
    spec = BehaviorSpec(trip_counts=trip_counts)
    return SyntheticBenchmark(name, program, spec, list(phases))


# -- canonical kernels across the boundedness spectrum -----------------------

def compute_kernel(fp_ops: int = 18, int_ops: int = 6) -> KernelSpec:
    """Pure compute: IPC core-invariant, big wall-time win on fast cores."""
    return KernelSpec(fp_ops=fp_ops, int_ops=int_ops)


def cache_kernel(table_loads: int = 8, fp_ops: int = 9, int_ops: int = 4) -> KernelSpec:
    """L2-resident: frequency-sensitive and pollution-vulnerable."""
    return KernelSpec(table_loads=table_loads, fp_ops=fp_ops, int_ops=int_ops)


def mixed_kernel(
    stream_loads: int = 4, fp_ops: int = 12, int_ops: int = 6
) -> KernelSpec:
    """Middle of the spectrum: moderate stall fraction."""
    return KernelSpec(
        stream_loads=stream_loads, fp_ops=fp_ops, int_ops=int_ops
    )


def stream_kernel(
    stream_loads: int = 12, stream_stores: int = 6, stride: int = 4,
    int_ops: int = 6,
) -> KernelSpec:
    """Memory-bound streaming: slow cores waste far fewer stall cycles."""
    return KernelSpec(
        stream_loads=stream_loads,
        stream_stores=stream_stores,
        stream_stride=stride,
        int_ops=int_ops,
    )


def _emit_cold_proc(pb: ProgramBuilder, benchmark_name: str, index: int) -> None:
    """Emit one cold utility procedure (setup-style code, run once).

    Content is deterministic in (benchmark name, index) so binaries are
    reproducible; a short counted loop plus straight-line scalar code
    mimics initialisation routines.
    """
    salt = (zlib.crc32(f"{benchmark_name}/{index}".encode()) & 0xFFFF) or 1
    with pb.proc(f"__cold{index}") as b:
        b.movi("r1", salt & 0xFF)
        b.movi("r2", 4)
        b.movi("r4", 0)
        b.label(f"init{index}")
        for j in range(6 + (salt % 7)):
            if (salt >> j) & 1:
                b.add("r1", "r1", j + 1)
            else:
                b.xor("r1", "r1", "r2")
        b.store(TABLE_REGION, "r1", offset=64 * index)
        b.add("r4", "r4", 1)
        b.cmp("r4", "r2")
        b.br("lt", f"init{index}")
        for j in range(12 + (salt % 11)):
            b.shl("r5", "r1", 1)
            b.or_("r5", "r5", 3)
        b.ret()
