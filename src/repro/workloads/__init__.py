"""Workloads: synthetic SPEC-like benchmarks and slot-based job streams.

Real SPEC CPU 2000/2006 binaries are unavailable, so :mod:`synthetic`
builds programs from parameterized loop kernels spanning the full
memory-boundedness spectrum, and :mod:`spec` instantiates fifteen
benchmarks named after Table 1's rows with phase structures shaped like
their namesakes (single-phase codes, rapidly alternating codes,
long-running streaming codes, tiny codes with no phases at all).

:mod:`workload` reproduces Section IV-A2's construction: a workload has
a fixed number of *slots*, each with its own queue of randomly selected
benchmarks; on completion of any job the next one in that slot's queue
starts immediately, keeping the multiprogramming level constant.  The
same seed yields identical queues, so baseline and tuned runs compare
like for like.
"""

from repro.workloads.synthetic import (
    KernelSpec,
    PhaseSpec,
    SyntheticBenchmark,
    build_benchmark,
)
from repro.workloads.spec import (
    SPEC_BENCHMARKS,
    spec_benchmark,
    spec_suite,
)
from repro.workloads.workload import Workload, WorkloadRun
from repro.workloads.generator import random_program

__all__ = [
    "KernelSpec",
    "PhaseSpec",
    "SyntheticBenchmark",
    "build_benchmark",
    "SPEC_BENCHMARKS",
    "spec_benchmark",
    "spec_suite",
    "Workload",
    "WorkloadRun",
    "random_program",
]
