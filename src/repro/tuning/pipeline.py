"""One-call convenience pipeline: analyze, instrument, trace — memoized.

:func:`tune_program` is the library's front door for single programs:
it types the blocks, computes transitions for a strategy, builds the
phase marks, and generates both the tuned and the baseline trace for a
machine — ready to hand to :class:`~repro.sim.executor.Simulation`.

Every product of the static pipeline is memoized in a
:class:`PipelineCache` under a *content key*: a structural fingerprint
of the program combined with fingerprints of the strategy, machine,
behaviour spec and (optional) typing.  Sweeps that vary only runtime
parameters — the IPC threshold δ, injected error, the scheduler — hit
the cache and reuse the instrumented program and traces instead of
re-running typing, transition analysis and trace generation per sweep
point.  All pipeline stages are deterministic pure functions of the key,
so cached and fresh results are interchangeable bit for bit.

Cache levels (each usable on its own):

====================  =========================================================
``typing``            :class:`BlockTyping` per (program, typer)
``transitions``       transition-point sets per (program, typing, strategy)
``instrumented``      :class:`InstrumentedProgram` per (program, typing,
                      strategy)
``baseline-trace``    mark-free trace + isolated seconds per (program,
                      machine, spec)
``tuned``             the full :class:`TunedBinary` per (program, strategy,
                      machine, spec, typing)
====================  =========================================================
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Optional

from repro.errors import CacheCorruptionError
from repro.program.module import Program
from repro.analysis.annotate import annotate_program
from repro.analysis.block_typing import BlockTyping, StaticBlockTyper
from repro.instrument.marker import LoopStrategy, MarkingStrategy
from repro.instrument.rewriter import InstrumentedProgram, build_marks
from repro.sim.machine import MachineConfig, core2quad_amp
from repro.sim.process import Trace
from repro.sim.tracegen import BehaviorSpec, TraceGenerator
from repro.telemetry.context import current_recorder


def _telemetry_incr(name: str) -> None:
    """Bump a flat cache metric on the process recorder.  A no-op (one
    attribute check) with the null recorder or the ``cache`` category
    deselected; cache operations are far off any hot path."""
    rec = current_recorder()
    if rec.enabled and rec.wants("cache"):
        rec.incr(name)

# -- content fingerprints -------------------------------------------------------


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


@lru_cache(maxsize=1024)
def program_fingerprint(program: Program) -> str:
    """Structural hash of a program: procedures, labels, regions, entry.

    Keyed on object identity via ``lru_cache`` (programs are treated as
    immutable once built, and the benchmark factory interns them), with
    the digest itself computed from content so distinct objects with
    identical structure share cache entries.
    """
    h = hashlib.sha256()
    h.update(program.name.encode("utf-8"))
    h.update(program.entry.encode("utf-8"))
    for name in sorted(program.procedures):
        proc = program.procedures[name]
        h.update(name.encode("utf-8"))
        for instr in proc.code:
            h.update(repr(instr).encode("utf-8"))
        h.update(repr(sorted(proc.labels.items())).encode("utf-8"))
    for region_name in sorted(program.regions):
        region = program.regions[region_name]
        h.update(
            f"{region.name}:{region.size}:{region.hot_fraction}".encode("utf-8")
        )
    return h.hexdigest()


def strategy_fingerprint(strategy: MarkingStrategy) -> str:
    """Identity of a marking strategy, including non-name parameters."""
    return _digest(strategy.name, repr(strategy))


def machine_fingerprint(machine: MachineConfig) -> str:
    cores = ";".join(
        f"{c.cid}:{c.ctype.name}:{c.ctype.freq_ghz}:{c.ctype.l1_kb}:"
        f"{c.ctype.l2_kb}:{c.l2_group}"
        for c in machine.cores
    )
    return _digest(machine.name, cores)


def spec_fingerprint(spec: Optional[BehaviorSpec]) -> str:
    if spec is None:
        return "default-spec"
    trips = sorted((str(k), float(v)) for k, v in spec.trip_counts.items())
    return _digest(
        repr(trips),
        f"{spec.default_trip}:{spec.recursion_depth}:"
        f"{spec.max_inline_depth}:{spec.segment_budget}",
    )


def typing_fingerprint(typing: Optional[BlockTyping]) -> str:
    if typing is None:
        return "default-typing"
    return _digest(str(typing.num_types), repr(sorted(typing.types.items())))


# -- the cache ------------------------------------------------------------------


def _key_digest(key: tuple) -> str:
    """Integrity digest of a cache key's full byte representation."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


#: Environment variable naming a disk directory for the default cache.
#: Set (e.g. by ``python -m repro.experiments --cache-dir``) before
#: worker processes start so spawned workers inherit the disk tier.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class PipelineCache:
    """Content-keyed memo for static-pipeline products.

    Everything stored here is a deterministic pure function of its key,
    so sharing entries across runs cannot change results — only skip
    recomputation.  Tracks hit/miss counts per level for the benchmark
    harness.

    Every entry stores a sha256 digest of its key alongside the value;
    each hit re-hashes the lookup key and compares (detecting a cache
    whose entries were tampered with or damaged in transit — e.g. a
    pickled copy shipped to a worker).  A corrupt entry is evicted and
    rebuilt, or raised as :class:`~repro.errors.CacheCorruptionError`
    under ``strict=True``.

    With ``disk_dir`` set the cache gains a persistent tier: every
    build is also written to ``{level}-{digest}.pkl`` under that
    directory (atomically, via a temp file + ``os.replace``), and a
    memory miss falls back to the disk copy before rebuilding.  Disk
    entries carry the same key digest and are verified — and the full
    stored key compared against the lookup key — on every load, so a
    damaged or foreign file is evicted (or raised under ``strict``)
    exactly like a corrupt in-memory entry.  The directory is bounded
    to ``max_disk_entries`` files, evicting oldest-mtime first.

    Args:
        strict: raise on a detected corruption instead of silently
            rebuilding the entry.
        disk_dir: directory for the persistent tier (created if
            missing); ``None`` keeps the cache memory-only.
        max_disk_entries: cap on on-disk entry files.
    """

    def __init__(
        self,
        strict: bool = False,
        disk_dir=None,
        max_disk_entries: int = 512,
    ) -> None:
        self._entries: dict = {}
        self.strict = strict
        self.max_disk_entries = max_disk_entries
        self._disk_dir: Optional[Path] = None
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corruptions = 0
        if disk_dir is not None:
            self.set_disk_dir(disk_dir)

    # -- disk tier ----------------------------------------------------------

    @property
    def disk_dir(self) -> Optional[Path]:
        return self._disk_dir

    def set_disk_dir(self, disk_dir) -> None:
        """Enable (or move) the persistent tier; creates the directory."""
        path = Path(disk_dir)
        path.mkdir(parents=True, exist_ok=True)
        self._disk_dir = path

    def _disk_path(self, key: tuple) -> Path:
        return self._disk_dir / f"{key[0]}-{_key_digest(key)}.pkl"

    def _disk_load(self, key: tuple):
        """The disk entry for *key*, or None.  Corrupt files are
        unlinked (and raised under ``strict``)."""
        path = self._disk_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            stored_key, value, digest = pickle.loads(blob)
            ok = digest == _key_digest(key) and stored_key == key
        except Exception:
            ok = False
        if not ok:
            self.corruptions += 1
            try:
                path.unlink()
            except OSError:
                pass
            if self.strict:
                raise CacheCorruptionError(
                    f"disk cache entry {path.name} failed its integrity check"
                )
            return None
        return (value,)

    def _disk_store(self, key: tuple, value) -> None:
        """Atomically persist one entry, then enforce the size cap.

        Write failures (read-only directory, unpicklable value, disk
        full) leave the disk tier stale but never fail the build.
        """
        path = self._disk_path(key)
        try:
            blob = pickle.dumps(
                (key, value, _key_digest(key)), protocol=pickle.HIGHEST_PROTOCOL
            )
            fd, tmp = tempfile.mkstemp(
                dir=str(self._disk_dir), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            return
        self._evict_disk_overflow()

    def _evict_disk_overflow(self) -> None:
        if self.max_disk_entries is None:
            return
        try:
            files = [
                (entry.stat().st_mtime, entry)
                for entry in self._disk_dir.glob("*.pkl")
            ]
        except OSError:
            return
        excess = len(files) - self.max_disk_entries
        if excess <= 0:
            return
        # Tie-break equal mtimes by file name: coarse filesystem
        # timestamps make same-mtime batches common, and glob order is
        # filesystem-dependent — sorting on mtime alone would evict a
        # nondeterministic subset.
        files.sort(key=lambda pair: (pair[0], pair[1].name))
        for _, stale in files[:excess]:
            try:
                stale.unlink()
            except OSError:
                pass

    # -- lookup -------------------------------------------------------------

    def get_or_build(self, key: tuple, build: Callable):
        entry = self._entries.get(key)
        if entry is not None:
            value, digest = entry
            if digest == _key_digest(key):
                self.hits += 1
                _telemetry_incr("cache.hit")
                return value
            # The stored digest disagrees with the key that found the
            # entry: the entry (or its key) was corrupted after insert.
            self.corruptions += 1
            del self._entries[key]
            if self.strict:
                raise CacheCorruptionError(
                    f"pipeline cache entry for key {key[0]!r} failed its "
                    f"integrity check"
                )
        if self._disk_dir is not None:
            loaded = self._disk_load(key)
            if loaded is not None:
                value = loaded[0]
                self.hits += 1
                self.disk_hits += 1
                _telemetry_incr("cache.disk_hit")
                self._entries[key] = (value, _key_digest(key))
                return value
        self.misses += 1
        _telemetry_incr("cache.miss")
        value = build()
        self._entries[key] = (value, _key_digest(key))
        if self._disk_dir is not None:
            self._disk_store(key, value)
        return value

    # -- shipping (spawn-started workers) -----------------------------------

    def export_entries(self) -> bytes:
        """All entries as one pickled blob for :meth:`install_entries`.

        Lets a harness ship a warm cache to workers whose start method
        does not inherit parent memory (spawn/forkserver).
        """
        return pickle.dumps(
            list(self._entries.items()), protocol=pickle.HIGHEST_PROTOCOL
        )

    def install_entries(self, blob: bytes) -> int:
        """Install entries exported elsewhere; returns how many were
        accepted.  Each entry's digest is re-verified against its key,
        so damage in transit is dropped (or raised under ``strict``)."""
        count = 0
        for key, (value, digest) in pickle.loads(blob):
            if digest != _key_digest(key):
                self.corruptions += 1
                if self.strict:
                    raise CacheCorruptionError(
                        f"shipped cache entry for key {key[0]!r} failed "
                        f"its integrity check"
                    )
                continue
            self._entries[key] = (value, digest)
            count += 1
        return count

    def check_integrity(self) -> int:
        """Re-hash every entry's key; evict and count the corrupt ones.

        Returns the number of entries evicted.  Under ``strict=True``
        raises on the first corruption instead.
        """
        corrupt = [
            key
            for key, (value, digest) in self._entries.items()
            if digest != _key_digest(key)
        ]
        for key in corrupt:
            self.corruptions += 1
            del self._entries[key]
            if self.strict:
                raise CacheCorruptionError(
                    f"pipeline cache entry for key {key[0]!r} failed its "
                    f"integrity check"
                )
        return len(corrupt)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corruptions = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corruptions = 0

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "disk_hits": self.disk_hits,
            "corruptions": self.corruptions,
        }


#: Process-wide cache shared by default.  Worker processes of the
#: experiment harness each grow their own copy (or inherit the parent's
#: populated cache through fork).  A ``REPRO_CACHE_DIR`` environment
#: variable — inherited by spawned workers too — attaches the disk tier
#: from the start.
_DEFAULT_CACHE = PipelineCache(disk_dir=os.environ.get(CACHE_DIR_ENV) or None)


def default_cache() -> PipelineCache:
    """The process-wide pipeline cache."""
    return _DEFAULT_CACHE


def clear_default_cache() -> None:
    _DEFAULT_CACHE.clear()


# -- cached pipeline stages -----------------------------------------------------


def typed_blocks(
    program: Program,
    typer=None,
    cache: Optional[PipelineCache] = None,
) -> BlockTyping:
    """The (cached) block typing of *program* under *typer*."""
    if cache is None:
        cache = _DEFAULT_CACHE
    typer = typer or StaticBlockTyper()
    key = ("typing", program_fingerprint(program), repr(typer))
    return cache.get_or_build(key, lambda: typer.type_blocks(program))


def transition_points(
    aprog,
    strategy: MarkingStrategy,
    cache: Optional[PipelineCache] = None,
) -> list:
    """The (cached) transition-point set of one strategy on *aprog*.

    Transition points are pure data (procedure names, block indices,
    edges), so a set computed from one annotated instance is valid for
    any annotation of the same program + typing.
    """
    if cache is None:
        cache = _DEFAULT_CACHE
    key = (
        "transitions",
        program_fingerprint(aprog.program),
        typing_fingerprint(aprog.typing),
        strategy_fingerprint(strategy),
    )
    return cache.get_or_build(key, lambda: strategy.compute_points(aprog))


def instrument_cached(
    program: Program,
    strategy: MarkingStrategy,
    typing: Optional[BlockTyping] = None,
    cache: Optional[PipelineCache] = None,
) -> InstrumentedProgram:
    """Cached analogue of :func:`repro.instrument.rewriter.instrument`."""
    if cache is None:
        cache = _DEFAULT_CACHE
    key = (
        "instrumented",
        program_fingerprint(program),
        typing_fingerprint(typing),
        strategy_fingerprint(strategy),
    )

    def build() -> InstrumentedProgram:
        block_typing = (
            typing if typing is not None else typed_blocks(program, cache=cache)
        )
        aprog = annotate_program(program, block_typing)
        points = transition_points(aprog, strategy, cache=cache)
        marks = build_marks(aprog, points)
        return InstrumentedProgram(program, aprog, strategy.name, marks)

    return cache.get_or_build(key, build)


def baseline_binary(
    program: Program,
    machine: Optional[MachineConfig] = None,
    spec: Optional[BehaviorSpec] = None,
    cache: Optional[PipelineCache] = None,
) -> tuple:
    """Cached ``(trace, isolated_seconds)`` of the uninstrumented program."""
    if cache is None:
        cache = _DEFAULT_CACHE
    machine = machine or core2quad_amp()
    key = (
        "baseline-trace",
        program_fingerprint(program),
        machine_fingerprint(machine),
        spec_fingerprint(spec),
    )

    def build() -> tuple:
        generator = TraceGenerator(machine)
        trace = generator.generate(program, spec)
        return trace, generator.isolated_seconds(trace)

    return cache.get_or_build(key, build)


@dataclass
class TunedBinary:
    """Everything the pipeline produced for one program.

    Attributes:
        instrumented: the marked binary with overhead accounting.
        tuned_trace: trace with phase marks (run with a tuning runtime).
        baseline_trace: identical dynamics without marks (stock run).
        isolated_seconds: wall time of the baseline trace alone on the
            fastest core — the ``t_i`` used by the stretch metric.
    """

    instrumented: InstrumentedProgram
    tuned_trace: Trace
    baseline_trace: Trace
    isolated_seconds: float

    @property
    def space_overhead(self) -> float:
        return self.instrumented.space_overhead

    @property
    def mark_count(self) -> int:
        return len(self.instrumented.marks)


def tune_program(
    program: Program,
    strategy: Optional[MarkingStrategy] = None,
    machine: Optional[MachineConfig] = None,
    spec: Optional[BehaviorSpec] = None,
    typing: Optional[BlockTyping] = None,
    cache: Optional[PipelineCache] = None,
) -> TunedBinary:
    """Run the full static pipeline on *program* for *machine*.

    Args:
        strategy: defaults to the paper's best, ``Loop[45]``.
        machine: defaults to the paper's 4-core AMP.
        spec: behaviour parameters for trace generation.
        typing: pre-computed block typing (e.g. with injected error).
        cache: pipeline cache; the process-wide default when omitted.
            Pass a fresh :class:`PipelineCache` to isolate a run.
    """
    if cache is None:
        cache = _DEFAULT_CACHE
    strategy = strategy or LoopStrategy(45)
    machine = machine or core2quad_amp()
    key = (
        "tuned",
        program_fingerprint(program),
        strategy_fingerprint(strategy),
        machine_fingerprint(machine),
        spec_fingerprint(spec),
        typing_fingerprint(typing),
    )

    def build() -> TunedBinary:
        instrumented = instrument_cached(program, strategy, typing, cache=cache)
        generator = TraceGenerator(machine)
        tuned_trace = generator.generate(instrumented, spec)
        baseline_trace, isolated = baseline_binary(
            program, machine, spec, cache=cache
        )
        return TunedBinary(instrumented, tuned_trace, baseline_trace, isolated)

    return cache.get_or_build(key, build)
