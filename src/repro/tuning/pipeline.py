"""One-call convenience pipeline: analyze, instrument, trace — memoized.

:func:`tune_program` is the library's front door for single programs:
it types the blocks, computes transitions for a strategy, builds the
phase marks, and generates both the tuned and the baseline trace for a
machine — ready to hand to :class:`~repro.sim.executor.Simulation`.

Every product of the static pipeline is memoized in a
:class:`PipelineCache` under a *content key*: a structural fingerprint
of the program combined with fingerprints of the strategy, machine,
behaviour spec and (optional) typing.  Sweeps that vary only runtime
parameters — the IPC threshold δ, injected error, the scheduler — hit
the cache and reuse the instrumented program and traces instead of
re-running typing, transition analysis and trace generation per sweep
point.  All pipeline stages are deterministic pure functions of the key,
so cached and fresh results are interchangeable bit for bit.

Cache levels (each usable on its own):

====================  =========================================================
``typing``            :class:`BlockTyping` per (program, typer)
``transitions``       transition-point sets per (program, typing, strategy)
``instrumented``      :class:`InstrumentedProgram` per (program, typing,
                      strategy)
``baseline-trace``    mark-free trace + isolated seconds per (program,
                      machine, spec)
``tuned``             the full :class:`TunedBinary` per (program, strategy,
                      machine, spec, typing)
====================  =========================================================
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Optional

from repro.errors import CacheCorruptionError, StoreCorruptionError
from repro.store import LocalStore, remote_tiers
from repro.program.module import Program
from repro.analysis.annotate import annotate_program
from repro.analysis.block_typing import BlockTyping, StaticBlockTyper
from repro.instrument.marker import LoopStrategy, MarkingStrategy
from repro.instrument.rewriter import InstrumentedProgram, build_marks
from repro.sim.machine import MachineConfig, core2quad_amp
from repro.sim.process import Trace
from repro.sim.tracegen import BehaviorSpec, TraceGenerator
from repro.telemetry.context import current_recorder


def _telemetry_incr(name: str) -> None:
    """Bump a flat cache metric on the process recorder.  A no-op (one
    attribute check) with the null recorder or the ``cache`` category
    deselected; cache operations are far off any hot path."""
    rec = current_recorder()
    if rec.enabled and rec.wants("cache"):
        rec.incr(name)

# -- content fingerprints -------------------------------------------------------


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


@lru_cache(maxsize=1024)
def program_fingerprint(program: Program) -> str:
    """Structural hash of a program: procedures, labels, regions, entry.

    Keyed on object identity via ``lru_cache`` (programs are treated as
    immutable once built, and the benchmark factory interns them), with
    the digest itself computed from content so distinct objects with
    identical structure share cache entries.
    """
    h = hashlib.sha256()
    h.update(program.name.encode("utf-8"))
    h.update(program.entry.encode("utf-8"))
    for name in sorted(program.procedures):
        proc = program.procedures[name]
        h.update(name.encode("utf-8"))
        for instr in proc.code:
            h.update(repr(instr).encode("utf-8"))
        h.update(repr(sorted(proc.labels.items())).encode("utf-8"))
    for region_name in sorted(program.regions):
        region = program.regions[region_name]
        h.update(
            f"{region.name}:{region.size}:{region.hot_fraction}".encode("utf-8")
        )
    return h.hexdigest()


def strategy_fingerprint(strategy: MarkingStrategy) -> str:
    """Identity of a marking strategy, including non-name parameters."""
    return _digest(strategy.name, repr(strategy))


def machine_fingerprint(machine: MachineConfig) -> str:
    cores = ";".join(
        f"{c.cid}:{c.ctype.name}:{c.ctype.freq_ghz}:{c.ctype.l1_kb}:"
        f"{c.ctype.l2_kb}:{c.l2_group}"
        for c in machine.cores
    )
    return _digest(machine.name, cores)


def spec_fingerprint(spec: Optional[BehaviorSpec]) -> str:
    if spec is None:
        return "default-spec"
    trips = sorted((str(k), float(v)) for k, v in spec.trip_counts.items())
    return _digest(
        repr(trips),
        f"{spec.default_trip}:{spec.recursion_depth}:"
        f"{spec.max_inline_depth}:{spec.segment_budget}",
    )


def typing_fingerprint(typing: Optional[BlockTyping]) -> str:
    if typing is None:
        return "default-typing"
    return _digest(str(typing.num_types), repr(sorted(typing.types.items())))


# -- the cache ------------------------------------------------------------------


def _key_digest(key: tuple) -> str:
    """Integrity digest of a cache key's full byte representation."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


#: Environment variable naming a disk directory for the default cache.
#: Set (e.g. by ``python -m repro.experiments --cache-dir``) before
#: worker processes start so spawned workers inherit the disk tier.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class PipelineCache:
    """Content-keyed memo for static-pipeline products.

    Everything stored here is a deterministic pure function of its key,
    so sharing entries across runs cannot change results — only skip
    recomputation.  Tracks hit/miss counts per level for the benchmark
    harness.

    Every entry stores a sha256 digest of its key alongside the value;
    each hit re-hashes the lookup key and compares (detecting a cache
    whose entries were tampered with or damaged in transit — e.g. a
    pickled copy shipped to a worker).  A corrupt entry is evicted and
    rebuilt, or raised as :class:`~repro.errors.CacheCorruptionError`
    under ``strict=True``.

    With ``disk_dir`` set the cache gains a persistent tier: a
    content-addressed store (:class:`repro.store.LocalStore`) in that
    directory.  Each build is published as an object (the pickled
    ``(key, value, key-digest)`` triple) behind a
    ``pipeline/{level}-{digest}`` ref — object first, then the ref,
    both atomically — and a memory miss falls back to the store copy
    before rebuilding.  Loads re-hash the object bytes *and* compare
    the full stored key against the lookup key, so a damaged or
    foreign entry is quarantined/evicted (or raised under ``strict``)
    exactly like a corrupt in-memory entry.  A pre-store directory of
    flat ``{level}-{digest}.pkl`` files is migrated into the CAS
    layout on attach.

    When ``REPRO_STORE_URL`` names remote tiers, a local miss reads
    through them: the entry is digest-verified, promoted into the
    local store and memory, and counted in ``store_hits``.  Remote
    tiers are read-only from here (publish with ``python -m
    repro.store push``) and degrade to misses when unreachable, so a
    dead store never fails a build.

    The persistent tier is bounded by ``max_disk_entries`` files *and*
    ``max_disk_bytes`` object bytes; eviction drops oldest-ref-mtime
    first (name tie-break) until both budgets hold, and the evicted
    totals are reported in :meth:`stats`.

    Args:
        strict: raise on a detected corruption instead of silently
            rebuilding the entry.
        disk_dir: directory for the persistent tier (created if
            missing); ``None`` keeps the cache memory-only.
        max_disk_entries: cap on persisted entries (``None`` = no cap).
        max_disk_bytes: cap on summed object bytes (``None`` = no cap).
    """

    def __init__(
        self,
        strict: bool = False,
        disk_dir=None,
        max_disk_entries: int = 512,
        max_disk_bytes: Optional[int] = None,
    ) -> None:
        self._entries: dict = {}
        self.strict = strict
        self.max_disk_entries = max_disk_entries
        self.max_disk_bytes = max_disk_bytes
        self._disk_dir: Optional[Path] = None
        self._store: Optional[LocalStore] = None
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.store_hits = 0
        self.corruptions = 0
        self.evicted_entries = 0
        self.evicted_bytes = 0
        if disk_dir is not None:
            self.set_disk_dir(disk_dir)

    # -- disk tier ----------------------------------------------------------

    @property
    def disk_dir(self) -> Optional[Path]:
        return self._disk_dir

    @property
    def store(self) -> Optional[LocalStore]:
        """The persistent tier's CAS view (``None`` when memory-only)."""
        return self._store

    def set_disk_dir(self, disk_dir) -> None:
        """Enable (or move) the persistent tier; creates the directory
        and migrates any pre-store flat ``*.pkl`` layout into the CAS."""
        path = Path(disk_dir)
        path.mkdir(parents=True, exist_ok=True)
        self._disk_dir = path
        self._store = LocalStore(path)
        self._migrate_legacy_layout()

    def _migrate_legacy_layout(self) -> None:
        """Republish flat ``{level}-{digest}.pkl`` files (the disk-tier
        layout before the shared store) as CAS objects + refs.

        Each file is verified before migration; entries that fail
        (damaged, foreign) are left in place and simply never served.
        """
        for stale in sorted(self._disk_dir.glob("*.pkl")):
            try:
                blob = stale.read_bytes()
                stored_key, value, digest = pickle.loads(blob)
                if digest != _key_digest(stored_key):
                    continue
                obj = self._store.put(blob)
                self._store.set_ref(self._ref_name(stored_key), obj)
                stale.unlink()
            except Exception:
                continue

    def _ref_name(self, key: tuple) -> str:
        return f"pipeline/{key[0]}-{_key_digest(key)}"

    def _decode_entry(self, blob: bytes, key: tuple):
        """``(value,)`` if *blob* is a valid entry for *key*, else None."""
        try:
            stored_key, value, digest = pickle.loads(blob)
            if digest == _key_digest(key) and stored_key == key:
                return (value,)
        except Exception:
            pass
        return None

    def _disk_load(self, key: tuple):
        """The local-store entry for *key*, or None.  Corrupt entries
        are quarantined/evicted (and raised under ``strict``)."""
        name = self._ref_name(key)
        digest = self._store.get_ref(name)
        if digest is None:
            return None
        corrupt = False
        try:
            blob = self._store.get(digest)
        except StoreCorruptionError:
            # The store already quarantined the damaged object.
            blob = None
            corrupt = True
        if blob is not None:
            entry = self._decode_entry(blob, key)
            if entry is not None:
                return entry
            # The object verified (its bytes match its digest) but is
            # not a valid entry for this key — a forged or foreign ref.
            self._store.delete(digest)
            corrupt = True
        self._store.delete_ref(name)
        if not corrupt:
            # Ref without its object (interrupted publish, external
            # gc): a plain miss, not a corruption.
            return None
        self.corruptions += 1
        if self.strict:
            raise CacheCorruptionError(
                f"disk cache entry {name} failed its integrity check"
            )
        return None

    def _remote_load(self, key: tuple):
        """Read-through to the ``REPRO_STORE_URL`` tiers, promoting a
        verified hit into the local store.  Transport failures and
        corrupt remote objects degrade to a miss (the entry is then
        recomputed locally), never an error."""
        name = self._ref_name(key)
        for tier in remote_tiers():
            digest = tier.get_ref(name)
            if digest is None:
                continue
            try:
                blob = tier.get(digest)
            except StoreCorruptionError:
                self.corruptions += 1
                continue
            if blob is None:
                continue
            entry = self._decode_entry(blob, key)
            if entry is None:
                self.corruptions += 1
                continue
            self._promote(name, digest, blob)
            return entry
        return None

    def _promote(self, name: str, digest: str, blob: bytes) -> None:
        """Install a verified remote entry into the local store
        (object before ref); best-effort."""
        if self._store is None:
            return
        try:
            self._store.put(blob, digest)
            self._store.set_ref(name, digest)
        except OSError:
            pass

    def _disk_store(self, key: tuple, value) -> None:
        """Publish one entry into the local store, then enforce the
        entry/byte budgets.

        Write failures (read-only directory, unpicklable value, disk
        full) leave the disk tier stale but never fail the build.
        """
        try:
            blob = pickle.dumps(
                (key, value, _key_digest(key)), protocol=pickle.HIGHEST_PROTOCOL
            )
            digest = self._store.put(blob)
            self._store.set_ref(self._ref_name(key), digest)
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            return
        self._evict_disk_overflow()

    def _evict_disk_overflow(self) -> None:
        if self.max_disk_entries is None and self.max_disk_bytes is None:
            return
        try:
            entries = self._store.ref_mtimes("pipeline")
        except OSError:
            return
        count = len(entries)
        total = (
            sum(self._store.object_size(digest) for _, _, digest in entries)
            if self.max_disk_bytes is not None
            else 0
        )
        # Tie-break equal mtimes by ref name: coarse filesystem
        # timestamps make same-mtime batches common, and directory
        # order is filesystem-dependent — sorting on mtime alone would
        # evict a nondeterministic subset.
        entries.sort(key=lambda item: (item[0], item[1]))
        for _, name, digest in entries:
            over_count = (
                self.max_disk_entries is not None
                and count > self.max_disk_entries
            )
            over_bytes = (
                self.max_disk_bytes is not None and total > self.max_disk_bytes
            )
            if not (over_count or over_bytes):
                break
            self._store.delete_ref(name)
            freed = self._store.delete(digest)
            self.evicted_entries += 1
            self.evicted_bytes += freed
            count -= 1
            total -= freed

    # -- lookup -------------------------------------------------------------

    def get_or_build(self, key: tuple, build: Callable):
        entry = self._entries.get(key)
        if entry is not None:
            value, digest = entry
            if digest == _key_digest(key):
                self.hits += 1
                _telemetry_incr("cache.hit")
                return value
            # The stored digest disagrees with the key that found the
            # entry: the entry (or its key) was corrupted after insert.
            self.corruptions += 1
            del self._entries[key]
            if self.strict:
                raise CacheCorruptionError(
                    f"pipeline cache entry for key {key[0]!r} failed its "
                    f"integrity check"
                )
        if self._disk_dir is not None:
            loaded = self._disk_load(key)
            if loaded is not None:
                value = loaded[0]
                self.hits += 1
                self.disk_hits += 1
                _telemetry_incr("cache.disk_hit")
                self._entries[key] = (value, _key_digest(key))
                return value
        loaded = self._remote_load(key) if remote_tiers() else None
        if loaded is not None:
            value = loaded[0]
            self.hits += 1
            self.store_hits += 1
            _telemetry_incr("cache.store_hit")
            self._entries[key] = (value, _key_digest(key))
            return value
        self.misses += 1
        _telemetry_incr("cache.miss")
        value = build()
        self._entries[key] = (value, _key_digest(key))
        if self._disk_dir is not None:
            self._disk_store(key, value)
        return value

    def warm_from_store(self) -> int:
        """Prefetch every remotely-published pipeline entry not held
        locally; returns how many were installed.

        Broker workers call this once before executing claims so a
        sweep point reuses the fleet's static-pipeline products instead
        of recomputing them.  Invalid or corrupt remote entries are
        skipped (counted in ``corruptions``); a dead tier contributes
        nothing.  Prefetched entries are not counted as hits — they
        only spare the misses that would have followed.
        """
        fetched = 0
        for tier in remote_tiers():
            for name, digest in sorted(tier.refs("pipeline").items()):
                if self._store is not None and (
                    self._store.get_ref(name) == digest
                ):
                    continue
                try:
                    blob = tier.get(digest)
                except StoreCorruptionError:
                    self.corruptions += 1
                    continue
                if blob is None:
                    continue
                try:
                    stored_key, value, key_digest = pickle.loads(blob)
                    ok = key_digest == _key_digest(stored_key)
                except Exception:
                    ok = False
                if not ok:
                    self.corruptions += 1
                    continue
                self._entries[stored_key] = (value, key_digest)
                self._promote(name, digest, blob)
                fetched += 1
                _telemetry_incr("cache.prefetch")
        return fetched

    # -- shipping (spawn-started workers) -----------------------------------

    def export_entries(self) -> bytes:
        """All entries as one pickled blob for :meth:`install_entries`.

        Lets a harness ship a warm cache to workers whose start method
        does not inherit parent memory (spawn/forkserver).
        """
        return pickle.dumps(
            list(self._entries.items()), protocol=pickle.HIGHEST_PROTOCOL
        )

    def install_entries(self, blob: bytes) -> int:
        """Install entries exported elsewhere; returns how many were
        accepted.  Each entry's digest is re-verified against its key,
        so damage in transit is dropped (or raised under ``strict``)."""
        count = 0
        for key, (value, digest) in pickle.loads(blob):
            if digest != _key_digest(key):
                self.corruptions += 1
                if self.strict:
                    raise CacheCorruptionError(
                        f"shipped cache entry for key {key[0]!r} failed "
                        f"its integrity check"
                    )
                continue
            self._entries[key] = (value, digest)
            count += 1
        return count

    def check_integrity(self) -> int:
        """Re-hash every entry's key; evict and count the corrupt ones.

        Returns the number of entries evicted.  Under ``strict=True``
        raises on the first corruption instead.
        """
        corrupt = [
            key
            for key, (value, digest) in self._entries.items()
            if digest != _key_digest(key)
        ]
        for key in corrupt:
            self.corruptions += 1
            del self._entries[key]
            if self.strict:
                raise CacheCorruptionError(
                    f"pipeline cache entry for key {key[0]!r} failed its "
                    f"integrity check"
                )
        return len(corrupt)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.reset_stats()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.store_hits = 0
        self.corruptions = 0
        self.evicted_entries = 0
        self.evicted_bytes = 0

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "disk_hits": self.disk_hits,
            "store_hits": self.store_hits,
            "corruptions": self.corruptions,
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
        }


#: Process-wide cache shared by default.  Worker processes of the
#: experiment harness each grow their own copy (or inherit the parent's
#: populated cache through fork).  A ``REPRO_CACHE_DIR`` environment
#: variable — inherited by spawned workers too — attaches the disk tier
#: from the start.
_DEFAULT_CACHE = PipelineCache(disk_dir=os.environ.get(CACHE_DIR_ENV) or None)


def default_cache() -> PipelineCache:
    """The process-wide pipeline cache."""
    return _DEFAULT_CACHE


def clear_default_cache() -> None:
    _DEFAULT_CACHE.clear()


# -- cached pipeline stages -----------------------------------------------------


def typed_blocks(
    program: Program,
    typer=None,
    cache: Optional[PipelineCache] = None,
) -> BlockTyping:
    """The (cached) block typing of *program* under *typer*."""
    if cache is None:
        cache = _DEFAULT_CACHE
    typer = typer or StaticBlockTyper()
    key = ("typing", program_fingerprint(program), repr(typer))
    return cache.get_or_build(key, lambda: typer.type_blocks(program))


def transition_points(
    aprog,
    strategy: MarkingStrategy,
    cache: Optional[PipelineCache] = None,
) -> list:
    """The (cached) transition-point set of one strategy on *aprog*.

    Transition points are pure data (procedure names, block indices,
    edges), so a set computed from one annotated instance is valid for
    any annotation of the same program + typing.
    """
    if cache is None:
        cache = _DEFAULT_CACHE
    key = (
        "transitions",
        program_fingerprint(aprog.program),
        typing_fingerprint(aprog.typing),
        strategy_fingerprint(strategy),
    )
    return cache.get_or_build(key, lambda: strategy.compute_points(aprog))


def instrument_cached(
    program: Program,
    strategy: MarkingStrategy,
    typing: Optional[BlockTyping] = None,
    cache: Optional[PipelineCache] = None,
) -> InstrumentedProgram:
    """Cached analogue of :func:`repro.instrument.rewriter.instrument`."""
    if cache is None:
        cache = _DEFAULT_CACHE
    key = (
        "instrumented",
        program_fingerprint(program),
        typing_fingerprint(typing),
        strategy_fingerprint(strategy),
    )

    def build() -> InstrumentedProgram:
        block_typing = (
            typing if typing is not None else typed_blocks(program, cache=cache)
        )
        aprog = annotate_program(program, block_typing)
        points = transition_points(aprog, strategy, cache=cache)
        marks = build_marks(aprog, points)
        return InstrumentedProgram(program, aprog, strategy.name, marks)

    return cache.get_or_build(key, build)


def baseline_binary(
    program: Program,
    machine: Optional[MachineConfig] = None,
    spec: Optional[BehaviorSpec] = None,
    cache: Optional[PipelineCache] = None,
) -> tuple:
    """Cached ``(trace, isolated_seconds)`` of the uninstrumented program."""
    if cache is None:
        cache = _DEFAULT_CACHE
    machine = machine or core2quad_amp()
    key = (
        "baseline-trace",
        program_fingerprint(program),
        machine_fingerprint(machine),
        spec_fingerprint(spec),
    )

    def build() -> tuple:
        generator = TraceGenerator(machine)
        trace = generator.generate(program, spec)
        return trace, generator.isolated_seconds(trace)

    return cache.get_or_build(key, build)


@dataclass
class TunedBinary:
    """Everything the pipeline produced for one program.

    Attributes:
        instrumented: the marked binary with overhead accounting.
        tuned_trace: trace with phase marks (run with a tuning runtime).
        baseline_trace: identical dynamics without marks (stock run).
        isolated_seconds: wall time of the baseline trace alone on the
            fastest core — the ``t_i`` used by the stretch metric.
    """

    instrumented: InstrumentedProgram
    tuned_trace: Trace
    baseline_trace: Trace
    isolated_seconds: float

    @property
    def space_overhead(self) -> float:
        return self.instrumented.space_overhead

    @property
    def mark_count(self) -> int:
        return len(self.instrumented.marks)


def tune_program(
    program: Program,
    strategy: Optional[MarkingStrategy] = None,
    machine: Optional[MachineConfig] = None,
    spec: Optional[BehaviorSpec] = None,
    typing: Optional[BlockTyping] = None,
    cache: Optional[PipelineCache] = None,
) -> TunedBinary:
    """Run the full static pipeline on *program* for *machine*.

    Args:
        strategy: defaults to the paper's best, ``Loop[45]``.
        machine: defaults to the paper's 4-core AMP.
        spec: behaviour parameters for trace generation.
        typing: pre-computed block typing (e.g. with injected error).
        cache: pipeline cache; the process-wide default when omitted.
            Pass a fresh :class:`PipelineCache` to isolate a run.
    """
    if cache is None:
        cache = _DEFAULT_CACHE
    strategy = strategy or LoopStrategy(45)
    machine = machine or core2quad_amp()
    key = (
        "tuned",
        program_fingerprint(program),
        strategy_fingerprint(strategy),
        machine_fingerprint(machine),
        spec_fingerprint(spec),
        typing_fingerprint(typing),
    )

    def build() -> TunedBinary:
        instrumented = instrument_cached(program, strategy, typing, cache=cache)
        generator = TraceGenerator(machine)
        tuned_trace = generator.generate(instrumented, spec)
        baseline_trace, isolated = baseline_binary(
            program, machine, spec, cache=cache
        )
        return TunedBinary(instrumented, tuned_trace, baseline_trace, isolated)

    return cache.get_or_build(key, build)
