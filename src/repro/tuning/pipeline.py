"""One-call convenience pipeline: analyze, instrument, trace.

:func:`tune_program` is the library's front door for single programs:
it types the blocks, computes transitions for a strategy, builds the
phase marks, and generates both the tuned and the baseline trace for a
machine — ready to hand to :class:`~repro.sim.executor.Simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.program.module import Program
from repro.analysis.block_typing import BlockTyping
from repro.instrument.marker import LoopStrategy, MarkingStrategy
from repro.instrument.rewriter import InstrumentedProgram, instrument
from repro.sim.machine import MachineConfig, core2quad_amp
from repro.sim.process import Trace
from repro.sim.tracegen import BehaviorSpec, TraceGenerator


@dataclass
class TunedBinary:
    """Everything the pipeline produced for one program.

    Attributes:
        instrumented: the marked binary with overhead accounting.
        tuned_trace: trace with phase marks (run with a tuning runtime).
        baseline_trace: identical dynamics without marks (stock run).
        isolated_seconds: wall time of the baseline trace alone on the
            fastest core — the ``t_i`` used by the stretch metric.
    """

    instrumented: InstrumentedProgram
    tuned_trace: Trace
    baseline_trace: Trace
    isolated_seconds: float

    @property
    def space_overhead(self) -> float:
        return self.instrumented.space_overhead

    @property
    def mark_count(self) -> int:
        return len(self.instrumented.marks)


def tune_program(
    program: Program,
    strategy: Optional[MarkingStrategy] = None,
    machine: Optional[MachineConfig] = None,
    spec: Optional[BehaviorSpec] = None,
    typing: Optional[BlockTyping] = None,
) -> TunedBinary:
    """Run the full static pipeline on *program* for *machine*.

    Args:
        strategy: defaults to the paper's best, ``Loop[45]``.
        machine: defaults to the paper's 4-core AMP.
        spec: behaviour parameters for trace generation.
        typing: pre-computed block typing (e.g. with injected error).
    """
    strategy = strategy or LoopStrategy(45)
    machine = machine or core2quad_amp()
    instrumented = instrument(program, strategy, typing=typing)
    generator = TraceGenerator(machine)
    tuned_trace = generator.generate(instrumented, spec)
    baseline_trace = generator.generate(program, spec)
    isolated = generator.isolated_seconds(baseline_trace)
    return TunedBinary(instrumented, tuned_trace, baseline_trace, isolated)
