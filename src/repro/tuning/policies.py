"""Named runtime configurations.

Small factories so experiments and examples read declaratively:
:func:`standard_runtime` is the paper's evaluated configuration;
:func:`feedback_runtime` enables the Section VI-B feedback adaptation
("simple feedback mechanisms can be added").
"""

from __future__ import annotations

from typing import Optional

from repro.sim.counters import CounterBank
from repro.sim.machine import MachineConfig
from repro.tuning.runtime import PhaseTuningRuntime


def standard_runtime(
    machine: MachineConfig,
    ipc_threshold: float = 0.15,
    counters: Optional[CounterBank] = None,
) -> PhaseTuningRuntime:
    """The paper's runtime: monitor once per (phase type, core type),
    decide with Algorithm 2, then switch-only forever."""
    return PhaseTuningRuntime(machine, ipc_threshold, counters)


def feedback_runtime(
    machine: MachineConfig,
    ipc_threshold: float = 0.15,
    resample_after: int = 200,
    counters: Optional[CounterBank] = None,
) -> PhaseTuningRuntime:
    """Feedback-adaptive runtime: re-explore a decided phase type every
    *resample_after* firings so assignments track workload changes."""
    return PhaseTuningRuntime(
        machine, ipc_threshold, counters, resample_after=resample_after
    )
