"""Representative-section IPC monitoring.

"The decision about the optimal core for that phase type is made by
monitoring representative sections from the cluster of sections that
have the same phase type ... monitoring all sections will not be
necessary."

A :class:`SectionMonitor` opens at most one measurement per process: at
a phase mark for an unsampled (phase type, core type) pair it acquires a
PAPI-style counter slot and snapshots the process's retired-instruction
and cycle counters for the current core type; the measurement closes at
the process's next phase mark, yielding IPC = Δinstructions / Δcycles —
exactly the paper's formula.  If no counter slot is free the measurement
is simply retried at a later mark ("programs wait for access to the
counters"; our deferred retry is the zero-cost realisation, and the
bank's rejection statistics quantify how rarely it happens).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.core import CoreType
from repro.sim.counters import CounterBank, CounterSession
from repro.sim.process import SimProcess


@dataclass
class PhaseState:
    """Per-process tuning state of one phase type.

    Attributes:
        samples: accepted IPC per core-type name (the value Algorithm 2
            sees; under median-of-k sampling this is the median of
            ``raw_samples``).
        raw_samples: individual IPC observations per core-type name,
            kept while collecting towards the runtime's
            ``samples_per_type`` quota (outlier rejection).
        decided: the chosen core type once Algorithm 2 has run.
        firings: marks of this type fired so far (drives the optional
            feedback policy's re-sampling).
        open_failures: consecutive failed counter acquisitions while
            exploring; bounds the deferred retry (see the runtime's
            ``max_monitor_retries``).
        epoch: the runtime's machine epoch this state was built under;
            a hotplug/DVFS event bumps the runtime epoch and stale
            states re-explore at their next mark.
    """

    samples: dict = field(default_factory=dict)
    raw_samples: dict = field(default_factory=dict)
    decided: Optional[CoreType] = None
    firings: int = 0
    open_failures: int = 0
    epoch: int = 0

    def reset(self) -> None:
        """Forget everything (feedback adaptation / re-exploration)."""
        self.samples.clear()
        self.raw_samples.clear()
        self.decided = None
        self.firings = 0
        self.open_failures = 0


@dataclass
class _OpenMeasurement:
    session: CounterSession
    phase_type: int
    ctype_name: str


class SectionMonitor:
    """Opens and closes per-process section measurements.

    Args:
        counters: the machine's counter bank.
        min_sample_cycles: measurements shorter than this are discarded
            (not enough signal to trust the IPC).
        noise: relative measurement noise (uniform, +/-).  Hardware
            counters over short sections are never exact; the noise also
            breaks the exact IPC ties core-insensitive code produces, so
            its core choice is unbiased — as it is on real hardware.
        seed: noise generator seed (determinism).
    """

    def __init__(
        self,
        counters: CounterBank,
        min_sample_cycles: float = 10_000.0,
        noise: float = 0.02,
        seed: int = 0,
    ):
        self.counters = counters
        self.min_sample_cycles = min_sample_cycles
        self.noise = noise
        self._rng = random.Random(seed)
        self.completed_samples = 0
        self.discarded_samples = 0
        #: Optional fault injector perturbing counter reads
        #: (:mod:`repro.sim.faults`); ``None`` leaves reads untouched.
        self.injector = None

    def try_open(
        self, proc: SimProcess, phase_type: int, core, now: float = 0.0
    ) -> bool:
        """Start measuring *proc*'s upcoming section on *core*.

        Returns False (and measures nothing) if the process already has
        an open measurement or no counter slot is free.
        """
        if proc.monitor_session is not None:
            return False
        ctype: CoreType = core.ctype
        session = self.counters.try_acquire(
            core.cid,
            proc.pid,
            proc.stats.instrs_by_type.get(ctype.name, 0.0),
            proc.stats.cycles_by_type.get(ctype.name, 0.0),
            now=now,
        )
        if session is None:
            return False
        proc.monitor_session = _OpenMeasurement(session, phase_type, ctype.name)
        return True

    def close(self, proc: SimProcess) -> Optional[tuple]:
        """Close *proc*'s open measurement, if any.

        Returns ``(phase_type, ctype_name, ipc)`` when the measurement
        yielded a usable sample, else ``None``.
        """
        open_measurement: Optional[_OpenMeasurement] = proc.monitor_session
        if open_measurement is None:
            return None
        proc.monitor_session = None
        self.counters.release(open_measurement.session)

        name = open_measurement.ctype_name
        d_instrs = (
            proc.stats.instrs_by_type.get(name, 0.0)
            - open_measurement.session.start_instrs
        )
        d_cycles = (
            proc.stats.cycles_by_type.get(name, 0.0)
            - open_measurement.session.start_cycles
        )
        if self.injector is not None:
            # Clock-drift fault: the cycle counter observed on this core
            # runs fast or slow by a static factor, so the measured
            # cycle delta (and hence the IPC) is consistently skewed.
            # No RNG is drawn, so zero-drift plans stay bit-identical.
            # getattr: stub injectors only implement the read hooks.
            read_skew = getattr(self.injector, "cycle_skew", None)
            if read_skew is not None:
                skew = read_skew(open_measurement.session.core_id)
                if skew != 1.0:
                    d_cycles *= skew
        if d_cycles < self.min_sample_cycles or d_instrs <= 0:
            self.discarded_samples += 1
            return None
        self.completed_samples += 1
        ipc = d_instrs / d_cycles
        if self.noise > 0:
            ipc *= 1.0 + self._rng.uniform(-self.noise, self.noise)
        if self.injector is not None:
            # Injected counter-read faults: extra noise and, rarely, a
            # wildly corrupt reading (the runtime's outlier rejection is
            # the defence, not this code path).
            ipc *= self.injector.sample_read_factor()
        return (open_measurement.phase_type, name, ipc)
