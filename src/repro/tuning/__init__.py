"""Dynamic analysis and tuning (Section II-B of the paper).

The code inside phase marks: on a transition between phase types it
switches cores to the assignment previously determined for the new type;
until an assignment exists it monitors representative sections' IPC on
each core type via the hardware counters, then decides with the paper's
Algorithm 2 (:func:`~repro.tuning.assignment.select_core`).  Everything
is per process and fully runtime — no knowledge of the program or the
machine's asymmetry is assumed.
"""

from repro.tuning.assignment import select_core
from repro.tuning.monitor import PhaseState, SectionMonitor
from repro.tuning.runtime import (
    AFFINITY_SYSCALL_CYCLES,
    PhaseTuningRuntime,
    SwitchToAllRuntime,
)
from repro.tuning.policies import feedback_runtime, standard_runtime
from repro.tuning.pipeline import TunedBinary, tune_program

__all__ = [
    "select_core",
    "PhaseState",
    "SectionMonitor",
    "AFFINITY_SYSCALL_CYCLES",
    "PhaseTuningRuntime",
    "SwitchToAllRuntime",
    "feedback_runtime",
    "standard_runtime",
    "TunedBinary",
    "tune_program",
]
