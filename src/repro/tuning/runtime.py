"""The phase-mark runtime: what executes when a mark fires.

"The code in the phase mark either makes use of previous analysis to
make its core choice or observes the behavior of the code section."

Per process and phase type the state machine is:

1. **explore** — no IPC sample for the current core type yet: open a
   counter measurement over the upcoming section and stay put; with a
   sample here but not on some other core type, switch affinity there so
   the next representative section is measured on it.
2. **decide** — samples exist for every core type: run Algorithm 2 and
   fix the assignment.
3. **steady** — "all future phase marks for that phase type reduce to
   simply making appropriate core switching decisions": request the
   decided core type's affinity mask (a no-op unless it differs).

The optional ``resample_after`` implements the Section VI-B feedback
adaptation: a decided phase type is re-explored after that many firings
so changed core behaviour (other processes coming and going) is tracked.
"""

from __future__ import annotations

from typing import Optional

from repro.instrument.phase_mark import MARK_MONITOR_CYCLES
from repro.sim.counters import CounterBank
from repro.sim.executor import MarkAction
from repro.sim.machine import MachineConfig
from repro.sim.process import SimProcess
from repro.tuning.assignment import select_core_checked
from repro.tuning.monitor import PhaseState, SectionMonitor

#: Cycles one sched_setaffinity-style call costs (kernel entry + mask
#: update), charged whenever a mark actually issues the call.
AFFINITY_SYSCALL_CYCLES = 150.0

#: Sentinel: Algorithm 2 found no significant gap, so the phase type is
#: deliberately left unconstrained (see ``pin_ties``).
FREE = "free"


class PhaseTuningRuntime:
    """The full phase-based tuning runtime.

    Args:
        machine: the AMP being run on (only used to enumerate core types
            and build affinity masks — the runtime itself assumes
            nothing about which type is "better").
        ipc_threshold: Algorithm 2's δ.
        counters: counter bank; a private one is created if omitted.
        resample_after: if set, re-explore a decided phase type after
            this many of its marks fire (feedback adaptation).
        tie_policy: what to do when no adjacent IPC gap exceeds δ and
            Algorithm 2's pick is therefore measurement noise:

            * ``"free"`` (default) — leave the affinity unrestricted
              and let the stock scheduler keep balancing this phase
              type; statistically equivalent to the paper's per-core
              pin landing wherever the process already was, and the
              stablest choice under a closed workload.
            * ``"current"`` — pin to the core type the process is
              measuring on (a literal sticky reading of the per-core
              pin).
            * ``"algorithm"`` — take Algorithm 2's ``c0`` literally
              (noise decides; reproduces the extreme-threshold
              migration collapse of Figure 6 most sharply).
        cycle_metric: what "cycles" means in IPC = instructions/cycles.
            ``"reference"`` (default) counts constant-rate reference
            cycles (TSC-style): a fast core then shows visibly higher
            IPC on compute-bound code (it retires more instructions per
            wall second), while memory-bound code shows near-equal IPC
            on both types — so Algorithm 2 sends exactly the code that
            "saves enough cycles to justify taking the space on the more
            efficient core" to the fast cores and leaves memory-bound
            phases for the slow ones.  ``"core"`` counts actual core
            clock cycles (frequency-scaled); under it compute-bound IPC
            is core-invariant and memory-bound code shows higher IPC on
            slow cores.  Both are measurable with PAPI-era counters; the
            reference metric reproduces the paper's reported behaviour.
    """

    def __init__(
        self,
        machine: MachineConfig,
        ipc_threshold: float = 0.15,
        counters: Optional[CounterBank] = None,
        resample_after: Optional[int] = None,
        min_sample_cycles: float = 10_000.0,
        tie_policy: str = "free",
        monitor_noise: float = 0.02,
        seed: int = 0,
        cycle_metric: str = "reference",
    ):
        self.machine = machine
        self.core_types = machine.core_types()
        self.ipc_threshold = ipc_threshold
        self.counters = counters or CounterBank(len(machine))
        self.monitor = SectionMonitor(
            self.counters, min_sample_cycles, noise=monitor_noise, seed=seed
        )
        self.resample_after = resample_after
        if tie_policy not in ("current", "free", "algorithm"):
            raise ValueError(f"unknown tie policy {tie_policy!r}")
        self.tie_policy = tie_policy
        if cycle_metric not in ("reference", "core"):
            raise ValueError(f"unknown cycle metric {cycle_metric!r}")
        self.cycle_metric = cycle_metric
        self._ref_freq = max(ct.freq_ghz for ct in self.core_types)
        self._freq_by_name = {ct.name: ct.freq_ghz for ct in self.core_types}
        self.decisions = 0
        self.resamples = 0

    # -- state access ------------------------------------------------------

    def _state(self, proc: SimProcess, phase_type: int) -> PhaseState:
        state = proc.tuner_state.get(phase_type)
        if state is None:
            state = PhaseState()
            proc.tuner_state[phase_type] = state
        return state

    def assignment_for(self, proc: SimProcess, phase_type: int):
        """The decided core type for (proc, phase_type), if any.

        Returns ``None`` while undecided and for unconstrained (tie)
        decisions.
        """
        state = proc.tuner_state.get(phase_type)
        if state is None or state.decided is FREE:
            return None
        return state.decided

    # -- the mark entry point -------------------------------------------------

    def on_mark(
        self,
        proc: SimProcess,
        mark_id: int,
        phase_type: Optional[int],
        core,
        now: float,
    ) -> MarkAction:
        """Handle one mark firing; return the requested action."""
        self._absorb_sample(proc)
        if phase_type is None:
            return MarkAction()

        state = self._state(proc, phase_type)
        state.firings += 1

        if (
            state.decided is not None
            and self.resample_after is not None
            and state.firings % self.resample_after == 0
        ):
            state.reset()
            state.firings = 1
            self.resamples += 1

        if state.decided is not None:
            if state.decided is FREE:
                mask = self.machine.all_cores_mask
            else:
                mask = self.machine.affinity_of_type(state.decided)
            if mask != proc.affinity:
                return MarkAction(
                    affinity=mask, extra_cycles=AFFINITY_SYSCALL_CYCLES
                )
            return MarkAction()

        # Exploring.
        current = core.ctype
        if current.name not in state.samples:
            opened = self.monitor.try_open(proc, phase_type, core)
            return MarkAction(
                extra_cycles=MARK_MONITOR_CYCLES if opened else 0.0
            )

        missing = [ct for ct in self.core_types if ct.name not in state.samples]
        if missing:
            mask = self.machine.affinity_of_type(missing[0])
            return MarkAction(affinity=mask, extra_cycles=AFFINITY_SYSCALL_CYCLES)

        decision = select_core_checked(
            self.core_types, state.samples, self.ipc_threshold
        )
        if decision.significant or self.tie_policy == "algorithm":
            state.decided = decision.core_type
            mask = self.machine.affinity_of_type(decision.core_type)
        elif self.tie_policy == "current":
            state.decided = core.ctype
            mask = self.machine.affinity_of_type(core.ctype)
        else:
            state.decided = FREE
            mask = self.machine.all_cores_mask
        self.decisions += 1
        if mask != proc.affinity:
            return MarkAction(affinity=mask, extra_cycles=AFFINITY_SYSCALL_CYCLES)
        return MarkAction()

    def on_process_end(self, proc: SimProcess, now: float) -> None:
        """Release any open measurement when a process exits."""
        self._absorb_sample(proc)

    # -- internals ----------------------------------------------------------

    def _absorb_sample(self, proc: SimProcess) -> None:
        sample = self.monitor.close(proc)
        if sample is None:
            return
        phase_type, ctype_name, ipc = sample
        if self.cycle_metric == "reference":
            # Convert instructions-per-core-cycle into instructions per
            # constant-rate reference cycle: wall-clock normalisation.
            ipc *= self._freq_by_name[ctype_name] / self._ref_freq
        state = self._state(proc, phase_type)
        if state.decided is None and ctype_name not in state.samples:
            state.samples[ctype_name] = ipc


class SwitchToAllRuntime:
    """The Figure 4 overhead-measurement runtime.

    "Instead of switching to a specific core, we switch to 'all cores'
    ... the same API calls are made that optimized programs make,
    however ... we give all cores in the system.  Thus, the difference
    in runtime between the unmodified binary and this instrumented
    binary shows the cost of running our phase marks."
    """

    def __init__(self, machine: MachineConfig):
        self.machine = machine
        self._all = machine.all_cores_mask

    def on_mark(self, proc, mark_id, phase_type, core, now) -> MarkAction:
        return MarkAction(
            affinity=self._all, extra_cycles=AFFINITY_SYSCALL_CYCLES
        )

    def on_process_end(self, proc, now) -> None:  # noqa: D401 - trivial
        """Nothing to clean up."""

    def assignment_for(self, proc, phase_type):
        return None
