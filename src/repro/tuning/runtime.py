"""The phase-mark runtime: what executes when a mark fires.

"The code in the phase mark either makes use of previous analysis to
make its core choice or observes the behavior of the code section."

Per process and phase type the state machine is:

1. **explore** — no IPC sample for the current core type yet: open a
   counter measurement over the upcoming section and stay put; with a
   sample here but not on some other core type, switch affinity there so
   the next representative section is measured on it.
2. **decide** — samples exist for every core type: run Algorithm 2 and
   fix the assignment.
3. **steady** — "all future phase marks for that phase type reduce to
   simply making appropriate core switching decisions": request the
   decided core type's affinity mask (a no-op unless it differs).

The optional ``resample_after`` implements the Section VI-B feedback
adaptation: a decided phase type is re-explored after that many firings
so changed core behaviour (other processes coming and going) is tracked.

Hardening (the degradation ladder)
==================================

Against an adversarial environment (:mod:`repro.sim.faults`) the runtime
degrades instead of crashing, in order of escalation:

1. *deferred retry* — a failed counter acquisition is retried at later
   marks, exactly as before, but ``max_monitor_retries`` bounds the
   episode: a counter-starved phase type falls back to ``FREE`` (stock
   scheduling) rather than exploring forever;
2. *outlier rejection* — with ``samples_per_type`` = k > 1, each
   (phase type, core type) pair is measured k times and Algorithm 2
   sees the median, so a corrupt counter read cannot flip a decision;
3. *re-exploration* — hotplug/DVFS events bump the machine epoch; any
   assignment decided under an older epoch is discarded at its next
   mark and explored afresh;
4. *stock fallback* — after ``max_affinity_failures`` consecutive
   failed ``sched_setaffinity`` calls a process stops steering entirely
   and runs under the stock scheduler.

Every degradation is recorded in :attr:`PhaseTuningRuntime
.degradation_log` (per-process, queryable via :meth:`degradations_for`).
All hardening is opt-in or fault-triggered: with the default parameters
and no injector attached, behaviour is bit-identical to the unhardened
runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import median
from typing import Optional

from repro.instrument.phase_mark import MARK_MONITOR_CYCLES
from repro.sim.counters import CounterBank
from repro.sim.executor import MarkAction
from repro.sim.faults import DvfsEvent, FaultInjector, MemoryPressureEvent
from repro.sim.machine import MachineConfig
from repro.sim.process import SimProcess
from repro.telemetry.events import PROC_TID_BASE
from repro.tuning.assignment import select_core_checked
from repro.tuning.monitor import PhaseState, SectionMonitor

#: Cycles one sched_setaffinity-style call costs (kernel entry + mask
#: update), charged whenever a mark actually issues the call.
AFFINITY_SYSCALL_CYCLES = 150.0

#: Sentinel: Algorithm 2 found no significant gap, so the phase type is
#: deliberately left unconstrained (see ``pin_ties``).
FREE = "free"


@dataclass(frozen=True)
class DegradationEvent:
    """One rung taken down the degradation ladder.

    Attributes:
        time: simulation time of the degradation.
        pid: affected process, or ``None`` for machine-wide events.
        phase_type: affected phase type, if the degradation is per-type.
        kind: ``"counter-starved"``, ``"affinity-fallback"``,
            ``"re-explore"``, ``"corrupt-sample"``, ``"hotplug"``,
            ``"dvfs"`` or ``"mem-pressure"``.
        detail: human-readable specifics.
    """

    time: float
    pid: Optional[int]
    phase_type: Optional[int]
    kind: str
    detail: str = ""


class PhaseTuningRuntime:
    """The full phase-based tuning runtime.

    Args:
        machine: the AMP being run on (only used to enumerate core types
            and build affinity masks — the runtime itself assumes
            nothing about which type is "better").
        ipc_threshold: Algorithm 2's δ.
        counters: counter bank; a private one is created if omitted.
        resample_after: if set, re-explore a decided phase type after
            this many of its marks fire (feedback adaptation).
        tie_policy: what to do when no adjacent IPC gap exceeds δ and
            Algorithm 2's pick is therefore measurement noise:

            * ``"free"`` (default) — leave the affinity unrestricted
              and let the stock scheduler keep balancing this phase
              type; statistically equivalent to the paper's per-core
              pin landing wherever the process already was, and the
              stablest choice under a closed workload.
            * ``"current"`` — pin to the core type the process is
              measuring on (a literal sticky reading of the per-core
              pin).
            * ``"algorithm"`` — take Algorithm 2's ``c0`` literally
              (noise decides; reproduces the extreme-threshold
              migration collapse of Figure 6 most sharply).
        cycle_metric: what "cycles" means in IPC = instructions/cycles.
            ``"reference"`` (default) counts constant-rate reference
            cycles (TSC-style): a fast core then shows visibly higher
            IPC on compute-bound code (it retires more instructions per
            wall second), while memory-bound code shows near-equal IPC
            on both types — so Algorithm 2 sends exactly the code that
            "saves enough cycles to justify taking the space on the more
            efficient core" to the fast cores and leaves memory-bound
            phases for the slow ones.  ``"core"`` counts actual core
            clock cycles (frequency-scaled); under it compute-bound IPC
            is core-invariant and memory-bound code shows higher IPC on
            slow cores.  Both are measurable with PAPI-era counters; the
            reference metric reproduces the paper's reported behaviour.
        samples_per_type: IPC samples collected per (phase type, core
            type) pair before Algorithm 2 may decide; the *median* of
            the collected samples is used, so k >= 3 rejects a corrupt
            counter read as an outlier.  1 (default) reproduces the
            single-sample behaviour bit for bit.
        max_monitor_retries: bound on consecutive failed counter
            acquisitions while exploring one phase type; when exhausted
            the type degrades to ``FREE`` instead of exploring forever.
            ``None`` (default) retries indefinitely — the paper's
            "programs wait for access to the counters".
        max_affinity_failures: consecutive failed affinity syscalls
            after which a process abandons core steering and runs under
            the stock scheduler (reachable only under fault injection).
    """

    def __init__(
        self,
        machine: MachineConfig,
        ipc_threshold: float = 0.15,
        counters: Optional[CounterBank] = None,
        resample_after: Optional[int] = None,
        min_sample_cycles: float = 10_000.0,
        tie_policy: str = "free",
        monitor_noise: float = 0.02,
        seed: int = 0,
        cycle_metric: str = "reference",
        samples_per_type: int = 1,
        max_monitor_retries: Optional[int] = None,
        max_affinity_failures: int = 3,
    ):
        self.machine = machine
        self.core_types = machine.core_types()
        self.ipc_threshold = ipc_threshold
        self.counters = counters or CounterBank(len(machine))
        self.monitor = SectionMonitor(
            self.counters, min_sample_cycles, noise=monitor_noise, seed=seed
        )
        self.resample_after = resample_after
        if tie_policy not in ("current", "free", "algorithm"):
            raise ValueError(f"unknown tie policy {tie_policy!r}")
        self.tie_policy = tie_policy
        if cycle_metric not in ("reference", "core"):
            raise ValueError(f"unknown cycle metric {cycle_metric!r}")
        self.cycle_metric = cycle_metric
        if samples_per_type < 1:
            raise ValueError(
                f"samples_per_type must be >= 1, got {samples_per_type}"
            )
        self.samples_per_type = samples_per_type
        if max_monitor_retries is not None and max_monitor_retries < 1:
            raise ValueError(
                f"max_monitor_retries must be >= 1 or None, "
                f"got {max_monitor_retries}"
            )
        self.max_monitor_retries = max_monitor_retries
        if max_affinity_failures < 1:
            raise ValueError(
                f"max_affinity_failures must be >= 1, got {max_affinity_failures}"
            )
        self.max_affinity_failures = max_affinity_failures
        self._ref_freq = max(ct.freq_ghz for ct in self.core_types)
        self._freq_by_name = {ct.name: ct.freq_ghz for ct in self.core_types}
        self.decisions = 0
        self.resamples = 0
        # -- degradation-ladder state (inert without faults/bounds) --------
        self.faults: Optional[FaultInjector] = None
        self.machine_epoch = 0
        self.degraded_decisions = 0
        self.invalidations = 0
        self.affinity_errors = 0
        self.rejected_samples = 0
        self.degradation_log: list = []
        self._affinity_failures: dict = {}  # pid -> consecutive failures
        self._affinity_blocked: dict = {}  # pid -> restore attempted?
        # -- telemetry (installed by the executor when tracing) ------------
        self._tr = None
        self._tr_run = 0

    # -- fault wiring ------------------------------------------------------

    def attach_faults(self, injector: FaultInjector) -> None:
        """Wire a fault injector into the measurement path.

        Called by the simulation when it was built with a fault plan.
        Only fault *delivery* is wired here — counter-slot sabotage and
        corrupt reads; the hardening knobs (``samples_per_type`` etc.)
        stay whatever the constructor set, so attaching a null plan
        changes nothing.
        """
        self.faults = injector
        self.counters.injector = injector
        self.monitor.injector = injector

    def attach_telemetry(self, recorder, run: int) -> None:
        """Wire a trace recorder into the tuning path (IPC samples,
        Algorithm-2 decisions, degradation-ladder steps).

        Called by the simulation when tracing is enabled; the runtime
        emits nothing — and checks one attribute per site — otherwise.
        """
        self._tr = recorder if recorder.wants("tuning") else None
        self._tr_run = run

    def on_machine_event(self, event, now: float, freq_scales=None) -> None:
        """A hotplug or DVFS event changed the machine underneath us.

        Bumps the machine epoch (decided assignments re-explore at
        their next mark) and, when per-core frequency scales are given,
        refreshes the reference-cycle conversion so new IPC samples are
        normalised against the machine as it now runs.
        """
        self.machine_epoch += 1
        if freq_scales is not None:
            by_name = {}
            for ctype in self.core_types:
                cids = self.machine.cores_of_type(ctype)
                scaled = [ctype.freq_ghz * freq_scales[cid] for cid in cids]
                by_name[ctype.name] = sum(scaled) / len(scaled)
            self._freq_by_name = by_name
            self._ref_freq = max(by_name.values())
        if isinstance(event, DvfsEvent):
            kind = "dvfs"
        elif isinstance(event, MemoryPressureEvent):
            kind = "mem-pressure"
        else:
            kind = "hotplug"
        self._log_degradation(now, None, None, kind, repr(event))

    def on_affinity_result(
        self, proc: SimProcess, ok: bool, error, now: float
    ) -> None:
        """Outcome of one affinity syscall the executor issued for us.

        Consecutive failures per process are counted; at
        ``max_affinity_failures`` the process falls back to the stock
        scheduler (rung 4 of the ladder).  Any success resets the count.
        """
        pid = proc.pid
        if ok:
            self._affinity_failures.pop(pid, None)
            return
        self.affinity_errors += 1
        count = self._affinity_failures.get(pid, 0) + 1
        self._affinity_failures[pid] = count
        if count >= self.max_affinity_failures and pid not in self._affinity_blocked:
            self._affinity_blocked[pid] = False  # restore not yet attempted
            self._log_degradation(
                now,
                pid,
                None,
                "affinity-fallback",
                f"{count} consecutive affinity failures ({error}); "
                f"pid {pid} falls back to the stock scheduler",
            )

    def _log_degradation(
        self,
        now: float,
        pid: Optional[int],
        phase_type: Optional[int],
        kind: str,
        detail: str = "",
    ) -> None:
        self.degradation_log.append(
            DegradationEvent(now, pid, phase_type, kind, detail)
        )
        if self._tr is not None:
            self._tr.instant(
                "tuning",
                "degrade",
                now,
                tid=0 if pid is None else PROC_TID_BASE + pid,
                args={
                    "pid": pid,
                    "phase": phase_type,
                    "kind": kind,
                    "detail": detail,
                },
                run=self._tr_run,
            )
            self._tr.incr("tuning.degradations")

    def degradations_for(self, pid: int) -> list:
        """All logged degradation events affecting process *pid*."""
        return [ev for ev in self.degradation_log if ev.pid == pid]

    # -- checkpoint/resume -------------------------------------------------

    def __getstate__(self):
        """Pickle support: the trace recorder is a live object owned by
        the session; the executor re-attaches telemetry on restore."""
        state = self.__dict__.copy()
        state["_tr"] = None
        return state

    def snapshot_state(self) -> dict:
        """Mutable tuning state for checkpoint/resume.

        Captures live references (counter bank, monitor, logs) rather
        than copies; pickling the snapshot dict — which checkpointing
        always does — freezes them into a consistent deep image.
        Per-(process, phase-type) state lives on ``proc.tuner_state``
        and travels with the process graph, not here.
        """
        return {
            "counters": self.counters,
            "monitor": self.monitor,
            "machine_epoch": self.machine_epoch,
            "decisions": self.decisions,
            "resamples": self.resamples,
            "degraded_decisions": self.degraded_decisions,
            "invalidations": self.invalidations,
            "affinity_errors": self.affinity_errors,
            "rejected_samples": self.rejected_samples,
            "degradation_log": self.degradation_log,
            "affinity_failures": self._affinity_failures,
            "affinity_blocked": self._affinity_blocked,
            "freq_by_name": self._freq_by_name,
            "ref_freq": self._ref_freq,
        }

    def restore_state(self, state: dict) -> None:
        self.counters = state["counters"]
        self.monitor = state["monitor"]
        self.machine_epoch = state["machine_epoch"]
        self.decisions = state["decisions"]
        self.resamples = state["resamples"]
        self.degraded_decisions = state["degraded_decisions"]
        self.invalidations = state["invalidations"]
        self.affinity_errors = state["affinity_errors"]
        self.rejected_samples = state["rejected_samples"]
        self.degradation_log = list(state["degradation_log"])
        self._affinity_failures = dict(state["affinity_failures"])
        self._affinity_blocked = dict(state["affinity_blocked"])
        self._freq_by_name = dict(state["freq_by_name"])
        self._ref_freq = state["ref_freq"]
        if self.faults is not None:
            # Re-wire the injector into the restored measurement path.
            self.counters.injector = self.faults
            self.monitor.injector = self.faults

    # -- state access ------------------------------------------------------

    def _state(self, proc: SimProcess, phase_type: int) -> PhaseState:
        state = proc.tuner_state.get(phase_type)
        if state is None:
            state = PhaseState()
            proc.tuner_state[phase_type] = state
        return state

    def assignment_for(self, proc: SimProcess, phase_type: int):
        """The decided core type for (proc, phase_type), if any.

        Returns ``None`` while undecided and for unconstrained (tie)
        decisions.
        """
        state = proc.tuner_state.get(phase_type)
        # == not `is`: a checkpointed process's restored FREE marker is
        # an equal-but-distinct string object.
        if state is None or state.decided == FREE:
            return None
        return state.decided

    # -- the mark entry point -------------------------------------------------

    def on_mark(
        self,
        proc: SimProcess,
        mark_id: int,
        phase_type: Optional[int],
        core,
        now: float,
    ) -> MarkAction:
        """Handle one mark firing; return the requested action."""
        self._absorb_sample(proc, now)
        if phase_type is None:
            return MarkAction()

        state = self._state(proc, phase_type)
        state.firings += 1

        if state.epoch != self.machine_epoch:
            # The machine changed under us (hotplug/DVFS): anything
            # decided before the change may now be wrong — re-explore.
            had_decision = state.decided is not None
            state.reset()
            state.firings = 1
            state.epoch = self.machine_epoch
            if had_decision:
                self.invalidations += 1
                self._log_degradation(
                    now,
                    proc.pid,
                    phase_type,
                    "re-explore",
                    "machine epoch changed; decision discarded",
                )

        if proc.pid in self._affinity_blocked:
            # Rung 4: affinity syscalls keep failing for this process.
            # Try once to restore the full mask (best effort — the call
            # itself may fail too), then stop steering entirely.
            if not self._affinity_blocked[proc.pid]:
                self._affinity_blocked[proc.pid] = True
                if proc.affinity != self.machine.all_cores_mask:
                    return MarkAction(
                        affinity=self.machine.all_cores_mask,
                        extra_cycles=AFFINITY_SYSCALL_CYCLES,
                    )
            return MarkAction()

        if (
            state.decided is not None
            and self.resample_after is not None
            and state.firings % self.resample_after == 0
        ):
            state.reset()
            state.firings = 1
            self.resamples += 1

        if state.decided is not None:
            if state.decided == FREE:
                mask = self.machine.all_cores_mask
            else:
                mask = self.machine.affinity_of_type(state.decided)
            if mask != proc.affinity:
                return MarkAction(
                    affinity=mask, extra_cycles=AFFINITY_SYSCALL_CYCLES
                )
            return MarkAction()

        # Exploring.
        current = core.ctype
        if current.name not in state.samples:
            opened = self.monitor.try_open(proc, phase_type, core, now)
            if opened:
                state.open_failures = 0
                return MarkAction(extra_cycles=MARK_MONITOR_CYCLES)
            if proc.monitor_session is None:
                # A genuine acquisition failure (not merely a still-open
                # measurement): rung 1, the bounded deferred retry.
                state.open_failures += 1
                if (
                    self.max_monitor_retries is not None
                    and state.open_failures >= self.max_monitor_retries
                ):
                    state.decided = FREE
                    self.degraded_decisions += 1
                    self._log_degradation(
                        now,
                        proc.pid,
                        phase_type,
                        "counter-starved",
                        f"{state.open_failures} failed counter "
                        f"acquisitions; degrading to FREE",
                    )
                    if proc.affinity != self.machine.all_cores_mask:
                        return MarkAction(
                            affinity=self.machine.all_cores_mask,
                            extra_cycles=AFFINITY_SYSCALL_CYCLES,
                        )
            return MarkAction()

        missing = [ct for ct in self.core_types if ct.name not in state.samples]
        if missing:
            mask = self.machine.affinity_of_type(missing[0])
            return MarkAction(affinity=mask, extra_cycles=AFFINITY_SYSCALL_CYCLES)

        decision = select_core_checked(
            self.core_types, state.samples, self.ipc_threshold
        )
        if decision.significant or self.tie_policy == "algorithm":
            state.decided = decision.core_type
            mask = self.machine.affinity_of_type(decision.core_type)
        elif self.tie_policy == "current":
            state.decided = core.ctype
            mask = self.machine.affinity_of_type(core.ctype)
        else:
            state.decided = FREE
            mask = self.machine.all_cores_mask
        self.decisions += 1
        if self._tr is not None:
            self._tr.instant(
                "tuning",
                "decide",
                now,
                tid=PROC_TID_BASE + proc.pid,
                args={
                    "pid": proc.pid,
                    "phase": phase_type,
                    "target": getattr(state.decided, "name", state.decided),
                    "significant": decision.significant,
                },
                run=self._tr_run,
            )
            self._tr.incr("tuning.decisions")
        if mask != proc.affinity:
            return MarkAction(affinity=mask, extra_cycles=AFFINITY_SYSCALL_CYCLES)
        return MarkAction()

    def on_process_end(self, proc: SimProcess, now: float) -> None:
        """Release any open measurement when a process exits."""
        self._absorb_sample(proc, now)

    # -- internals ----------------------------------------------------------

    def _absorb_sample(self, proc: SimProcess, now: float = 0.0) -> None:
        sample = self.monitor.close(proc)
        if sample is None:
            return
        phase_type, ctype_name, ipc = sample
        if not math.isfinite(ipc) or ipc <= 0.0:
            # A corrupt read so broken it is not even a number worth
            # taking the median over; drop it on the floor.
            self.rejected_samples += 1
            self._log_degradation(
                now, proc.pid, phase_type, "corrupt-sample", f"ipc={ipc!r}"
            )
            return
        if self.cycle_metric == "reference":
            # Convert instructions-per-core-cycle into instructions per
            # constant-rate reference cycle: wall-clock normalisation.
            ipc *= self._freq_by_name[ctype_name] / self._ref_freq
        if self._tr is not None:
            self._tr.instant(
                "tuning",
                "ipc-sample",
                now,
                tid=PROC_TID_BASE + proc.pid,
                args={
                    "pid": proc.pid,
                    "phase": phase_type,
                    "ctype": ctype_name,
                    "ipc": ipc,
                },
                run=self._tr_run,
            )
            self._tr.incr("tuning.ipc_samples")
        state = self._state(proc, phase_type)
        if state.decided is not None or ctype_name in state.samples:
            return
        if self.samples_per_type <= 1:
            state.samples[ctype_name] = ipc
            return
        # Rung 2: collect k observations and let Algorithm 2 see the
        # median, so one corrupt counter read cannot flip the decision.
        raws = state.raw_samples.setdefault(ctype_name, [])
        raws.append(ipc)
        if len(raws) >= self.samples_per_type:
            state.samples[ctype_name] = median(raws)


class SwitchToAllRuntime:
    """The Figure 4 overhead-measurement runtime.

    "Instead of switching to a specific core, we switch to 'all cores'
    ... the same API calls are made that optimized programs make,
    however ... we give all cores in the system.  Thus, the difference
    in runtime between the unmodified binary and this instrumented
    binary shows the cost of running our phase marks."
    """

    def __init__(self, machine: MachineConfig):
        self.machine = machine
        self._all = machine.all_cores_mask

    def on_mark(self, proc, mark_id, phase_type, core, now) -> MarkAction:
        return MarkAction(
            affinity=self._all, extra_cycles=AFFINITY_SYSCALL_CYCLES
        )

    def on_process_end(self, proc, now) -> None:  # noqa: D401 - trivial
        """Nothing to clean up."""

    def assignment_for(self, proc, phase_type):
        return None
