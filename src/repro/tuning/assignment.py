"""Optimal core assignment — Algorithm 2 of the paper, verbatim.

    select(π, δ): best core for phase type π, with threshold δ
    Sort C s.t. i > j ⇒ f(ci, π) > f(cj, π)
    d ← c0
    for all ci ∈ C \\ {cn}:
        θ = f(ci+1, π) − f(ci, π)
        if θ > δ ∧ f(ci+1, π) > f(d, π): d ← ci+1
    return d

"The underlying intuition is that cores which execute code most
efficiently will waste fewer clock cycles resulting in higher observed
IPC.  Since such cores are more efficient, they will be in higher
contention.  Thus, the algorithm picks a core that improves efficiency
but does not overload the efficient cores."

The sort is ascending by observed IPC.  The paper leaves IPC ties
unspecified; we break them toward the *faster* core so that code whose
IPC is core-insensitive (compute-bound code on a frequency-asymmetric
machine) defaults to the fast cores — the behaviour the evaluation's
threshold sweep (Figure 6) exhibits at its high-δ extreme, where "the
entire workload eventually migrates away from one core type".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError
from repro.sim.core import CoreType


def select_core(
    core_types: Sequence[CoreType],
    observed_ipc: dict,
    delta: float,
) -> CoreType:
    """Pick the core type for a phase type from its observed IPCs.

    Args:
        core_types: the candidate core types (the paper runs the
            algorithm over cores; grouping cores into types is its own
            Section VI-C scalability answer, which we adopt).
        observed_ipc: measured IPC per core-type name.
        delta: the IPC threshold δ.

    Raises:
        AnalysisError: if a core type has no observation.
    """
    if not core_types:
        raise AnalysisError("select_core: no core types")
    missing = [ct.name for ct in core_types if ct.name not in observed_ipc]
    if missing:
        raise AnalysisError(f"select_core: no IPC observed on {missing}")

    order = sorted(
        core_types,
        key=lambda ct: (observed_ipc[ct.name], -ct.freq_ghz, ct.name),
    )
    best = order[0]
    for i in range(len(order) - 1):
        theta = observed_ipc[order[i + 1].name] - observed_ipc[order[i].name]
        if theta > delta and observed_ipc[order[i + 1].name] > observed_ipc[best.name]:
            best = order[i + 1]
    return best


@dataclass(frozen=True)
class AssignmentDecision:
    """Algorithm 2's pick plus whether any gap was significant.

    When no adjacent IPC gap exceeds δ, the algorithm returns ``c0`` —
    whichever core type measurement noise happened to rank lowest.  On
    real hardware that pins the process roughly where the OS scheduler
    already placed it; our affinity abstraction models that noise-pin as
    *no constraint* (``significant == False``), leaving the stock
    scheduler in charge of such phases.  Phases with a real gap
    (``significant == True``) are pinned to ``core_type``.
    """

    core_type: CoreType
    significant: bool


def select_core_checked(
    core_types: Sequence[CoreType],
    observed_ipc: dict,
    delta: float,
) -> AssignmentDecision:
    """Run Algorithm 2 and report whether the pick was signal or noise."""
    if not core_types:
        raise AnalysisError("select_core: no core types")
    missing = [ct.name for ct in core_types if ct.name not in observed_ipc]
    if missing:
        raise AnalysisError(f"select_core: no IPC observed on {missing}")

    order = sorted(
        core_types,
        key=lambda ct: (observed_ipc[ct.name], -ct.freq_ghz, ct.name),
    )
    best = order[0]
    significant = False
    for i in range(len(order) - 1):
        theta = observed_ipc[order[i + 1].name] - observed_ipc[order[i].name]
        if theta > delta and observed_ipc[order[i + 1].name] > observed_ipc[best.name]:
            best = order[i + 1]
            significant = True
    return AssignmentDecision(best, significant)
