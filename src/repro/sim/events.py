"""A tiny deterministic discrete-event queue.

Events at equal times are delivered in insertion order (a monotonically
increasing sequence number breaks ties), which keeps whole simulations
bit-for-bit reproducible.

The executor's run loop reads ``_heap``/``_seq`` directly (one heap
operation per scheduling quantum); the ``push``/``pop`` wrappers are the
public API for everything that runs off the hot path.  Both views see
the same ``(time, seq, payload)`` tuples, so their ordering is
identical by construction — a regression test pins this.
"""

from __future__ import annotations

import heapq
from typing import Any


class EventQueue:
    """Priority queue of (time, payload) events."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0

    def push(self, time: float, payload: Any) -> None:
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple:
        """Pop the earliest event as (time, payload)."""
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def __len__(self) -> int:
        return len(self._heap)
