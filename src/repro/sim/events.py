"""A tiny deterministic discrete-event queue.

Events at equal times are delivered in insertion order (a monotonically
increasing sequence number breaks ties), which keeps whole simulations
bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional


class EventQueue:
    """Priority queue of (time, payload) events."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0

    def push(self, time: float, payload: Any) -> None:
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple:
        """Pop the earliest event as (time, payload)."""
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> Optional[float]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
