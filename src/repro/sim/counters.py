"""PAPI-like hardware performance counters.

Section III: "To deal with limitations that may be imposed by the number
of counters or APIs, we require programs to wait for access to the
counters.  Since our approach requires very little dynamic monitoring,
processes seldom have to wait."

Each core exposes a bounded number of counter slots.  A monitoring
session acquires one slot on its core; if none is free the acquisition
fails and the caller retries at its next phase mark (the deferred-retry
realisation of "waiting").  Contention statistics are kept so the
negligible-wait claim can be checked experimentally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CounterError


@dataclass
class CounterSession:
    """An open measurement of one code section on one core.

    Attributes:
        core_id: core the counters belong to.
        owner_pid: process that acquired the session.
        start_instrs / start_cycles: snapshot at acquisition.
    """

    core_id: int
    owner_pid: int
    start_instrs: float = 0.0
    start_cycles: float = 0.0
    closed: bool = False


@dataclass
class CounterBank:
    """All counter slots of one machine.

    Attributes:
        n_cores: number of cores.
        slots_per_core: concurrent sessions a core supports.
    """

    n_cores: int
    slots_per_core: int = 2
    acquisitions: int = 0
    rejections: int = 0
    _open: dict = field(default_factory=dict)  # core_id -> count

    def try_acquire(
        self, core_id: int, pid: int, instrs: float, cycles: float
    ) -> Optional[CounterSession]:
        """Acquire a slot on *core_id*; ``None`` when all are busy."""
        if not 0 <= core_id < self.n_cores:
            raise CounterError(f"core id {core_id} out of range")
        in_use = self._open.get(core_id, 0)
        if in_use >= self.slots_per_core:
            self.rejections += 1
            return None
        self._open[core_id] = in_use + 1
        self.acquisitions += 1
        return CounterSession(core_id, pid, instrs, cycles)

    def release(self, session: CounterSession) -> None:
        """Release *session*'s slot.

        Raises:
            CounterError: on double release.
        """
        if session.closed:
            raise CounterError("counter session already released")
        session.closed = True
        self._open[session.core_id] -= 1

    @property
    def rejection_rate(self) -> float:
        total = self.acquisitions + self.rejections
        if total == 0:
            return 0.0
        return self.rejections / total
