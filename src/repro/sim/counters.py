"""PAPI-like hardware performance counters.

Section III: "To deal with limitations that may be imposed by the number
of counters or APIs, we require programs to wait for access to the
counters.  Since our approach requires very little dynamic monitoring,
processes seldom have to wait."

Each core exposes a bounded number of counter slots.  A monitoring
session acquires one slot on its core; if none is free the acquisition
fails and the caller retries at its next phase mark (the deferred-retry
realisation of "waiting").  Contention statistics are kept so the
negligible-wait claim can be checked experimentally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CounterError


@dataclass
class CounterSession:
    """An open measurement of one code section on one core.

    Attributes:
        core_id: core the counters belong to.
        owner_pid: process that acquired the session.
        start_instrs / start_cycles: snapshot at acquisition.
    """

    core_id: int
    owner_pid: int
    start_instrs: float = 0.0
    start_cycles: float = 0.0
    closed: bool = False


@dataclass
class CounterBank:
    """All counter slots of one machine.

    Attributes:
        n_cores: number of cores.
        slots_per_core: concurrent sessions a core supports.
        acquisitions: granted sessions.
        rejections: raw failed acquisition attempts (every retry counts).
        wait_episodes: distinct wait periods — a process that is refused,
            refused again, and finally granted contributes *one* episode,
            however many retries the deferral took.  This is the paper's
            "programs seldom have to wait" statistic; ``rejections``
            would overstate it by the retry count.
        waited_grants: grants that ended a wait episode.
        injector: optional fault injector adding spurious failures and
            slot outages (:mod:`repro.sim.faults`).
    """

    n_cores: int
    slots_per_core: int = 2
    acquisitions: int = 0
    rejections: int = 0
    wait_episodes: int = 0
    waited_grants: int = 0
    _open: dict = field(default_factory=dict)  # core_id -> count
    _waiting: set = field(default_factory=set)  # pids mid-episode
    injector: Optional[object] = field(default=None, repr=False, compare=False)

    def try_acquire(
        self,
        core_id: int,
        pid: int,
        instrs: float,
        cycles: float,
        now: float = 0.0,
    ) -> Optional[CounterSession]:
        """Acquire a slot on *core_id*; ``None`` when all are busy."""
        if not 0 <= core_id < self.n_cores:
            raise CounterError(f"core id {core_id} out of range")
        slots = self.slots_per_core
        injector = self.injector
        if injector is not None:
            slots -= injector.slots_unavailable(core_id, now)
            if injector.counter_acquire_fails(core_id, now):
                self._note_rejection(pid)
                return None
        in_use = self._open.get(core_id, 0)
        if in_use >= slots:
            self._note_rejection(pid)
            return None
        self._open[core_id] = in_use + 1
        self.acquisitions += 1
        if pid in self._waiting:
            self._waiting.discard(pid)
            self.waited_grants += 1
        return CounterSession(core_id, pid, instrs, cycles)

    def _note_rejection(self, pid: int) -> None:
        self.rejections += 1
        if pid not in self._waiting:
            self._waiting.add(pid)
            self.wait_episodes += 1

    def release(self, session: CounterSession) -> None:
        """Release *session*'s slot.

        Raises:
            CounterError: on double release.
        """
        if session.closed:
            raise CounterError("counter session already released")
        session.closed = True
        self._open[session.core_id] -= 1

    @property
    def rejection_rate(self) -> float:
        total = self.acquisitions + self.rejections
        if total == 0:
            return 0.0
        return self.rejections / total

    @property
    def wait_rate(self) -> float:
        """Fraction of logical counter requests that had to wait.

        A logical request is either granted directly or opens one wait
        episode (that may or may not be granted later); deferred retries
        within an episode do not inflate the statistic.
        """
        direct_grants = self.acquisitions - self.waited_grants
        requests = direct_grants + self.wait_episodes
        if requests == 0:
            return 0.0
        return self.wait_episodes / requests
