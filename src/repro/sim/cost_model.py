"""Per-block cycle costs and IPC per core type.

The executor runs at block/segment granularity, so every block's cost on
every core type is a pure function computed once: base issue cycles from
the instruction mix plus expected memory stall cycles from the analytic
miss model.  Costs are split into a compute part and a stall part so the
executor can apply L2-sharing contention to the stall part only.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.isa.instructions import InstrClass
from repro.program.basic_block import BasicBlock
from repro.program.module import Program
from repro.sim.core import CoreType
from repro.sim.memory import MemoryModel

#: Base issue cycles per instruction class (frequency-invariant).
#: These are steady-state *throughput* costs on a superscalar pipeline
#: (not latencies): simple integer operations dual-issue, so pure ALU
#: code reaches IPC ~2, floating-point code ~1, in line with what SPEC
#: codes show on the Core 2 generation the paper measured.
BASE_CYCLES: dict[InstrClass, float] = {
    InstrClass.IALU: 0.5,
    InstrClass.IMUL: 1.5,
    InstrClass.IDIV: 8.0,
    InstrClass.FALU: 1.0,
    InstrClass.FMUL: 1.5,
    InstrClass.FDIV: 12.0,
    InstrClass.LOAD: 0.5,   # plus stalls from the memory model
    InstrClass.STORE: 0.5,
    InstrClass.STACK: 0.5,
    InstrClass.BRANCH: 0.75,  # includes average misprediction cost
    InstrClass.JUMP: 0.5,
    InstrClass.IJUMP: 1.0,
    InstrClass.CALL: 1.0,
    InstrClass.ICALL: 1.5,
    InstrClass.RET: 1.0,
    InstrClass.SYSCALL: 150.0,
    InstrClass.NOP: 0.25,
}


@dataclass(frozen=True)
class BlockCost:
    """Cost of one execution of a block on one core type.

    Attributes:
        instrs: instructions retired.
        compute_cycles: issue cycles (frequency-invariant).
        stall_cycles: expected memory stall cycles on this core type.
        l2_hits: expected L2-serviced accesses per execution — the
            working set that lives in the shared L2 and is exposed to
            pollution by a streaming co-runner.
    """

    instrs: int
    compute_cycles: float
    stall_cycles: float
    l2_hits: float = 0.0

    @property
    def cycles(self) -> float:
        return self.compute_cycles + self.stall_cycles

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instrs / self.cycles


@dataclass
class CostVector:
    """Aggregated cost over all core types of a machine.

    Attributes:
        instrs: instructions retired (core-type-invariant).
        compute: compute cycles (core-type-invariant in this model, but
            kept per type for generality).
        stall: stall cycles per core type name.
    """

    instrs: float
    compute: dict
    stall: dict
    l2hits: dict = None

    def __post_init__(self) -> None:
        if self.l2hits is None:
            self.l2hits = {name: 0.0 for name in self.compute}

    @classmethod
    def zero(cls, core_types) -> "CostVector":
        return cls(
            0.0,
            {ct.name: 0.0 for ct in core_types},
            {ct.name: 0.0 for ct in core_types},
            {ct.name: 0.0 for ct in core_types},
        )

    def add(self, other: "CostVector", scale: float = 1.0) -> None:
        """In-place ``self += scale * other``."""
        self.instrs += scale * other.instrs
        for name in self.compute:
            self.compute[name] += scale * other.compute[name]
            self.stall[name] += scale * other.stall[name]
            self.l2hits[name] += scale * other.l2hits[name]

    def add_block(self, cost: BlockCost, ctype_name: str, scale: float = 1.0) -> None:
        self.compute[ctype_name] += scale * cost.compute_cycles
        self.stall[ctype_name] += scale * cost.stall_cycles
        self.l2hits[ctype_name] += scale * cost.l2_hits

    def cycles(self, ctype_name: str) -> float:
        return self.compute[ctype_name] + self.stall[ctype_name]

    def scaled(self, factor: float) -> "CostVector":
        return CostVector(
            self.instrs * factor,
            {k: v * factor for k, v in self.compute.items()},
            {k: v * factor for k, v in self.stall.items()},
            {k: v * factor for k, v in self.l2hits.items()},
        )

    def stall_fraction(self, ctype_name: str) -> float:
        total = self.cycles(ctype_name)
        if total <= 0:
            return 0.0
        return self.stall[ctype_name] / total


class _ProcCostTable:
    """Vectorized per-instruction cost arrays for one procedure.

    Built once per (cost model, program, procedure); per-core-type stall
    and L2-hit columns are derived with one numpy pipeline over the
    procedure's strided memory accesses.  Block costs then reduce to
    slice sums over these columns.  Every element is computed with the
    same floating-point expression (and per-block accumulation order) as
    the scalar per-instruction loop, so the results are bit-identical.
    """

    __slots__ = ("code", "base", "mem_idx", "stride", "ws", "_per_ctype")

    def __init__(self, proc, program: Program):
        code = proc.code
        self.code = code
        self.base = [BASE_CYCLES[instr.iclass] for instr in code]
        idx: list = []
        stride: list = []
        ws: list = []
        for i, instr in enumerate(code):
            mem = instr.mem
            # stride-0 accesses contribute exactly 0.0 stall/L2 on every
            # core type (scalar stays resident), so only strided streams
            # enter the vector pipeline.
            if mem is not None and mem.stride != 0:
                idx.append(i)
                stride.append(mem.stride)
                ws.append(program.region(mem.region).working_set)
        self.mem_idx = idx
        self.stride = np.asarray(stride, dtype=np.float64)
        self.ws = np.asarray(ws, dtype=np.int64)
        self._per_ctype: dict = {}

    def columns(self, ctype: CoreType, memory: MemoryModel):
        """(stall, l2_hits) per-instruction columns for *ctype*."""
        got = self._per_ctype.get(ctype.name)
        if got is not None:
            return got
        n = len(self.base)
        stall = [0.0] * n
        l2h = [0.0] * n
        if self.mem_idx:
            # Same expressions as MemoryModel.miss_profile/stall_cycles,
            # applied elementwise (identical IEEE-754 rounding per lane).
            lines_per_exec = np.minimum(1.0, self.stride / ctype.line_size)
            l1 = np.where(self.ws > ctype.l1_bytes, lines_per_exec, 0.0)
            l2_misses = np.where(self.ws > ctype.l2_bytes, lines_per_exec, 0.0)
            l2_hits = l1 - l2_misses
            dram_cycles = memory.dram_latency_ns * ctype.freq_ghz
            stalls = l2_hits * memory.l2_hit_cycles + l2_misses * dram_cycles
            stall_list = stalls.tolist()
            l2_list = l2_hits.tolist()
            for k, i in enumerate(self.mem_idx):
                stall[i] = stall_list[k]
                l2h[i] = l2_list[k]
        pair = (stall, l2h)
        self._per_ctype[ctype.name] = pair
        return pair


class CostModel:
    """Computes block costs for the core types of one machine."""

    def __init__(self, machine, memory: MemoryModel = None):
        self.machine = machine
        self.memory = memory or MemoryModel()
        self._block_cache: dict = {}
        self._proc_tables: dict = {}

    def _table_for(self, block: BasicBlock, program: Program):
        """The procedure cost table covering *block*, or ``None``.

        Falls back to ``None`` (scalar path) when the block's instruction
        objects are not a slice of the program's procedure code — e.g.
        synthetic blocks built directly in tests — or when a custom
        memory model subclass overrides the analytic formulas.
        """
        if type(self.memory) is not MemoryModel:
            return None
        entry = self._proc_tables.get(id(program))
        if entry is None or entry[0] is not program:
            entry = (program, {})
            self._proc_tables[id(program)] = entry
        tables = entry[1]
        table = tables.get(block.proc, False)
        if table is False:
            proc = program.procedures.get(block.proc)
            table = _ProcCostTable(proc, program) if proc is not None else None
            tables[block.proc] = table
        if table is None:
            return None
        code = table.code
        start, end = block.start, block.end
        instrs = block.instrs
        if not instrs or end > len(code):
            return None
        # O(1) identity check that the block really is code[start:end].
        if instrs[0] is not code[start] or instrs[-1] is not code[end - 1]:
            return None
        return table

    def block_cost(
        self, block: BasicBlock, ctype: CoreType, program: Program
    ) -> BlockCost:
        """Cost of one execution of *block* on a *ctype* core."""
        key = (id(program), block.uid, ctype.name)
        cached = self._block_cache.get(key)
        if cached is not None:
            return cached

        table = self._table_for(block, program)
        if table is not None:
            stall_col, l2_col = table.columns(ctype, self.memory)
            start, end = block.start, block.end
            # Built-in sum() accumulates left to right — the same order
            # (and therefore the same rounding) as the scalar loop.
            cost = BlockCost(
                len(block.instrs),
                sum(table.base[start:end]),
                sum(stall_col[start:end]),
                sum(l2_col[start:end]),
            )
        else:
            compute = 0.0
            stall = 0.0
            l2_hits = 0.0
            for instr in block.instrs:
                compute += BASE_CYCLES[instr.iclass]
                if instr.mem is not None:
                    stall += self.memory.stall_cycles(instr.mem, program, ctype)
                    profile = self.memory.miss_profile(instr.mem, program, ctype)
                    l2_hits += profile.l2_hits
            cost = BlockCost(len(block.instrs), compute, stall, l2_hits)
        self._block_cache[key] = cost
        return cost

    def block_ipc(
        self, block: BasicBlock, ctype: CoreType, program: Program
    ) -> float:
        """Steady-state IPC of *block* on a *ctype* core, uncontended."""
        return self.block_cost(block, ctype, program).ipc

    def block_vector(self, block: BasicBlock, program: Program) -> CostVector:
        """The block's cost on every core type of the machine."""
        core_types = self.machine.core_types()
        vector = CostVector.zero(core_types)
        vector.instrs = float(len(block.instrs))
        for ctype in core_types:
            cost = self.block_cost(block, ctype, program)
            vector.compute[ctype.name] = cost.compute_cycles
            vector.stall[ctype.name] = cost.stall_cycles
            vector.l2hits[ctype.name] = cost.l2_hits
        return vector
