"""Crash-safe checkpointing of live simulations.

A checkpoint is a single file holding one pickled
:meth:`Simulation.snapshot_state` payload behind a small integrity
envelope::

    REPROCKPT1\\n          magic (format identifier)
    <4-byte big-endian>   header length
    <JSON header>         {"length", "sha256", "sim_time", "version"}
    <pickle payload>      the snapshot dict

Files are written to a temporary name in the target directory and
published with :func:`os.replace` after an ``fsync``, so a reader never
observes a half-written checkpoint under the final name.  On load the
magic, payload length, and SHA-256 digest are all verified; any
mismatch (truncation, bit flip, torn write) raises
:class:`~repro.errors.CheckpointError` rather than silently restoring
wrong state.

:class:`CheckpointManager` layers policy on top: it owns a directory of
``ckpt-NNNNNNNN.ckpt`` files, decides *when* a snapshot is due on an
absolute ``k * interval`` sim-time grid (so a resumed run checkpoints
at the same sim times as an uninterrupted one), retains the newest
``keep`` files, and on restore walks newest-to-oldest past corrupt
files to the most recent valid snapshot.  The executor's macro-quantum
coalescing respects the grid: a window never opens across the next due
grid point (``_coalesce_horizon`` caps windows at ``ckpt_due``), so
snapshots always land between events exactly where the per-quantum
loop would have taken them, and a resumed coalesced run stays
bit-identical to an uninterrupted one.

The module is deliberately ignorant of :class:`Simulation` internals —
it duck-types ``sim.snapshot_state()`` — so it can be imported from the
harness and the CLI without touching the executor.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import math
import os
import pickle
import re
from pathlib import Path
from typing import Optional

from repro.errors import CheckpointError, StoreError

__all__ = [
    "CHECKPOINT_INTERVAL_ENV",
    "CHECKPOINT_VERSION",
    "CheckpointManager",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "TASK_CHECKPOINT_DIR_ENV",
    "TASK_CHECKPOINT_REF_ENV",
    "build_checkpoint_bytes",
    "load_checkpoint",
    "parse_checkpoint",
    "save_checkpoint",
    "task_checkpoint_dir",
    "task_checkpoint_manager",
]

MAGIC = b"REPROCKPT1\n"
CHECKPOINT_VERSION = 1
DEFAULT_CHECKPOINT_INTERVAL = 10.0

#: Environment variables through which the harness hands each task its
#: checkpoint directory and cadence (see ``run_tasks`` and
#: ``runner.run_technique_point``).
TASK_CHECKPOINT_DIR_ENV = "REPRO_TASK_CHECKPOINT_DIR"
CHECKPOINT_INTERVAL_ENV = "REPRO_CHECKPOINT_INTERVAL"

#: Stable content name for the running task's snapshots in the shared
#: artifact store (the broker exports its task content key here).  When
#: set, :func:`task_checkpoint_manager` also publishes snapshots under
#: ``ckpt/<name>`` refs and can resume from a snapshot another host
#: published — a reclaimed task continues mid-simulation even on a
#: machine whose local checkpoint directory is empty.
TASK_CHECKPOINT_REF_ENV = "REPRO_TASK_CHECKPOINT_REF"

_FILE_RE = re.compile(r"^ckpt-(\d{8})\.ckpt$")


def build_checkpoint_bytes(state: dict) -> bytes:
    """The full checkpoint envelope (magic + header + payload) for
    *state* — what :func:`save_checkpoint` writes and the shared store
    publishes."""
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps(
        {
            "length": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "sim_time": state.get("now"),
            "version": CHECKPOINT_VERSION,
        },
        sort_keys=True,
    ).encode("ascii")
    return MAGIC + len(header).to_bytes(4, "big") + header + payload


def _write_envelope(envelope: bytes, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(envelope)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def save_checkpoint(state: dict, path) -> Path:
    """Atomically write *state* (a snapshot dict) to *path*.

    The file appears under its final name only after the payload has
    been fully written and fsynced, so a crash mid-save leaves at worst
    a stale ``*.tmp`` file behind, never a truncated checkpoint.
    """
    return _write_envelope(build_checkpoint_bytes(state), path)


def parse_checkpoint(raw: bytes, label: str = "<bytes>") -> dict:
    """Verify a checkpoint envelope and return the snapshot dict.

    *label* names the source in error messages (a path for files, a
    ref for store fetches).

    Raises:
        CheckpointError: wrong magic or format version, truncation, a
            payload whose SHA-256 digest does not match the header, or
            a payload that does not unpickle to a snapshot dict.
    """
    if not raw.startswith(MAGIC):
        raise CheckpointError(f"{label}: not a repro checkpoint (bad magic)")
    body = raw[len(MAGIC):]
    if len(body) < 4:
        raise CheckpointError(f"{label}: truncated checkpoint (no header)")
    header_len = int.from_bytes(body[:4], "big")
    header_raw = body[4:4 + header_len]
    if len(header_raw) < header_len:
        raise CheckpointError(f"{label}: truncated checkpoint (short header)")
    try:
        header = json.loads(header_raw.decode("ascii"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CheckpointError(f"{label}: corrupt checkpoint header") from exc
    if not isinstance(header, dict) or header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{label}: unsupported checkpoint version "
            f"{header.get('version') if isinstance(header, dict) else header!r}"
        )
    payload = body[4 + header_len:]
    if len(payload) != header.get("length"):
        raise CheckpointError(
            f"{label}: truncated checkpoint "
            f"({len(payload)} of {header.get('length')} payload bytes)"
        )
    if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
        raise CheckpointError(
            f"{label}: checkpoint digest mismatch (corrupt payload)"
        )
    try:
        state = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"{label}: checkpoint payload does not unpickle: {exc}"
        ) from exc
    if not isinstance(state, dict):
        raise CheckpointError(
            f"{label}: checkpoint payload is not a snapshot dict"
        )
    return state


def load_checkpoint(path) -> dict:
    """Read and verify a checkpoint file, returning the snapshot dict.

    Raises:
        CheckpointError: if the file is unreadable, has the wrong
            magic or format version, is truncated, or the payload's
            SHA-256 digest does not match the header.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return parse_checkpoint(raw, label=str(path))


class CheckpointManager:
    """Owns one directory of numbered checkpoints for one simulation run.

    Args:
        directory: where ``ckpt-NNNNNNNN.ckpt`` files live (created on
            demand).
        interval: simulated seconds between snapshots.  Due times sit
            on the absolute ``k * interval`` grid, so a run resumed at
            ``t=12.3`` with ``interval=5`` checkpoints next at 15.0 —
            exactly where the uninterrupted run would have.
        keep: how many of the newest checkpoints to retain.  At least
            two, so a checkpoint corrupted on disk still leaves a valid
            predecessor to fall back to.
        store: optional shared artifact store
            (:class:`repro.store.TieredStore`).  With *ref* set, every
            snapshot is also published there (newest wins) and
            :meth:`latest_state` falls back to the store when no valid
            local file exists — so a task reclaimed onto another host
            resumes mid-simulation.  Always best-effort: a dead store
            never fails a save or a resume.
        ref: the store ref name snapshots publish under.
    """

    def __init__(self, directory, interval: float = DEFAULT_CHECKPOINT_INTERVAL,
                 keep: int = 2, store=None, ref: Optional[str] = None):
        if not (interval > 0 and math.isfinite(interval)):
            raise CheckpointError(
                f"checkpoint interval must be positive and finite, got {interval}"
            )
        if keep < 2:
            raise CheckpointError(f"keep must be at least 2, got {keep}")
        self.directory = Path(directory)
        self.interval = float(interval)
        self.keep = int(keep)
        self.store = store if ref else None
        self.ref = ref
        self.saves = 0
        #: Corrupt files skipped while looking for the latest valid
        #: snapshot (surfaced so callers can log the fallback).
        self.corrupt_skipped = 0
        #: Whether the last :meth:`latest_state` came from the shared
        #: store rather than a local file.
        self.resumed_from_store = False
        self.next_due = self.interval
        existing = self.checkpoint_files()
        self._seq = (
            int(_FILE_RE.match(existing[-1].name).group(1)) + 1 if existing else 0
        )

    def checkpoint_files(self) -> list:
        """All well-named checkpoint files, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(
            entry for entry in self.directory.iterdir()
            if _FILE_RE.match(entry.name)
        )

    def first_due(self, now: float) -> float:
        """The first grid point strictly after *now*."""
        return (math.floor(now / self.interval) + 1) * self.interval

    def save(self, sim, at: Optional[float] = None) -> Path:
        """Snapshot *sim* into the next numbered file and prune old ones.

        *at* is the sim time that triggered the save (the next event's
        timestamp); ``next_due`` advances to the first grid point after
        it so a burst of overdue events produces one snapshot, not one
        per event.
        """
        state = sim.snapshot_state()
        path = self.directory / f"ckpt-{self._seq:08d}.ckpt"
        envelope = build_checkpoint_bytes(state)
        _write_envelope(envelope, path)
        if self.store is not None:
            try:
                self.store.publish(self.ref, envelope)
            except (OSError, StoreError):
                pass
        self._seq += 1
        self.saves += 1
        base = state.get("now", 0.0) if at is None else at
        self.next_due = self.first_due(base)
        self._prune()
        return path

    def latest_state(self) -> Optional[dict]:
        """The newest snapshot that passes verification, or ``None``.

        Corrupt files are skipped (counted in ``corrupt_skipped``), so
        a damaged newest checkpoint falls back to its predecessor and a
        fully corrupt directory falls back to a clean start — never to
        silently wrong state.  With a store ref configured, an empty or
        fully corrupt directory additionally falls back to the snapshot
        the fleet last published (digest-verified by the store, then
        re-verified here), promoting it into the directory on success.
        """
        self.resumed_from_store = False
        for path in reversed(self.checkpoint_files()):
            try:
                return load_checkpoint(path)
            except CheckpointError:
                self.corrupt_skipped += 1
        if self.store is not None:
            try:
                envelope = self.store.fetch(self.ref)
            except StoreError:
                envelope = None
            if envelope is not None:
                try:
                    state = parse_checkpoint(envelope, label=f"ref {self.ref}")
                except CheckpointError:
                    self.corrupt_skipped += 1
                    return None
                try:
                    _write_envelope(
                        envelope,
                        self.directory / f"ckpt-{self._seq:08d}.ckpt",
                    )
                    self._seq += 1
                except OSError:
                    pass
                self.resumed_from_store = True
                return state
        return None

    def _prune(self) -> None:
        for stale in self.checkpoint_files()[:-self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass


@contextlib.contextmanager
def task_checkpoint_dir(directory, ref: Optional[str] = None):
    """Export *directory* as the running task's checkpoint directory.

    While the context is active :data:`TASK_CHECKPOINT_DIR_ENV` points
    at *directory*, so checkpoint-aware point functions (which call
    :func:`task_checkpoint_manager`) save there — and resume from there
    when it already holds a valid snapshot.  *ref* additionally exports
    :data:`TASK_CHECKPOINT_REF_ENV` — a stable content name (the
    broker's task key) under which snapshots are shared through the
    artifact store.  The previous values are restored on exit, so
    nested scopes (a broker worker running a journaled task) unwind
    cleanly.  Both the sweep harness and the broker worker loop wrap
    each task in this scope.
    """
    previous = os.environ.get(TASK_CHECKPOINT_DIR_ENV)
    previous_ref = os.environ.get(TASK_CHECKPOINT_REF_ENV)
    os.environ[TASK_CHECKPOINT_DIR_ENV] = str(directory)
    if ref is not None:
        os.environ[TASK_CHECKPOINT_REF_ENV] = str(ref)
    else:
        os.environ.pop(TASK_CHECKPOINT_REF_ENV, None)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(TASK_CHECKPOINT_DIR_ENV, None)
        else:
            os.environ[TASK_CHECKPOINT_DIR_ENV] = previous
        if previous_ref is None:
            os.environ.pop(TASK_CHECKPOINT_REF_ENV, None)
        else:
            os.environ[TASK_CHECKPOINT_REF_ENV] = previous_ref


def task_checkpoint_manager(
    subdir: Optional[str] = None,
) -> Optional[CheckpointManager]:
    """The manager a harness task should checkpoint through, if any.

    ``run_tasks`` points :data:`TASK_CHECKPOINT_DIR_ENV` at a per-task
    directory while a journaled task runs; checkpoint-aware point
    functions call this to pick the manager up.  Returns ``None`` when
    the task is not running under a journaled sweep.

    Args:
        subdir: optional subdirectory under the task's checkpoint
            directory.  A point function running *several* simulations
            must give each its own subdir — sharing one directory would
            make the second simulation "resume" from the first's
            snapshot.
    """
    directory = os.environ.get(TASK_CHECKPOINT_DIR_ENV)
    if not directory:
        return None
    if subdir:
        directory = os.path.join(directory, subdir)
    interval = DEFAULT_CHECKPOINT_INTERVAL
    raw = os.environ.get(CHECKPOINT_INTERVAL_ENV, "").strip()
    if raw:
        try:
            interval = float(raw)
        except ValueError as exc:
            raise CheckpointError(
                f"{CHECKPOINT_INTERVAL_ENV}={raw!r} is not a number"
            ) from exc
    store = None
    ref = None
    name = os.environ.get(TASK_CHECKPOINT_REF_ENV, "").strip()
    if name:
        from repro.store import default_store

        store = default_store()
        if store is not None:
            ref = f"ckpt/{name}" + (f"/{subdir}" if subdir else "")
    return CheckpointManager(directory, interval=interval, store=store,
                             ref=ref)
