"""Simulated processes and their execution traces.

A process's dynamic behaviour is a compact hierarchical *trace*:
a sequence of :class:`Segment` leaves (a code section — typically a
loop — executed for some number of iterations at a precomputed
per-iteration cost per core type) optionally nested under
:class:`Repeat` nodes (an outer loop alternating between phases).  The
executor walks traces with a :class:`TraceCursor`, so a benchmark that
runs for 10^11 cycles costs only as many Python steps as it has phase
changes — which is exactly the granularity phase-based tuning acts on.

Phase marks appear in traces in two forms, mirroring where the static
techniques place them:

* ``entry_marks`` fire once each time the segment is entered (loop and
  interval techniques put marks outside loops, so this is their shape);
* ``embedded`` marks fire *inside* the body, ``rate`` times per
  iteration (the naive basic-block technique's shape: marks within loop
  bodies that fire every iteration and can thrash between core types).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import SimulationError
from repro.sim.cost_model import CostVector


@dataclass(frozen=True, slots=True)
class MarkRef:
    """Reference to a phase mark attached to a trace segment.

    Attributes:
        mark_id: phase-mark id (unique within one program).
        phase_type: the type the mark announces.
    """

    mark_id: int
    phase_type: int


@dataclass(frozen=True, slots=True)
class EmbeddedMark(MarkRef):
    """A mark inside a segment body.

    Attributes:
        rate: expected firings per body iteration.
    """

    rate: float = 0.0


@dataclass(slots=True)
class Segment:
    """A leaf trace node: one section executed ``iterations`` times.

    Attributes:
        uid: section id (e.g. the loop uid) for reporting.
        phase_type: the section's static phase type, if any.
        iterations: body executions per entry.
        cost: per-iteration cost (instructions, compute and stall cycles
            per core type).
        entry_marks: mark ids fired on each entry to the segment.
        embedded: marks firing within the body, per iteration.
    """

    uid: str
    phase_type: Optional[int]
    iterations: float
    cost: CostVector
    entry_marks: tuple = ()
    embedded: tuple = ()
    #: Per-core-type flat cost tuples, built lazily (or eagerly at
    #: trace-build time) so the executor's inner loop avoids repeated
    #: dict lookups into :class:`CostVector`.  Excluded from equality:
    #: it is a pure cache over ``cost``.
    _cost_tuples: Optional[dict] = field(
        default=None, repr=False, compare=False
    )
    _embedded_rate: Optional[float] = field(
        default=None, repr=False, compare=False
    )

    @property
    def total_instrs(self) -> float:
        return self.cost.instrs * self.iterations

    def cycles_per_iter(self, ctype_name: str) -> float:
        return self.cost.cycles(ctype_name)

    @property
    def embedded_rate(self) -> float:
        """Total embedded-mark firings per body iteration (cached)."""
        rate = self._embedded_rate
        if rate is None:
            rate = self._embedded_rate = sum(e.rate for e in self.embedded)
        return rate

    def cost_tuple(self, ctype_name: str) -> tuple:
        """``(compute, stall, l2_hits, instrs, stall_fraction)`` per
        iteration on one core type — the executor's flat view of
        :attr:`cost`."""
        cache = self._cost_tuples
        if cache is None:
            cache = self._cost_tuples = {}
        entry = cache.get(ctype_name)
        if entry is None:
            cost = self.cost
            entry = (
                cost.compute[ctype_name],
                cost.stall[ctype_name],
                cost.l2hits[ctype_name],
                cost.instrs,
                cost.stall_fraction(ctype_name),
            )
            cache[ctype_name] = entry
        return entry


@dataclass(slots=True)
class Repeat:
    """An interior trace node: children executed in order, ``count`` times."""

    children: tuple
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise SimulationError(f"negative repeat count {self.count}")


TraceNode = Union[Segment, Repeat]


@dataclass(slots=True)
class Trace:
    """A process's whole dynamic behaviour."""

    nodes: tuple
    #: Cached flat (vectorized) form built by
    #: :func:`repro.sim.flattrace.flat_trace` — a pure cache, excluded
    #: from equality and from pickling (workers and the disk cache ship
    #: only the tree; the flat arrays are rebuilt lazily where needed).
    _flat: object = field(default=None, repr=False, compare=False)

    def __getstate__(self):
        return self.nodes

    def __setstate__(self, state) -> None:
        self.nodes = state
        self._flat = None

    def total_instrs(self) -> float:
        return sum(_node_instrs(n) for n in self.nodes)

    def total_cycles(self, ctype_name: str) -> float:
        return sum(_node_cycles(n, ctype_name) for n in self.nodes)

    def segments(self):
        """Iterate all distinct Segment leaves (structure order)."""
        stack = list(reversed(self.nodes))
        while stack:
            node = stack.pop()
            if isinstance(node, Segment):
                yield node
            else:
                stack.extend(reversed(node.children))


def _node_instrs(node: TraceNode) -> float:
    if isinstance(node, Segment):
        return node.total_instrs
    return node.count * sum(_node_instrs(c) for c in node.children)


def _node_cycles(node: TraceNode, ctype_name: str) -> float:
    if isinstance(node, Segment):
        return node.cycles_per_iter(ctype_name) * node.iterations
    return node.count * sum(_node_cycles(c, ctype_name) for c in node.children)


class TraceCursor:
    """Iterative walker over a trace's nested repeat structure."""

    __slots__ = ("_stack", "_segment", "_iters_done", "at_entry")

    def __init__(self, trace: Trace):
        self._stack: list[list] = []  # frames: [nodes, index, reps_left]
        self._segment: Optional[Segment] = None
        self._iters_done: float = 0.0
        self.at_entry: bool = False
        if trace.nodes:
            self._stack.append([trace.nodes, 0, 1])
            self._descend()

    def _descend(self) -> None:
        """Advance to the next Segment leaf, if any."""
        self._segment = None
        while self._stack:
            nodes, index, reps = self._stack[-1]
            if index >= len(nodes):
                if reps > 1:
                    self._stack[-1][1] = 0
                    self._stack[-1][2] = reps - 1
                    continue
                self._stack.pop()
                if self._stack:
                    self._stack[-1][1] += 1
                continue
            node = nodes[index]
            if isinstance(node, Segment):
                if node.iterations <= 0:
                    self._stack[-1][1] += 1
                    continue
                self._segment = node
                self._iters_done = 0.0
                self.at_entry = True
                return
            if node.count <= 0 or not node.children:
                self._stack[-1][1] += 1
                continue
            self._stack.append([node.children, 0, node.count])

    @property
    def finished(self) -> bool:
        return self._segment is None

    @property
    def current(self) -> Optional[Segment]:
        return self._segment

    @property
    def remaining_iterations(self) -> float:
        if self._segment is None:
            return 0.0
        return self._segment.iterations - self._iters_done

    def consume(self, iterations: float) -> None:
        """Consume *iterations* of the current segment.

        Raises:
            SimulationError: if more than the remainder is consumed or
                the trace is finished.
        """
        if self._segment is None:
            raise SimulationError("consume() on a finished trace")
        if iterations < 0 or iterations > self.remaining_iterations + 1e-9:
            raise SimulationError(
                f"cannot consume {iterations} of "
                f"{self.remaining_iterations} remaining iterations"
            )
        self.at_entry = False
        self._iters_done += iterations
        if self.remaining_iterations <= 1e-9:
            self._stack[-1][1] += 1
            self._descend()

    def mark_entry_handled(self) -> None:
        """Entry marks of the current segment were processed."""
        self.at_entry = False


@dataclass(slots=True)
class ProcessStats:
    """Accumulated execution statistics of one process."""

    instructions: float = 0.0
    cycles_by_type: dict = field(default_factory=dict)
    instrs_by_type: dict = field(default_factory=dict)
    cpu_time: float = 0.0
    switches: float = 0.0
    migrations: int = 0
    mark_firings: float = 0.0
    mark_overhead_cycles: float = 0.0

    def record(self, ctype_name: str, instrs: float, cycles: float) -> None:
        self.instructions += instrs
        self.cycles_by_type[ctype_name] = (
            self.cycles_by_type.get(ctype_name, 0.0) + cycles
        )
        self.instrs_by_type[ctype_name] = (
            self.instrs_by_type.get(ctype_name, 0.0) + instrs
        )


class SimProcess:
    """One running job: a trace plus scheduling state.

    Attributes:
        pid: unique process id.
        name: benchmark name (for reporting).
        trace: the dynamic behaviour.
        affinity: allowed core ids (the ``sched_setaffinity`` mask).
        arrival: arrival time in seconds.
        slot: workload slot index the process occupies, if any.
    """

    __slots__ = (
        "pid",
        "name",
        "trace",
        "cursor",
        "affinity",
        "arrival",
        "completion",
        "isolated_time",
        "slot",
        "stats",
        "tuner_state",
        "monitor_session",
        "current_core",
    )

    def __init__(
        self,
        pid: int,
        name: str,
        trace: Trace,
        affinity: frozenset,
        arrival: float = 0.0,
        isolated_time: float = 0.0,
        slot: Optional[int] = None,
    ):
        from repro.sim.flattrace import make_cursor  # Local: import cycle.

        self.pid = pid
        self.name = name
        self.trace = trace
        self.cursor = make_cursor(trace)
        self.affinity = affinity
        self.arrival = arrival
        self.completion: Optional[float] = None
        self.isolated_time = isolated_time
        self.slot = slot
        self.stats = ProcessStats()
        self.tuner_state: dict = {}
        self.monitor_session = None
        self.current_core: Optional[int] = None

    @property
    def finished(self) -> bool:
        return self.cursor.finished

    @property
    def flow_time(self) -> Optional[float]:
        """F_j = C_j - a_j, once completed."""
        if self.completion is None:
            return None
        return self.completion - self.arrival

    @property
    def stretch(self) -> Optional[float]:
        """F_j / t_j (Bender et al.), once completed."""
        flow = self.flow_time
        if flow is None or self.isolated_time <= 0:
            return None
        return flow / self.isolated_time

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"SimProcess(pid={self.pid}, {self.name}, {state})"


def spawn_thread_group(
    base_pid: int,
    name: str,
    traces,
    affinity: frozenset,
    isolated_time: float = 0.0,
    slot=None,
) -> list:
    """Create the threads of one multi-threaded process (Section VI-A).

    "When an application spawns multiple threads, it is essentially
    running one or more copies of the same code ... each thread will
    contain the necessary core switching and monitoring code present in
    the phase marks."  The marks' descriptor data lives in the process
    image, so all threads share one tuning state: a phase type decided
    by any thread applies to its siblings, and exploration work is not
    repeated per thread.  Each thread is its own schedulable entity with
    its own trace cursor and statistics.
    """
    shared_tuner_state: dict = {}
    threads = []
    for i, trace in enumerate(traces):
        thread = SimProcess(
            base_pid + i,
            f"{name}/t{i}",
            trace,
            affinity,
            isolated_time=isolated_time,
            slot=slot,
        )
        thread.tuner_state = shared_tuner_state
        threads.append(thread)
    return threads
