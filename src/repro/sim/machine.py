"""Machine configurations.

:func:`core2quad_amp` reproduces the paper's evaluation machine: "an
Intel Core 2 Quad processor with a clock frequency of 2.4GHz and two
cores under-clocked to 1.6GHz.  There are two L2 caches shared by two
cores each.  The cores running at the same frequency share an L2 cache."
:func:`three_core_amp` is the Section VII follow-up setup (2 fast,
1 slow).  Arbitrary configurations can be built directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.core import Core, CoreType

#: The paper's fast core type (stock Core 2 Quad clocks).
FAST = CoreType("fast", freq_ghz=2.4, l1_kb=32, l2_kb=4096)

#: The paper's slow (underclocked) core type.  Underclocking leaves the
#: cache sizes untouched; only the frequency differs.
SLOW = CoreType("slow", freq_ghz=1.6, l1_kb=32, l2_kb=4096)


@dataclass(frozen=True)
class MachineConfig:
    """An AMP: an ordered tuple of cores.

    Attributes:
        name: display name.
        cores: the physical cores, ``cores[i].cid == i``.
    """

    name: str
    cores: tuple

    def __post_init__(self) -> None:
        if not self.cores:
            raise SimulationError("machine has no cores")
        for i, core in enumerate(self.cores):
            if core.cid != i:
                raise SimulationError(
                    f"core ids must be dense: cores[{i}].cid == {core.cid}"
                )

    def __len__(self) -> int:
        return len(self.cores)

    def core_types(self) -> list[CoreType]:
        """Distinct core types, fastest first."""
        seen = {}
        for core in self.cores:
            seen.setdefault(core.ctype.name, core.ctype)
        return sorted(seen.values(), key=lambda ct: (-ct.freq_ghz, ct.name))

    def cores_of_type(self, ctype: CoreType) -> list[int]:
        """Core ids of all cores of *ctype*."""
        return [c.cid for c in self.cores if c.ctype.name == ctype.name]

    def affinity_of_type(self, ctype: CoreType) -> frozenset:
        """Affinity mask selecting every core of *ctype*."""
        return frozenset(self.cores_of_type(ctype))

    @property
    def all_cores_mask(self) -> frozenset:
        return frozenset(c.cid for c in self.cores)

    def l2_neighbors(self, cid: int) -> list[int]:
        """Other cores sharing the L2 of core *cid*."""
        group = self.cores[cid].l2_group
        return [c.cid for c in self.cores if c.l2_group == group and c.cid != cid]

    def is_asymmetric(self) -> bool:
        return len(self.core_types()) > 1

    def __str__(self) -> str:
        return f"{self.name}[{', '.join(str(c.ctype) for c in self.cores)}]"


def core2quad_amp() -> MachineConfig:
    """The paper's 4-core evaluation machine: 2 fast + 2 slow, paired L2s."""
    return MachineConfig(
        "core2quad-amp",
        (
            Core(0, FAST, l2_group=0),
            Core(1, FAST, l2_group=0),
            Core(2, SLOW, l2_group=1),
            Core(3, SLOW, l2_group=1),
        ),
    )


def three_core_amp() -> MachineConfig:
    """Section VII's additional setup: 2 fast cores and 1 slow core."""
    return MachineConfig(
        "three-core-amp",
        (
            Core(0, FAST, l2_group=0),
            Core(1, FAST, l2_group=0),
            Core(2, SLOW, l2_group=1),
        ),
    )


def many_core_amp(fast_cores: int = 4, slow_cores: int = 4) -> MachineConfig:
    """A larger AMP for the Section VI-C scalability discussion.

    The paper notes that grouping cores into types reduces many-core
    tuning to the multicore problem; the runtime here already explores
    core *types*, so its monitoring cost is independent of core count.
    """
    cores = []
    for i in range(fast_cores):
        cores.append(Core(i, FAST, l2_group=i // 2))
    for j in range(slow_cores):
        cid = fast_cores + j
        cores.append(Core(cid, SLOW, l2_group=cid // 2))
    return MachineConfig(f"many-core-{fast_cores}f{slow_cores}s", tuple(cores))


def symmetric_machine(n_cores: int = 4, freq_ghz: float = 2.4) -> MachineConfig:
    """A frequency-symmetric machine, for control experiments."""
    ctype = CoreType("uniform", freq_ghz=freq_ghz)
    cores = tuple(Core(i, ctype, l2_group=i // 2) for i in range(n_cores))
    return MachineConfig(f"symmetric-{n_cores}", cores)
