"""Analytic memory-hierarchy model.

Per symbolic access, the expected L1 and L2 misses per execution are
derived from the accessed region's working set vs the core's cache
capacities — the steady-state behaviour the detailed LRU simulator
converges to for the access patterns the synthetic ISA can express
(scalars and fixed-stride streams).  The calibration tests in
``tests/sim/test_cache_calibration.py`` check this agreement.

The asymmetry mechanism: L2 hit latency is charged in *cycles* (an
on-chip L2 is clocked with the core, so underclocking scales its
nanosecond latency along with everything else), while DRAM latency is
fixed in *nanoseconds* — a 2.4 GHz core therefore wastes 1.5x the stall
cycles of a 1.6 GHz core on every DRAM access.  That is exactly why
"cores with a lower frequency will waste fewer cycles during stalls" and
why memory-bound phases show higher IPC on slow cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import MemAccess
from repro.program.module import Program
from repro.sim.core import CoreType

#: L2 hit latency in core cycles (frequency-invariant).
L2_HIT_CYCLES = 12.0

#: DRAM access latency in nanoseconds (frequency-invariant wall time).
DRAM_LATENCY_NS = 50.0


@dataclass(frozen=True)
class MissProfile:
    """Expected misses of one access, per execution.

    Attributes:
        l1_misses: expected L1 misses per execution (served by L2).
        l2_misses: expected L2 misses per execution (served by DRAM);
            always a subset of the L1 misses.
    """

    l1_misses: float
    l2_misses: float

    @property
    def l2_hits(self) -> float:
        return self.l1_misses - self.l2_misses


class MemoryModel:
    """Analytic steady-state miss model for symbolic accesses."""

    def __init__(self, dram_latency_ns: float = DRAM_LATENCY_NS,
                 l2_hit_cycles: float = L2_HIT_CYCLES):
        self.dram_latency_ns = dram_latency_ns
        self.l2_hit_cycles = l2_hit_cycles

    def miss_profile(
        self, mem: MemAccess, program: Program, ctype: CoreType
    ) -> MissProfile:
        """Expected misses per execution of *mem* on a *ctype* core.

        Steady-state reasoning: a scalar (stride 0) stays resident; a
        strided stream touches a new line every ``line/stride``
        executions and, if its working set exceeds a level's capacity,
        each new line misses that level (it was evicted during the
        previous sweep).
        """
        if mem.stride == 0:
            return MissProfile(0.0, 0.0)
        region = program.region(mem.region)
        lines_per_exec = min(1.0, mem.stride / ctype.line_size)
        ws = region.working_set
        l1 = lines_per_exec if ws > ctype.l1_bytes else 0.0
        l2 = lines_per_exec if ws > ctype.l2_bytes else 0.0
        return MissProfile(l1, l2)

    def stall_cycles(
        self, mem: MemAccess, program: Program, ctype: CoreType
    ) -> float:
        """Expected stall cycles per execution of *mem* on *ctype*."""
        profile = self.miss_profile(mem, program, ctype)
        dram_cycles = self.dram_latency_ns * ctype.freq_ghz
        return profile.l2_hits * self.l2_hit_cycles + profile.l2_misses * dram_cycles

    def dram_penalty_cycles(self, ctype: CoreType) -> float:
        """Cycles one DRAM access stalls a *ctype* core."""
        return self.dram_latency_ns * ctype.freq_ghz
