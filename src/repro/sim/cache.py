"""Set-associative LRU cache simulator.

The fast path of the AMP simulator uses an analytic miss model
(:mod:`repro.sim.memory`); this detailed simulator exists to *validate*
that model — the calibration tests stream crafted address sequences
through both and require agreement — and as a reusable substrate for
finer-grained studies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """A classic set-associative cache with true-LRU replacement.

    Args:
        capacity_bytes: total capacity; must be divisible by
            ``associativity * line_size``.
        associativity: ways per set.
        line_size: line size in bytes (power of two).
    """

    def __init__(
        self,
        capacity_bytes: int,
        associativity: int = 8,
        line_size: int = 64,
    ):
        if line_size <= 0 or line_size & (line_size - 1):
            raise SimulationError(f"line size {line_size} not a power of two")
        if capacity_bytes <= 0 or associativity <= 0:
            raise SimulationError(
                f"cache needs positive capacity and associativity, got "
                f"{capacity_bytes}B x {associativity}-way"
            )
        if capacity_bytes % (associativity * line_size) != 0:
            raise SimulationError(
                f"capacity {capacity_bytes} not divisible by "
                f"{associativity} ways x {line_size}B lines"
            )
        self.capacity_bytes = capacity_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.num_sets = capacity_bytes // (associativity * line_size)
        # Each set is an OrderedDict tag -> None, LRU at the front.
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access *address*; return True on hit.  Misses allocate."""
        line = address // self.line_size
        set_index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[set_index]
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways[tag] = None
        if len(ways) > self.associativity:
            ways.popitem(last=False)  # Evict LRU.
        return False

    def access_stream(self, addresses) -> CacheStats:
        """Access a whole stream; return stats for just this stream."""
        before_hits, before_misses = self.stats.hits, self.stats.misses
        for address in addresses:
            self.access(address)
        return CacheStats(
            self.stats.hits - before_hits, self.stats.misses - before_misses
        )

    def flush(self) -> None:
        """Invalidate all lines (stats are kept)."""
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.capacity_bytes}B, "
            f"{self.associativity}-way, {self.line_size}B lines)"
        )


@dataclass
class CacheHierarchy:
    """A two-level hierarchy for detailed studies."""

    l1: SetAssociativeCache
    l2: SetAssociativeCache
    l1_stats: CacheStats = field(default_factory=CacheStats)
    l2_stats: CacheStats = field(default_factory=CacheStats)

    def access(self, address: int) -> str:
        """Access *address*; return ``"l1"``, ``"l2"`` or ``"mem"``."""
        if self.l1.access(address):
            self.l1_stats.hits += 1
            return "l1"
        self.l1_stats.misses += 1
        if self.l2.access(address):
            self.l2_stats.hits += 1
            return "l2"
        self.l2_stats.misses += 1
        return "mem"
