"""The open-system workload engine.

Every experiment in the paper is *closed*: a fixed mix of jobs runs to
completion and the report is mean process time.  This module drives the
same :class:`~repro.sim.executor.Simulation` event heap as an *open*
queueing system instead — jobs arrive under a seeded stochastic (or
deterministic-rate) arrival process, may be cancelled while queued or
mid-run, and the machine may lose cores to breakdown/repair windows —
so stock and phase-tuned scheduling can be compared on service metrics:
p50/p95/p99 sojourn time, queue depth, and throughput under offered
load.

Composition with the executor (DESIGN.md §15):

* every dynamic event is an ordinary heap event — arrivals via
  :meth:`Simulation.add_process`, departures via
  :meth:`Simulation.cancel_process`, breakdowns as hotplug pairs inside
  a :class:`~repro.sim.faults.FaultPlan` — so macro-quantum coalescing
  needs no special cases: a pending dynamic event *bounds* a stability
  window exactly like a pending fault does, and heavy churn degrades
  gracefully to the per-quantum path;
* determinism: each stochastic decision class (interarrival times,
  class mix, cancellation choices, breakdown windows) draws from its
  own dedicated ``random.Random`` stream keyed off the plan seed (the
  :meth:`FaultPlan.scaled` idiom), so enabling one knob never shifts
  the draws behind another, and a fixed seed replays bit-identically;
* a null plan (zero rate, no cancellations, no breakdowns) pushes no
  events and passes ``faults=None`` through untouched, so a zero-
  arrival open-system run over a closed workload is *bit-identical* to
  the equivalent :class:`~repro.workloads.workload.WorkloadRun`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.errors import OpenSystemError
from repro.metrics.latency import (
    LatencySketch,
    QueueDepthSeries,
    per_class_throughput,
)
from repro.sim.checkpoint import CheckpointManager
from repro.sim.executor import Simulation, SimulationResult
from repro.sim.faults import FaultPlan, HotplugEvent
from repro.sim.machine import MachineConfig
from repro.sim.process import SimProcess

__all__ = [
    "LoadController",
    "LoadPoint",
    "LoadSweep",
    "OpenSystemPlan",
    "OpenSystemResult",
    "OpenSystemRun",
    "service_capacity",
]

#: Open-system jobs get pids above this base so they can never collide
#: with a closed workload's slot-respawned pids (bounded by
#: slots x queue_length, far below this).
OPEN_PID_BASE = 1_000_000

# Dedicated RNG stream magics (FaultPlan.scaled idiom): one stream per
# stochastic decision class, so plans stay bit-identical when a knob
# they do not use is turned on.
_ARRIVAL_MAGIC = 0xA2217
_CLASS_MAGIC = 0xC7A55
_CANCEL_MAGIC = 0x7D0C5
_BREAKDOWN_MAGIC = 0xB7EAC


@dataclass(frozen=True)
class OpenSystemPlan:
    """A deterministic open-system schedule (pure, picklable data).

    Attributes:
        seed: RNG seed; the same plan replays bit-identically.
        rate: offered arrival rate in jobs per simulated second
            (``0.0`` disables arrivals entirely).
        horizon: arrival window — jobs arrive in ``[0, horizon)``.
        process: ``"poisson"`` (exponential interarrivals) or
            ``"uniform"`` (deterministic rate: one arrival every
            ``1/rate`` seconds).
        classes: benchmark names forming the per-class job mix; each
            arrival draws its class uniformly from this tuple (use
            repeats to weight a class).
        cancel_fraction: probability an arrival is later cancelled.
        cancel_delay: ``(lo, hi)`` seconds after its arrival at which a
            chosen job's cancellation fires (uniform draw).
        breakdowns: number of machine breakdown/repair windows to lay
            over the run (hotplug pairs; core 0 is never taken down,
            and single-core machines break down never).
        breakdown_length: ``(lo, hi)`` window length as a fraction of
            the horizon.
    """

    seed: int = 0
    rate: float = 0.0
    horizon: float = 120.0
    process: str = "poisson"
    classes: tuple = ()
    cancel_fraction: float = 0.0
    cancel_delay: tuple = (0.5, 8.0)
    breakdowns: int = 0
    breakdown_length: tuple = (0.05, 0.15)

    def __post_init__(self) -> None:
        if self.rate < 0.0 or not math.isfinite(self.rate):
            raise OpenSystemError(f"rate must be finite >= 0, got {self.rate}")
        if self.horizon <= 0.0:
            raise OpenSystemError(f"horizon must be positive, got {self.horizon}")
        if self.process not in ("poisson", "uniform"):
            raise OpenSystemError(
                f"process must be 'poisson' or 'uniform', got {self.process!r}"
            )
        if self.rate > 0.0 and not self.classes:
            raise OpenSystemError("a plan with arrivals needs a class mix")
        if not 0.0 <= self.cancel_fraction <= 1.0:
            raise OpenSystemError(
                f"cancel_fraction must be in [0, 1], got {self.cancel_fraction}"
            )
        lo, hi = self.cancel_delay
        if not 0.0 <= lo <= hi:
            raise OpenSystemError(f"bad cancel_delay window: {self.cancel_delay}")
        if self.breakdowns < 0:
            raise OpenSystemError(
                f"breakdowns must be >= 0, got {self.breakdowns}"
            )
        lo, hi = self.breakdown_length
        if not 0.0 < lo <= hi <= 1.0:
            raise OpenSystemError(
                f"breakdown_length fractions must satisfy 0 < lo <= hi <= 1: "
                f"{self.breakdown_length}"
            )

    @property
    def is_closed(self) -> bool:
        """True when this plan injects no dynamic events at all — the
        bit-identity-with-closed-runs regime."""
        return self.rate == 0.0 and self.breakdowns == 0

    def arrivals(self) -> tuple:
        """The deterministic arrival schedule: ``(time, class)`` pairs
        in time order, times in ``[0, horizon)``."""
        if self.rate == 0.0:
            return ()
        arrival_rng = random.Random((int(self.seed) << 4) ^ _ARRIVAL_MAGIC)
        class_rng = random.Random((int(self.seed) << 4) ^ _CLASS_MAGIC)
        classes = self.classes
        out = []
        if self.process == "uniform":
            step = 1.0 / self.rate
            t = step
        else:
            t = arrival_rng.expovariate(self.rate)
        while t < self.horizon:
            out.append((t, classes[class_rng.randrange(len(classes))]))
            if self.process == "uniform":
                t += step
            else:
                t += arrival_rng.expovariate(self.rate)
        return tuple(out)

    def cancellations(self, arrivals: tuple) -> tuple:
        """Which arrivals get cancelled, and when: ``(time, index)``
        pairs where *index* is the arrival's position in *arrivals*.
        Cancellation times always fall strictly after the job's
        arrival (it must exist to be cancelled); they may land after
        the job completes, in which case the cancellation is a miss.
        """
        if self.cancel_fraction == 0.0 or not arrivals:
            return ()
        rng = random.Random((int(self.seed) << 4) ^ _CANCEL_MAGIC)
        lo, hi = self.cancel_delay
        out = []
        for index, (t, _name) in enumerate(arrivals):
            if rng.random() < self.cancel_fraction:
                delay = rng.uniform(lo, hi)
                if delay <= 0.0:
                    delay = 1e-9
                out.append((t + delay, index))
        return tuple(out)

    def breakdown_plan(self, machine: MachineConfig) -> Optional[FaultPlan]:
        """Breakdown/repair windows as a hotplug
        :class:`~repro.sim.faults.FaultPlan`, or ``None`` when the plan
        schedules none (so fault-free runs build no injector at all).

        Routing breakdowns through the fault machinery — rather than
        raw heap pushes — buys every hotplug invariant for free: the
        executor drains the broken core's runqueue, placement avoids
        it, the last online core is never taken down, and
        :meth:`FaultPlan.next_event_after` caps coalescing windows at
        the breakdown boundary.
        """
        if self.breakdowns == 0 or len(machine) <= 1:
            return None
        rng = random.Random((int(self.seed) << 4) ^ _BREAKDOWN_MAGIC)
        lo, hi = self.breakdown_length
        events = []
        for _ in range(self.breakdowns):
            core = rng.randrange(1, len(machine))
            start = rng.uniform(0.05, 0.75) * self.horizon
            length = rng.uniform(lo, hi) * self.horizon
            end = min(start + length, 0.95 * self.horizon)
            events.append(HotplugEvent(start, core, online=False))
            events.append(HotplugEvent(end, core, online=True))
        return FaultPlan(seed=self.seed, hotplug=tuple(events))


@dataclass
class OpenSystemResult:
    """Service metrics of one open-system run.

    The job ledger is conserved by construction and checked by the
    property suite: ``arrived == completed + cancelled + in_flight``.
    ``cancel_misses`` counts cancellations that found their job already
    retired (or unremovable); they retire the *cancellation*, never the
    job, so they sit outside the ledger.
    """

    plan: OpenSystemPlan
    horizon: float
    arrived: int
    completed: int
    cancelled: int
    cancel_misses: int
    sojourn: LatencySketch
    wait: LatencySketch
    depth: QueueDepthSeries
    completed_by_class: dict = field(default_factory=dict)
    sim_result: Optional[SimulationResult] = None

    @property
    def in_flight(self) -> int:
        """Open jobs still in the system when the run stopped."""
        return self.arrived - self.completed - self.cancelled

    @property
    def throughput(self) -> float:
        """Completed open jobs per simulated second."""
        return self.completed / self.horizon if self.horizon > 0 else 0.0

    def class_throughput(self) -> dict:
        return per_class_throughput(self.completed_by_class, self.horizon)

    @property
    def saturated(self) -> bool:
        """Backlog-growth heuristic: the time-weighted mean queue depth
        over the second half of the horizon exceeds twice the first
        half plus a small absolute slack — the queue is growing, not
        cycling, i.e. offered load exceeds sustainable capacity."""
        half = self.horizon / 2.0
        early = self.depth.mean(0.0, half)
        late = self.depth.mean(half, self.horizon)
        return late > 2.0 * early + 2.0

    def to_dict(self) -> dict:
        """JSON-able image (CI artifacts, cross-run determinism diffs)."""
        return {
            "rate": self.plan.rate,
            "horizon": self.horizon,
            "arrived": self.arrived,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "cancel_misses": self.cancel_misses,
            "in_flight": self.in_flight,
            "throughput": self.throughput,
            "saturated": self.saturated,
            "sojourn": self.sojourn.to_dict(),
            "wait": self.wait.to_dict(),
            "depth_mean": self.depth.mean(0.0, self.horizon),
            "depth_peak": self.depth.peak(),
            "class_throughput": self.class_throughput(),
        }


class OpenSystemRun:
    """One open-system plan bound to a machine and technique.

    Mirrors :class:`~repro.workloads.workload.WorkloadRun`: each
    distinct job class is prepared once through the static pipeline
    (tuned or baseline), and every arrival of that class shares the
    immutable trace template.  Optionally composes with a closed
    workload whose slot queues seed the system at ``t = 0`` — with a
    null plan that degenerates to exactly the closed run (the
    bit-identity regression the property suite pins).

    Args:
        plan: the open-system schedule.
        machine: the AMP to run on.
        strategy: marking strategy for tuned runs; ``None`` is stock.
        typing_overrides: optional ``{benchmark: BlockTyping}``.
        cache: static-pipeline cache (process default when omitted).
        closed_workload: optional
            :class:`~repro.workloads.workload.Workload` seeding the
            system with slot-respawned jobs, exactly as a closed run
            would.
    """

    def __init__(
        self,
        plan: OpenSystemPlan,
        machine: MachineConfig,
        strategy=None,
        typing_overrides: Optional[dict] = None,
        cache=None,
        closed_workload=None,
    ):
        # Imported here, not at module top: workloads imports sim
        # submodules, and this keeps repro.sim importable in any order.
        from repro.tuning.pipeline import baseline_binary, tune_program
        from repro.workloads.spec import spec_benchmark
        from repro.workloads.workload import WorkloadRun, _PreparedBenchmark

        self.plan = plan
        self.machine = machine
        self.strategy = strategy
        typing_overrides = typing_overrides or {}
        self._closed = None
        if closed_workload is not None:
            self._closed = WorkloadRun(
                closed_workload,
                machine,
                strategy,
                typing_overrides=typing_overrides,
                cache=cache,
            )
        self._prepared: dict = {}
        for name in sorted(set(plan.classes)):
            if self._closed is not None and name in self._closed._prepared:
                self._prepared[name] = self._closed._prepared[name]
                continue
            benchmark = spec_benchmark(name)
            if strategy is None:
                trace, isolated = baseline_binary(
                    benchmark.program, machine, benchmark.spec, cache=cache
                )
            else:
                tuned = tune_program(
                    benchmark.program,
                    strategy,
                    machine,
                    benchmark.spec,
                    typing=typing_overrides.get(name),
                    cache=cache,
                )
                trace = tuned.tuned_trace
                isolated = tuned.isolated_seconds
            self._prepared[name] = _PreparedBenchmark(benchmark, trace, isolated)
        # Per-run bookkeeping, reset by run().
        self._completion_times: list = []
        self._cancel_times: list = []
        self._cancel_misses = 0
        self._sojourn = LatencySketch()
        self._wait = LatencySketch()
        self._completed_by_class: dict = {}
        self.last_simulation: Optional[Simulation] = None

    # -- pure plan views ----------------------------------------------------

    def mean_isolated_seconds(self) -> float:
        """Mean isolated service time across the prepared job classes
        (the service-time half of :func:`service_capacity`)."""
        if not self._prepared:
            raise OpenSystemError("no job classes prepared")
        return sum(p.isolated_seconds for p in self._prepared.values()) / len(
            self._prepared
        )

    def _spawn_open(self, index: int, name: str) -> SimProcess:
        prepared = self._prepared[name]
        return SimProcess(
            OPEN_PID_BASE + 1 + index,
            name,
            prepared.trace_template,
            self.machine.all_cores_mask,
            isolated_time=prepared.isolated_seconds,
        )

    # -- simulation callbacks (bound methods: snapshots stay picklable) -----

    def _on_complete(self, proc: SimProcess, now: float):
        if proc.pid > OPEN_PID_BASE:
            self._completion_times.append(now)
            sojourn = now - proc.arrival
            self._sojourn.add(sojourn)
            # Wait = time in the system not spent executing: sojourn
            # minus accumulated CPU time, i.e. queueing delay across
            # the job's whole life (not just before first dispatch).
            self._wait.add(max(0.0, sojourn - proc.stats.cpu_time))
            count = self._completed_by_class
            count[proc.name] = count.get(proc.name, 0) + 1
            return None
        if self._closed is not None:
            return self._closed._on_complete(proc, now)
        return None

    def _on_cancel(self, proc: Optional[SimProcess], now: float) -> None:
        if proc is None:
            self._cancel_misses += 1
        else:
            self._cancel_times.append(now)

    # -- execution ----------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        runtime=None,
        scheduler=None,
        contention_alpha: float = 0.4,
        pollution_beta: float = 0.6,
        faults=None,
        checkpoint=None,
        coalesce=None,
    ) -> OpenSystemResult:
        """Run the open system for *until* simulated seconds (defaults
        to the plan horizon).

        The arrival/cancellation schedules and breakdown plan are fully
        materialised before the first event fires, so the run is a pure
        function of (plan, machine, technique, knobs) — fixed seeds
        replay bit-identically in every executor mode.
        """
        plan = self.plan
        horizon = plan.horizon if until is None else until
        self._completion_times = []
        self._cancel_times = []
        self._cancel_misses = 0
        self._sojourn = LatencySketch()
        self._wait = LatencySketch()
        self._completed_by_class = {}

        fault_arg = faults
        if fault_arg is None:
            fault_arg = plan.breakdown_plan(self.machine)

        if checkpoint is not None and not isinstance(
            checkpoint, CheckpointManager
        ):
            checkpoint = CheckpointManager(checkpoint)
        simulation = None
        if checkpoint is not None:
            state = checkpoint.latest_state()
            if state is not None:
                simulation = Simulation.from_snapshot(state)
        arrivals = plan.arrivals()
        if simulation is None:
            simulation = Simulation(
                self.machine,
                scheduler=scheduler,
                runtime=runtime,
                contention_alpha=contention_alpha,
                pollution_beta=pollution_beta,
                on_complete=self._on_complete,
                on_cancel=self._on_cancel,
                faults=fault_arg,
                coalesce=coalesce,
            )
            if self._closed is not None:
                for slot in range(self._closed.workload.slots):
                    simulation.add_process(self._closed._spawn(slot), 0.0)
            for index, (t, name) in enumerate(arrivals):
                simulation.add_process(self._spawn_open(index, name), t)
            for t, index in plan.cancellations(arrivals):
                simulation.cancel_process(OPEN_PID_BASE + 1 + index, t)
        self.last_simulation = simulation
        # On a checkpoint resume the snapshot's engine (bound into the
        # restored callbacks) carries the accumulated sketches; read
        # results through it, like WorkloadRun reads last_simulation.
        engine = (
            simulation.on_complete.__self__
            if simulation.on_complete is not None
            and getattr(simulation.on_complete, "__self__", None) is not None
            and isinstance(simulation.on_complete.__self__, OpenSystemRun)
            else self
        )
        sim_result = simulation.run(horizon, checkpoint=checkpoint)
        simulation.snapshot_running()
        arrived_times = [t for t, _name in arrivals if t <= horizon]
        depth = QueueDepthSeries.from_events(
            arrived_times,
            engine._completion_times + engine._cancel_times,
        )
        return OpenSystemResult(
            plan=plan,
            horizon=horizon,
            arrived=len(arrived_times),
            completed=len(engine._completion_times),
            cancelled=len(engine._cancel_times),
            cancel_misses=engine._cancel_misses,
            sojourn=engine._sojourn,
            wait=engine._wait,
            depth=depth,
            completed_by_class=dict(engine._completed_by_class),
            sim_result=sim_result,
        )


def service_capacity(machine: MachineConfig, mean_isolated_seconds: float) -> float:
    """Measured service capacity in jobs per second.

    The machine completes one mean job per ``mean_isolated_seconds`` on
    its fastest core type; slower cores contribute their frequency
    ratio.  ``mean_isolated_seconds`` comes from the static pipeline's
    isolated-run simulation of each prepared class
    (:meth:`OpenSystemRun.mean_isolated_seconds`), so the capacity is
    *measured* against the same cost model the run uses, not assumed.
    This ignores contention and scheduling loss, making it an upper
    bound — which is the right normaliser for an offered-load sweep
    (λ/capacity = 1.0 is genuinely unsustainable).
    """
    if mean_isolated_seconds <= 0:
        raise OpenSystemError(
            f"mean isolated seconds must be positive, got {mean_isolated_seconds}"
        )
    freqs = [core.ctype.freq_ghz for core in machine.cores]
    effective_cores = sum(freqs) / max(freqs)
    return effective_cores / mean_isolated_seconds


@dataclass(frozen=True)
class LoadPoint:
    """One point of an offered-load sweep."""

    fraction: float
    rate: float
    result: OpenSystemResult


@dataclass(frozen=True)
class LoadSweep:
    """An offered-load sweep with its saturation verdict."""

    capacity: float
    points: tuple

    @property
    def saturation_fraction(self) -> Optional[float]:
        """The lowest swept load fraction whose run saturated, or
        ``None`` when every point stayed stable."""
        for point in self.points:
            if point.result.saturated:
                return point.fraction
        return None


class LoadController:
    """Sweeps offered load as a fraction of measured capacity.

    Args:
        base_plan: plan template; each sweep point replaces its
            ``rate`` with ``fraction * capacity``.
        capacity: service capacity in jobs/second (see
            :func:`service_capacity`).
        runner: callable ``(plan) -> OpenSystemResult`` executing one
            point (typically a closure over an :class:`OpenSystemRun`
            factory so each point gets a fresh engine).
    """

    def __init__(
        self,
        base_plan: OpenSystemPlan,
        capacity: float,
        runner: Callable[[OpenSystemPlan], OpenSystemResult],
    ):
        if capacity <= 0:
            raise OpenSystemError(f"capacity must be positive, got {capacity}")
        self.base_plan = base_plan
        self.capacity = capacity
        self.runner = runner

    def plan_at(self, fraction: float) -> OpenSystemPlan:
        if fraction < 0:
            raise OpenSystemError(
                f"load fraction must be >= 0, got {fraction}"
            )
        return replace(self.base_plan, rate=fraction * self.capacity)

    def sweep(self, fractions, stop_past_saturation: int = 0) -> LoadSweep:
        """Run every load fraction in order; with
        *stop_past_saturation* > 0, stop after that many consecutive
        saturated points (the remaining grid can only saturate harder).
        """
        points = []
        saturated_streak = 0
        for fraction in fractions:
            result = self.runner(self.plan_at(fraction))
            points.append(
                LoadPoint(fraction=fraction, rate=result.plan.rate, result=result)
            )
            if result.saturated:
                saturated_streak += 1
                if stop_past_saturation and saturated_streak >= stop_past_saturation:
                    break
            else:
                saturated_streak = 0
        return LoadSweep(capacity=self.capacity, points=tuple(points))
