"""Cores and core types.

A single-ISA AMP's cores "differ in terms of performance characteristics
such as clock frequency, cache size".  A :class:`CoreType` captures those
characteristics; a :class:`Core` is one physical core of some type plus
its L2 sharing group (the paper's machine shares one L2 between each pair
of same-frequency cores).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreType:
    """Performance characteristics shared by all cores of one type.

    Attributes:
        name: display name, e.g. ``"fast"``.
        freq_ghz: clock frequency in GHz.
        l1_kb: private L1 data cache size in KiB.
        l2_kb: (shared) L2 cache size in KiB.
        line_size: cache line size in bytes.
    """

    name: str
    freq_ghz: float
    l1_kb: int = 32
    l2_kb: int = 4096
    line_size: int = 64

    @property
    def freq_hz(self) -> float:
        return self.freq_ghz * 1e9

    @property
    def l1_bytes(self) -> int:
        return self.l1_kb * 1024

    @property
    def l2_bytes(self) -> int:
        return self.l2_kb * 1024

    def __str__(self) -> str:
        return f"{self.name}@{self.freq_ghz}GHz"


@dataclass(frozen=True)
class Core:
    """One physical core.

    Attributes:
        cid: core id (dense, 0-based).
        ctype: the core's type.
        l2_group: id of the L2 cache this core shares; cores with equal
            ``l2_group`` contend for the same L2.
    """

    cid: int
    ctype: CoreType
    l2_group: int

    def __str__(self) -> str:
        return f"core{self.cid}({self.ctype})"
