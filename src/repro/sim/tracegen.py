"""Trace generation: from programs to executable phase-level traces.

A benchmark's dynamic behaviour is derived from its program structure
plus a :class:`BehaviorSpec` giving loop trip counts.  The generator
performs a hierarchical expected-frequency analysis of each procedure's
CFG (loops collapsed into supernodes, conditional paths split equally,
calls folded or inlined) and emits a compact
:class:`~repro.sim.process.Trace`:

* loops that *alternate* between inner phases (nested loops or calls to
  loop-bearing procedures) are **expanded** into
  :class:`~repro.sim.process.Repeat` nodes so phase changes appear as
  separate trace segments — the behaviour phase-based tuning exploits;
* homogeneous loops are **collapsed** into a single segment with an
  aggregate per-iteration cost — the executor then skips over billions
  of cycles in O(1).

Phase marks from an :class:`~repro.instrument.rewriter.InstrumentedProgram`
are attached where the rewriter spliced them: on segment entries when
the mark guards the section from outside (loop/interval techniques), or
embedded with a per-iteration rate when the mark sits inside a collapsed
body (the naive basic-block technique, whose thrash cost this makes
visible).  The same generator run on the plain program yields a
structurally identical, mark-free trace, so baseline-vs-tuned
comparisons share the exact same dynamics.

Approximations (documented, deliberate): conditional branch paths are
weighted equally; loops entered with probability below
``EXPAND_FREQ_THRESHOLD`` are never expanded; expansion is capped by a
segment budget, beyond which a loop collapses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import SimulationError, WorkloadError
from repro.program.basic_block import NodeKind
from repro.program.callgraph import build_callgraph
from repro.program.cfg import CFG, cached_cfg
from repro.program.loops import Loop, find_loops
from repro.program.module import Program
from repro.sim.cost_model import CostModel, CostVector
from repro.sim.machine import MachineConfig
from repro.sim.memory import MemoryModel
from repro.sim.process import EmbeddedMark, MarkRef, Repeat, Segment, Trace

#: Loops entered with lower probability than this are never expanded.
EXPAND_FREQ_THRESHOLD = 0.75

#: Frequencies below this are treated as dead paths.
_EPS = 1e-9


@dataclass
class BehaviorSpec:
    """Dynamic behaviour parameters of one benchmark.

    Attributes:
        trip_counts: iterations per loop entry, keyed by ``(proc, label)``
            where *label* sits at the loop header (the natural way for a
            generator that labelled its loops), or directly by loop uid.
        default_trip: trip count for loops not listed.
        recursion_depth: how many times recursive call cycles are unrolled
            when aggregating costs.
        max_inline_depth: call-inlining depth for trace emission.
        segment_budget: cap on the number of trace steps an expanded loop
            may produce; larger loops are collapsed.
    """

    trip_counts: dict = field(default_factory=dict)
    default_trip: float = 50.0
    recursion_depth: int = 4
    max_inline_depth: int = 8
    segment_budget: int = 200_000

    def with_trips(self, **updates) -> "BehaviorSpec":
        """Copy with additional ``(proc, label) -> trips`` entries given
        as ``proc__label=count`` keyword arguments."""
        trips = dict(self.trip_counts)
        for key, value in updates.items():
            proc, _, label = key.partition("__")
            trips[(proc, label)] = value
        return BehaviorSpec(
            trips,
            self.default_trip,
            self.recursion_depth,
            self.max_inline_depth,
            self.segment_budget,
        )


class _ScopeItem:
    """A node of a collapsed scope DAG: a plain block or a loop supernode."""

    __slots__ = ("block", "loop")

    def __init__(self, block=None, loop=None):
        self.block = block
        self.loop = loop

    @property
    def key(self):
        if self.loop is not None:
            return ("loop", self.loop.uid)
        return ("block", self.block)


class TraceGenerator:
    """Generates traces for one machine configuration."""

    def __init__(self, machine: MachineConfig, memory: Optional[MemoryModel] = None):
        self.machine = machine
        self.cost_model = CostModel(machine, memory)
        self._reset()

    def _reset(self) -> None:
        self._program: Optional[Program] = None
        self._instrumented = None
        self._spec: Optional[BehaviorSpec] = None
        self._cfgs: dict = {}
        self._loops: dict = {}
        self._trips: dict = {}
        self._agg_memo: dict = {}
        self._loop_memo: dict = {}
        self._dag_memo: dict = {}
        self._in_progress: set = set()

    # -- public API ---------------------------------------------------------

    def generate(self, target, spec: Optional[BehaviorSpec] = None) -> Trace:
        """Generate the trace of *target* under *spec*.

        Args:
            target: a :class:`~repro.program.module.Program` or an
                :class:`~repro.instrument.rewriter.InstrumentedProgram`.
            spec: behaviour parameters; defaults apply when omitted.
        """
        self._reset()
        self._spec = spec or BehaviorSpec()
        if hasattr(target, "program") and hasattr(target, "mark_at_edge"):
            self._instrumented = target
            self._program = target.program
            self._cfgs = dict(target.aprog.cfgs)
        else:
            self._instrumented = None
            self._program = target
            self._cfgs = {p.name: cached_cfg(p) for p in target}
        self._loops = {
            name: find_loops(cfg) for name, cfg in self._cfgs.items()
        }
        self._resolve_trips()
        self._precompute_aggregates()

        nodes = self._emit_proc(
            self._program.entry, depth=0, budget=self._spec.segment_budget
        )
        if not nodes:
            raise WorkloadError(
                f"program {self._program.name!r} produced an empty trace"
            )
        trace = Trace(tuple(nodes))
        # Precompute every segment's flat per-core-type cost tuple here,
        # at trace-build time: traces are shared templates, so this work
        # happens once per benchmark instead of once per quantum.
        ctype_names = [ct.name for ct in self.machine.core_types()]
        for segment in trace.segments():
            for name in ctype_names:
                segment.cost_tuple(name)
        return trace

    def isolated_seconds(self, trace: Trace, ctype=None) -> float:
        """Wall time the trace takes alone on one core (fastest by
        default): the ``t_i`` of the stretch metric."""
        ctype = ctype or self.machine.core_types()[0]
        return trace.total_cycles(ctype.name) / ctype.freq_hz

    # -- setup --------------------------------------------------------------

    def _resolve_trips(self) -> None:
        """Resolve (proc, label) trip keys to loop uids."""
        self._trips = {}
        for key, trips in self._spec.trip_counts.items():
            if isinstance(key, str):
                self._trips[key] = float(trips)
                continue
            proc_name, label = key
            proc = self._program[proc_name]
            if label not in proc.labels:
                raise SimulationError(
                    f"trip count names unknown label {label!r} in "
                    f"{proc_name!r}"
                )
            start = proc.labels[label]
            loop = self._loop_with_header_start(proc_name, start)
            if loop is None:
                raise SimulationError(
                    f"label {label!r} in {proc_name!r} is not a loop header"
                )
            self._trips[loop.uid] = float(trips)

    def _loop_with_header_start(self, proc_name: str, start: int) -> Optional[Loop]:
        cfg = self._cfgs[proc_name]
        for loop in self._loops[proc_name]:
            if cfg.blocks[loop.header].start == start:
                return loop
        return None

    def _trip(self, loop: Loop) -> float:
        return self._trips.get(loop.uid, self._spec.default_trip)

    # -- collapsed scope DAGs -----------------------------------------------

    def _scope_dag(self, proc_name: str, within: Optional[Loop]):
        """Build the collapsed DAG of one scope.

        Returns (items, succs, entry_key) where items maps key -> item
        and succs maps key -> ordered list of (succ_key, original_edges).
        """
        cfg = self._cfgs[proc_name]
        if within is None:
            members = set(range(len(cfg.blocks)))
            sub_loops = [l for l in self._loops[proc_name] if l.parent is None]
            entry_block = 0
        else:
            members = set(within.body)
            sub_loops = within.children
            entry_block = within.header

        owner: dict[int, Loop] = {}
        for loop in sub_loops:
            for b in loop.body:
                owner[b] = loop

        items: dict = {}
        for b in sorted(members):
            loop = owner.get(b)
            if loop is None:
                item = _ScopeItem(block=b)
                items[item.key] = item
            else:
                key = ("loop", loop.uid)
                if key not in items:
                    items[key] = _ScopeItem(loop=loop)

        def lift(block: int):
            loop = owner.get(block)
            if loop is not None:
                return ("loop", loop.uid)
            return ("block", block)

        succs: dict = {key: [] for key in items}
        seen_edges: dict = {}
        for edge in cfg.edges:
            if edge.src not in members or edge.dst not in members:
                continue
            if within is not None and edge.dst == within.header:
                continue  # This scope's own back edges.
            src_key, dst_key = lift(edge.src), lift(edge.dst)
            if src_key == dst_key:
                continue  # Internal to a supernode.
            bucket = seen_edges.setdefault((src_key, dst_key), [])
            bucket.append((edge.src, edge.dst))
        for (src_key, dst_key), originals in seen_edges.items():
            succs[src_key].append((dst_key, originals))
        for key in succs:
            succs[key].sort(key=lambda s: str(s[0]))

        entry_key = lift(entry_block)
        return items, succs, entry_key

    def _scope_info(self, proc_name: str, within: Optional[Loop]):
        """Memoized (items, succs, entry_key, freq, order) of one scope.

        The scope DAG, its frequencies and its topological order depend
        only on program structure and trip counts — both fixed for the
        duration of one :meth:`generate` call — so aggregation rounds and
        emission share one computation per scope.  Callers treat the
        returned structures as read-only.
        """
        key = (proc_name, within.uid if within is not None else None)
        got = self._dag_memo.get(key)
        if got is None:
            items, succs, entry_key = self._scope_dag(proc_name, within)
            freq = self._frequencies(items, succs, entry_key)
            order = self._topo_order(items, succs, entry_key)
            got = (items, succs, entry_key, freq, order)
            self._dag_memo[key] = got
        return got

    def _frequencies(self, items, succs, entry_key) -> dict:
        """Expected executions of each item per scope execution.

        Propagates in topological order, splitting each item's frequency
        equally among its distinct successors.  Retreating edges of
        irreducible regions are ignored (DFS-order approximation).
        """
        order = self._topo_order(items, succs, entry_key)
        position = {key: i for i, key in enumerate(order)}
        freq = {key: 0.0 for key in items}
        freq[entry_key] = 1.0
        for key in order:
            f = freq[key]
            if f <= _EPS:
                continue
            forward = [
                (dst, originals)
                for dst, originals in succs[key]
                if position.get(dst, -1) > position[key]
            ]
            if not forward:
                continue
            share = f / len(forward)
            for dst, _ in forward:
                freq[dst] += share
        return freq

    @staticmethod
    def _topo_order(items, succs, entry_key) -> list:
        """DFS postorder reversed: a topological order for DAGs, a
        consistent approximation otherwise."""
        seen = set()
        order = []
        stack = [(entry_key, iter([dst for dst, _ in succs[entry_key]]))]
        seen.add(entry_key)
        while stack:
            key, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter([dst for dst, _ in succs[nxt]])))
                    advanced = True
                    break
            if not advanced:
                order.append(key)
                stack.pop()
        order.reverse()
        return order

    # -- marks ---------------------------------------------------------------

    def _mark_on_edge(self, proc_name: str, src: int, dst: int):
        if self._instrumented is None:
            return None
        return self._instrumented.mark_at_edge(proc_name, src, dst)

    def _proc_entry_mark(self, proc_name: str):
        if self._instrumented is None:
            return None
        return self._instrumented.entry_mark(proc_name)

    def _section_entry_marks(self, proc_name: str, loop: Loop) -> list:
        """Marks on the edges entering *loop* from outside."""
        cfg = self._cfgs[proc_name]
        marks = []
        for src in cfg.preds(loop.header):
            if src in loop.body:
                continue
            mark = self._mark_on_edge(proc_name, src, loop.header)
            if mark is not None and mark not in marks:
                marks.append(mark)
        return marks

    # -- aggregation (collapse) ----------------------------------------------

    def _precompute_aggregates(self) -> None:
        """Aggregate procedure costs bottom-up; iterate recursive SCCs."""
        callgraph = build_callgraph(self._program, self._cfgs)
        for scc in callgraph.bottom_up_sccs():
            rounds = (
                self._spec.recursion_depth if callgraph.is_recursive(scc) else 1
            )
            for name in scc:
                self._agg_memo[name] = (
                    CostVector.zero(self.machine.core_types()),
                    {},
                )
            for _ in range(rounds):
                for name in scc:
                    self._loop_memo = {
                        k: v
                        for k, v in self._loop_memo.items()
                        if not k.startswith(f"{name}@")
                    }
                    self._agg_memo[name] = self._aggregate_scope(name, None)

    def _aggregate_proc(self, proc_name: str):
        """(cost, mark rates) of one call to *proc_name*."""
        cached = self._agg_memo.get(proc_name)
        if cached is not None:
            return cached
        self._agg_memo[proc_name] = (
            CostVector.zero(self.machine.core_types()),
            {},
        )
        result = self._aggregate_scope(proc_name, None)
        self._agg_memo[proc_name] = result
        return result

    def _aggregate_loop(self, proc_name: str, loop: Loop):
        """(cost, mark rates) of ONE iteration of *loop*."""
        cached = self._loop_memo.get(loop.uid)
        if cached is not None:
            return cached
        result = self._aggregate_scope(proc_name, loop)
        self._loop_memo[loop.uid] = result
        return result

    def _aggregate_scope(self, proc_name: str, within: Optional[Loop]):
        items, succs, entry_key, freq, _ = self._scope_info(proc_name, within)
        member_blocks = self._scope_members(proc_name, within)
        core_types = self.machine.core_types()
        total = CostVector.zero(core_types)
        rates: dict = {}

        def add_rate(mark, rate: float) -> None:
            if rate > _EPS:
                rates[mark.mark_id] = rates.get(mark.mark_id, 0.0) + rate

        cfg = self._cfgs[proc_name]
        program = self._program
        for key, item in items.items():
            f = freq[key]
            if f <= _EPS:
                continue
            if item.loop is not None:
                loop = item.loop
                trips = self._trip(loop)
                inner_cost, inner_rates = self._aggregate_loop(proc_name, loop)
                total.add(inner_cost, f * trips)
                for mark_id, rate in inner_rates.items():
                    rates[mark_id] = rates.get(mark_id, 0.0) + f * trips * rate
                for mark in self._section_entry_marks(proc_name, loop):
                    add_rate(mark, f)
            else:
                block = cfg.blocks[item.block]
                total.add(self.cost_model.block_vector(block, program), f)
                if block.kind is NodeKind.CALL:
                    callee = block.call_target
                    if callee is not None and callee in program:
                        callee_cost, callee_rates = self._aggregate_proc(callee)
                        total.add(callee_cost, f)
                        for mark_id, rate in callee_rates.items():
                            rates[mark_id] = rates.get(mark_id, 0.0) + f * rate
                        entry = self._proc_entry_mark(callee)
                        if entry is not None:
                            add_rate(entry, f)
                # Marks triggered by edges into this block from inside
                # the scope (edges from outside are the *scope's* entry
                # and belong to the caller's accounting).
                inside_preds = [
                    src for src in cfg.preds(item.block) if src in member_blocks
                ]
                for src in inside_preds:
                    mark = self._mark_on_edge(proc_name, src, item.block)
                    if mark is not None:
                        add_rate(mark, f / max(1, len(cfg.preds(item.block))))
        return total, rates

    # -- emission (expand) -----------------------------------------------------

    def _estimated_steps(self, proc_name: str, loop: Loop, budget: float) -> float:
        """Trace steps emitting *loop* under *budget* will produce.

        A loop with no phase-relevant structure (no child loops, no
        inlinable calls) collapses to a single segment; so does a loop
        whose expansion would blow the budget.
        """
        structured = loop.children or self._loop_contains_inlinable_call(
            proc_name, loop
        )
        if not structured:
            return 1.0
        trips = max(1.0, self._trip(loop))
        child_budget = budget / trips
        inner = sum(
            self._estimated_steps(proc_name, child, child_budget)
            for child in loop.children
        )
        inner += self._inlinable_call_steps(proc_name, loop)
        total = trips * (1.0 + inner)
        if total > budget:
            return 1.0  # Would collapse.
        return total

    def _inlinable_call_steps(self, proc_name: str, loop: Loop) -> float:
        """Rough step count contributed by calls inlined in *loop*'s body."""
        cfg = self._cfgs[proc_name]
        covered = set()
        for child in loop.children:
            covered.update(child.body)
        steps = 0.0
        for b in loop.body:
            if b in covered:
                continue
            block = cfg.blocks[b]
            if block.kind is NodeKind.CALL and block.call_target:
                callee = block.call_target
                if callee in self._program and self._callee_has_loops(callee):
                    outer_loops = sum(
                        1 for l in self._loops[callee] if l.parent is None
                    )
                    steps += 1.0 + outer_loops
        return steps

    def _callee_has_loops(self, callee: str) -> bool:
        return bool(self._loops.get(callee))

    def _emit_proc(self, proc_name: str, depth: int, budget: float) -> list:
        nodes = self._emit_scope(proc_name, None, depth, budget)
        entry = self._proc_entry_mark(proc_name)
        if entry is not None:
            nodes = self._with_entry_marks(nodes, [entry], f"{proc_name}:entry")
        return nodes

    def _with_entry_marks(self, nodes: list, marks: list, uid: str) -> list:
        """Attach marks so they fire once, before *nodes*."""
        ids = tuple(MarkRef(m.mark_id, m.phase_type) for m in marks)
        if nodes and isinstance(nodes[0], Segment) and nodes[0].iterations == 1:
            first = nodes[0]
            nodes[0] = Segment(
                first.uid,
                first.phase_type,
                first.iterations,
                first.cost,
                entry_marks=ids + first.entry_marks,
                embedded=first.embedded,
            )
            return nodes
        marker = Segment(
            uid,
            marks[0].phase_type if marks else None,
            1.0,
            CostVector.zero(self.machine.core_types()),
            entry_marks=ids,
        )
        return [marker] + nodes

    def _emit_scope(
        self, proc_name: str, within: Optional[Loop], depth: int, budget: float
    ) -> list:
        items, succs, entry_key, freq, order = self._scope_info(proc_name, within)
        member_blocks = self._scope_members(proc_name, within)
        cfg = self._cfgs[proc_name]
        program = self._program
        core_types = self.machine.core_types()
        scope_uid = within.uid if within else proc_name

        out: list = []
        pending_cost = CostVector.zero(core_types)
        pending_rates: dict = {}
        pending_entry_marks: list = []
        pending_count = [0]

        def add_pending_rate(mark_id: int, phase_type: int, rate: float) -> None:
            if rate <= _EPS:
                return
            prev = pending_rates.get(mark_id, (phase_type, 0.0))
            pending_rates[mark_id] = (phase_type, prev[1] + rate)

        def flush(tag: str) -> None:
            if pending_count[0] == 0:
                return
            embedded = tuple(
                EmbeddedMark(mid, ptype, rate)
                for mid, (ptype, rate) in sorted(pending_rates.items())
            )
            entry_ids = tuple(
                MarkRef(m.mark_id, m.phase_type) for m in pending_entry_marks
            )
            ptype = (
                pending_entry_marks[0].phase_type if pending_entry_marks else None
            )
            out.append(
                Segment(
                    f"{scope_uid}/{tag}",
                    ptype,
                    1.0,
                    pending_cost.scaled(1.0),
                    entry_marks=entry_ids,
                    embedded=embedded,
                )
            )
            pending_cost.instrs = 0.0
            for name in pending_cost.compute:
                pending_cost.compute[name] = 0.0
                pending_cost.stall[name] = 0.0
            pending_rates.clear()
            pending_entry_marks.clear()
            pending_count[0] = 0

        def fold_block(item: _ScopeItem, f: float) -> None:
            block = cfg.blocks[item.block]
            pending_cost.add(self.cost_model.block_vector(block, program), f)
            pending_count[0] += 1
            inside = [s_ for s_ in cfg.preds(item.block) if s_ in member_blocks]
            for src in inside:
                mark = self._mark_on_edge(proc_name, src, item.block)
                if mark is not None:
                    if f >= EXPAND_FREQ_THRESHOLD and mark not in pending_entry_marks:
                        pending_entry_marks.append(mark)
                    else:
                        add_pending_rate(
                            mark.mark_id,
                            mark.phase_type,
                            f / max(1, len(cfg.preds(item.block))),
                        )

        def fold_call(block, f: float) -> None:
            callee = block.call_target
            callee_cost, callee_rates = self._aggregate_proc(callee)
            pending_cost.add(callee_cost, f)
            pending_count[0] += 1
            for mark_id, rate in callee_rates.items():
                add_pending_rate(mark_id, _mark_phase(self._instrumented, mark_id), f * rate)
            entry = self._proc_entry_mark(callee)
            if entry is not None:
                add_pending_rate(entry.mark_id, entry.phase_type, f)

        def collapse_loop(loop: Loop, f: float) -> None:
            flush("pre")
            trips = self._trip(loop)
            cost, rates = self._aggregate_loop(proc_name, loop)
            embedded = tuple(
                EmbeddedMark(mid, _mark_phase(self._instrumented, mid), rate)
                for mid, rate in sorted(rates.items())
            )
            marks = self._section_entry_marks(proc_name, loop)
            ptype = marks[0].phase_type if marks else None
            out.append(
                Segment(
                    loop.uid,
                    ptype,
                    trips * f,
                    cost,
                    entry_marks=tuple(MarkRef(m.mark_id, m.phase_type) for m in marks),
                    embedded=embedded,
                )
            )

        for key in order:
            item = items[key]
            f = freq[key]
            if f <= _EPS:
                continue
            if item.loop is not None:
                loop = item.loop
                trips = self._trip(loop)
                steps = self._estimated_steps(proc_name, loop, budget)
                expandable = f >= EXPAND_FREQ_THRESHOLD and steps > 1.0
                if expandable:
                    flush("pre")
                    children = self._emit_scope(
                        proc_name, loop, depth, budget / max(1.0, trips)
                    )
                    marks = self._section_entry_marks(proc_name, loop)
                    rep = Repeat(tuple(children), int(round(trips)))
                    if marks:
                        out.extend(
                            self._with_entry_marks([rep], marks, f"{loop.uid}:entry")
                        )
                    else:
                        out.append(rep)
                else:
                    collapse_loop(loop, f)
                continue

            block = cfg.blocks[item.block]
            if (
                block.kind is NodeKind.CALL
                and block.call_target
                and block.call_target in program
                and self._callee_has_loops(block.call_target)
                and f >= EXPAND_FREQ_THRESHOLD
                and depth < self._spec.max_inline_depth
            ):
                pending_cost.add(self.cost_model.block_vector(block, program), f)
                pending_count[0] += 1
                flush("pre")
                out.extend(
                    self._emit_proc(block.call_target, depth + 1, budget)
                )
            elif block.kind is NodeKind.CALL and block.call_target in program:
                pending_cost.add(self.cost_model.block_vector(block, program), f)
                fold_call(block, f)
            else:
                fold_block(item, f)

        flush("post")
        return out

    def _scope_members(self, proc_name: str, within: Optional[Loop]) -> set:
        """Original block indices belonging to a scope."""
        if within is not None:
            return set(within.body)
        return set(range(len(self._cfgs[proc_name].blocks)))

    def _loop_contains_inlinable_call(self, proc_name: str, loop: Loop) -> bool:
        cfg = self._cfgs[proc_name]
        for b in loop.body:
            block = cfg.blocks[b]
            if block.kind is NodeKind.CALL and block.call_target:
                callee = block.call_target
                if callee in self._program and self._callee_has_loops(callee):
                    return True
        return False


def _mark_phase(instrumented, mark_id: int) -> int:
    """Phase type a mark announces (via the instrumented index)."""
    if instrumented is None:
        return 0
    return instrumented.marks[mark_id].phase_type
