"""Flat (vectorized) trace representation for the batched executor.

A :class:`~repro.sim.process.Trace` is a tree of segments and repeats;
the stepped executor walks it one segment-step at a time through a
:class:`~repro.sim.process.TraceCursor`.  This module flattens the tree
once per trace into parallel arrays — one entry per *visit* of a
segment, in exactly the order the cursor would produce — so the
executor can

* index any step in O(1) (plain Python lists for the scalar fast path),
* run whole windows of mark-free steps through one numpy pipeline
  (cumulative elapsed time / remaining budget via ``np.add.accumulate``,
  which accumulates strictly left-to-right and therefore rounds exactly
  like the scalar ``t += elapsed`` / ``budget -= elapsed`` sequence),
* bound the window size cheaply with ``np.searchsorted`` over a
  precomputed cumulative uncontended-cycle array (contention only adds
  cycles, so the uncontended prefix sums give an upper bound on how many
  steps a timeslice can cover).

Flattening is capped (:data:`FLATTEN_LIMIT` steps): traces whose repeat
structure expands beyond the cap — possible only for hand-built
pathological traces, not generator output — keep the tree walker.

The arrays are a pure cache over the trace (cached on
``Trace._flat``, excluded from equality and pickling); every float in
them is taken verbatim from ``Segment.cost_tuple``, so the batched and
stepped executors see bit-identical per-step costs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.instrument.phase_mark import MARK_FIRE_CYCLES
from repro.sim.process import Repeat, Segment, Trace

#: Flattened-step cap: beyond this the tree walker is kept.  Generator
#: traces respect ``BehaviorSpec.segment_budget`` (default 200k) per
#: expanded loop but stay in the hundreds of steps in practice.
FLATTEN_LIMIT = 65_536


class _TooLarge(Exception):
    pass


def _flat_steps(trace: Trace, limit: int) -> list:
    """Segment visits in TraceCursor order, or raise :class:`_TooLarge`.

    Mirrors ``TraceCursor._descend``: zero-iteration segments and
    empty/zero-count repeats are skipped; a repeat's children are
    visited ``count`` times consecutively.
    """
    steps: list = []

    def walk(nodes) -> None:
        for node in nodes:
            if isinstance(node, Segment):
                if node.iterations <= 0:
                    continue
                steps.append(node)
                if len(steps) > limit:
                    raise _TooLarge()
            elif node.count > 0 and node.children:
                for _ in range(node.count):
                    walk(node.children)

    walk(trace.nodes)
    return steps


class FlatTrace:
    """Parallel per-step arrays of one trace (shared, read-only)."""

    __slots__ = (
        "n",
        "segs",
        "iters",
        "instrs",
        "compute",
        "stall",
        "l2",
        "sfrac",
        "ovh",
        "entry_marked",
        "any_marked",
        "emb_multi",
        "next_entry_mark",
        "next_any_mark",
        "np_iters",
        "np_compute",
        "np_stall",
        "np_l2",
        "np_ovh",
        "est_cum",
        "stab",
        "cols",
        "fastinfo",
    )

    def __init__(self, steps: list, ctype_names) -> None:
        n = len(steps)
        self.n = n
        self.segs = steps
        self.iters = [seg.iterations for seg in steps]
        self.instrs = [seg.cost.instrs for seg in steps]
        # Embedded-mark overhead per iteration under a runtime-less
        # simulation (the only mode that batches embedded steps); the
        # identical expression to Simulation._embedded_overhead.
        self.ovh = [
            seg.embedded_rate * MARK_FIRE_CYCLES if seg.embedded else 0.0
            for seg in steps
        ]
        self.entry_marked = [bool(seg.entry_marks) for seg in steps]
        self.any_marked = [
            bool(seg.entry_marks or seg.embedded) for seg in steps
        ]
        # Steps with two or more embedded marks: only these can thrash
        # between decided core types, so only these need the full
        # Simulation._embedded_overhead computation under a runtime.
        self.emb_multi = [len(seg.embedded) > 1 for seg in steps]
        self.next_entry_mark = _next_true(self.entry_marked)
        self.next_any_mark = _next_true(self.any_marked)

        self.compute = {}
        self.stall = {}
        self.l2 = {}
        self.sfrac = {}
        self.np_compute = {}
        self.np_stall = {}
        self.np_l2 = {}
        self.est_cum = {}
        self.stab = {}
        self.cols = {}
        self.fastinfo = {}
        self.np_iters = np.asarray(self.iters, dtype=np.float64)
        self.np_ovh = np.asarray(self.ovh, dtype=np.float64)
        for name in ctype_names:
            comp = [0.0] * n
            stall = [0.0] * n
            l2 = [0.0] * n
            sfrac = [0.0] * n
            for i, seg in enumerate(steps):
                comp[i], stall[i], l2[i], _, sfrac[i] = seg.cost_tuple(name)
            self.compute[name] = comp
            self.stall[name] = stall
            self.l2[name] = l2
            self.sfrac[name] = sfrac
            np_comp = np.asarray(comp, dtype=np.float64)
            np_stall = np.asarray(stall, dtype=np.float64)
            self.np_compute[name] = np_comp
            self.np_stall[name] = np_stall
            self.np_l2[name] = np.asarray(l2, dtype=np.float64)
            # Cumulative uncontended cycles per step (estimate only —
            # used to size batch windows, never for accounting).
            est = np.zeros(n + 1, dtype=np.float64)
            np.cumsum(
                self.np_iters * (np_comp + np_stall + self.np_ovh), out=est[1:]
            )
            self.est_cum[name] = est
            # Stability bounds for the coalescing layer (like est_cum:
            # used only to size macro windows, never for accounting).
            # All in uncontended cycles, which lower-bound real cycles
            # because contention, memory pressure, and mark firings
            # only ever add:
            #   unc[i]   cycles per iteration of step i,
            #   tail[i]  cycles in steps i+1 .. n-1 (to completion).
            unc = (np_comp + np_stall + self.np_ovh).tolist()
            est_l = est.tolist()
            end_cyc = est_l[n]
            tail = [end_cyc - est_l[i + 1] for i in range(n)]
            self.stab[name] = (unc, tail)
            # Everything the executor's quantum prologue needs, bundled
            # behind one dict lookup (the ctype-independent views are
            # duplicated references — free — so the prologue is a
            # single fetch + unpack instead of a dozen lookups).
            self.cols[name] = (
                self.segs,
                self.iters,
                self.instrs,
                self.ovh,
                self.entry_marked,
                self.next_entry_mark,
                self.any_marked,
                self.next_any_mark,
                self.emb_multi,
                comp,
                stall,
                l2,
                sfrac,
                self.np_iters,
                np_comp,
                np_stall,
                self.np_l2[name],
                self.np_ovh,
                est,
            )
            # Row-major per-step tuples for the executor's mid-step
            # resume fast path (the overwhelmingly common quantum
            # shape): it touches exactly one step, so one tuple index +
            # unpack replaces eight column indexings.
            self.fastinfo[name] = list(
                zip(
                    self.iters,
                    self.instrs,
                    self.ovh,
                    self.emb_multi,
                    comp,
                    stall,
                    l2,
                    sfrac,
                )
            )


def _next_true(flags: list) -> list:
    """``out[i]`` = smallest ``j >= i`` with ``flags[j]``, else ``len``."""
    n = len(flags)
    out = [n] * n
    nxt = n
    for i in range(n - 1, -1, -1):
        if flags[i]:
            nxt = i
        out[i] = nxt
    return out


def flat_trace(trace: Trace) -> Optional[FlatTrace]:
    """The cached :class:`FlatTrace` of *trace*, or ``None`` if the
    trace is empty, oversized, or carries no per-core-type costs."""
    flat = trace._flat
    if flat is not None:
        return flat if flat is not _UNFLATTENABLE else None
    try:
        steps = _flat_steps(trace, FLATTEN_LIMIT)
    except _TooLarge:
        trace._flat = _UNFLATTENABLE
        return None
    if not steps:
        trace._flat = _UNFLATTENABLE
        return None
    ctype_names = tuple(steps[0].cost.compute)
    for seg in steps:
        if tuple(seg.cost.compute) != ctype_names:
            trace._flat = _UNFLATTENABLE
            return None
    flat = FlatTrace(steps, ctype_names)
    trace._flat = flat
    return flat


#: Sentinel cached on traces that cannot be flattened.
_UNFLATTENABLE = object()


class FlatCursor:
    """Drop-in replacement for :class:`~repro.sim.process.TraceCursor`
    over a :class:`FlatTrace`.

    Exposes the same public surface (``finished`` / ``current`` /
    ``remaining_iterations`` / ``consume`` / ``at_entry`` /
    ``mark_entry_handled``) with the same float arithmetic and the same
    1e-9 advance tolerance, plus direct state (``pos`` / ``iters_done``)
    the batched executor reads and writes wholesale.
    """

    __slots__ = ("flat", "pos", "iters_done", "at_entry")

    def __init__(self, flat: FlatTrace):
        self.flat = flat
        self.pos = 0
        self.iters_done = 0.0
        self.at_entry = flat.n > 0

    @property
    def finished(self) -> bool:
        return self.pos >= self.flat.n

    @property
    def current(self) -> Optional[Segment]:
        if self.pos >= self.flat.n:
            return None
        return self.flat.segs[self.pos]

    @property
    def remaining_iterations(self) -> float:
        if self.pos >= self.flat.n:
            return 0.0
        return self.flat.iters[self.pos] - self.iters_done

    def consume(self, iterations: float) -> None:
        """Consume *iterations* of the current step (TraceCursor
        semantics, including the 1e-9 tolerances)."""
        if self.pos >= self.flat.n:
            raise SimulationError("consume() on a finished trace")
        remaining = self.flat.iters[self.pos] - self.iters_done
        if iterations < 0 or iterations > remaining + 1e-9:
            raise SimulationError(
                f"cannot consume {iterations} of "
                f"{remaining} remaining iterations"
            )
        self.at_entry = False
        self.iters_done += iterations
        if self.flat.iters[self.pos] - self.iters_done <= 1e-9:
            self.pos += 1
            self.iters_done = 0.0
            self.at_entry = self.pos < self.flat.n

    def mark_entry_handled(self) -> None:
        """Entry marks of the current step were processed."""
        self.at_entry = False


def make_cursor(trace: Trace):
    """A cursor over *trace*: flat when possible, tree walker otherwise."""
    from repro.sim.process import TraceCursor

    flat = flat_trace(trace)
    if flat is None:
        return TraceCursor(trace)
    return FlatCursor(flat)
