"""The discrete-event execution engine.

Runs a set of :class:`~repro.sim.process.SimProcess` jobs on a
:class:`~repro.sim.machine.MachineConfig` under a scheduler, optionally
with a tuning runtime attached (the dynamic half of phase-based tuning).

Execution is quantum-at-a-time per core.  Within a quantum the core
consumes trace segments: phase marks fire at segment entries (and, for
marks embedded in collapsed bodies, at a per-iteration rate), the
runtime may request an affinity change, and a change that excludes the
current core preempts the process and charges the ~1000-cycle migration
cost.  L2-sharing contention inflates the stall portion of a segment's
cycles by a factor proportional to the co-runner's memory intensity.

The runtime attached via ``runtime`` must provide::

    on_mark(process, mark_id, phase_type, core, now) -> MarkAction
    on_process_end(process, now) -> None
    assignment_for(process, phase_type) -> Optional[CoreType]

(See :mod:`repro.tuning.runtime`; ``None`` runs the stock baseline.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import AffinitySyscallError, FaultError, SimulationError
from repro.instrument.phase_mark import MARK_FIRE_CYCLES
from repro.sim.events import EventQueue
from repro.sim.faults import DvfsEvent, FaultInjector, FaultPlan, HotplugEvent
from repro.sim.memory import MemoryModel
from repro.sim.machine import MachineConfig
from repro.sim.process import Segment, SimProcess
from repro.sim.scheduler.affinity import MIGRATION_CYCLES, validate_affinity
from repro.sim.scheduler.base import Scheduler
from repro.sim.scheduler.linux_o1 import LinuxO1Scheduler

#: Floor on simulated progress per scheduling decision, to keep the
#: event count bounded even for pathological zero-cost segments.
_MIN_STEP_S = 1e-9


@dataclass(frozen=True)
class MarkAction:
    """What a runtime asked for after a mark fired."""

    affinity: Optional[frozenset] = None
    extra_cycles: float = 0.0


#: Reused no-op action for mark-free segment entries (the overwhelmingly
#: common case in baseline runs).
_NO_ACTION = MarkAction()

#: Reused actions for runtime-less entries, keyed by entry-mark count —
#: the extra cycles depend only on that count.
_ENTRY_ACTIONS: dict = {}


@dataclass
class SimulationResult:
    """Everything a finished (or stopped) simulation observed.

    Attributes:
        machine: the machine simulated.
        time: simulation end time in seconds.
        completed: processes that ran to completion, in completion order.
        running: processes still live at the end.
        throughput_buckets: instructions committed per 1-second bucket.
        idle_time_by_core: seconds each core spent idle.
    """

    machine: MachineConfig
    time: float
    completed: list = field(default_factory=list)
    running: list = field(default_factory=list)
    throughput_buckets: dict = field(default_factory=dict)
    idle_time_by_core: dict = field(default_factory=dict)

    def instructions_before(self, horizon: float) -> float:
        """Instructions committed in ``[0, horizon)``."""
        return sum(
            count
            for bucket, count in self.throughput_buckets.items()
            if bucket < horizon
        )

    @property
    def all_processes(self) -> list:
        return self.completed + self.running

    def total_switches(self) -> float:
        return sum(p.stats.switches for p in self.all_processes)


class Simulation:
    """One simulation run.

    Args:
        machine: the AMP to simulate.
        scheduler: defaults to a fresh :class:`LinuxO1Scheduler`.
        runtime: tuning runtime, or ``None`` for the stock baseline.
        contention_alpha: strength of L2-sharing bandwidth contention
            (0 disables): a memory-intensive co-runner inflates this
            segment's stall cycles by up to this factor.
        pollution_beta: strength of shared-L2 *pollution*: the fraction
            of this segment's L2-resident accesses a fully streaming
            co-runner turns into DRAM misses.  Pollution is what makes
            random co-location (the stock scheduler) expensive for
            cache-resident code and segregation (phase-based tuning)
            valuable — on the paper's machine each core pair shares one
            L2, so a streaming neighbour evicts a cache-resident
            neighbour's working set.
        on_complete: callback ``(process, now) -> Optional[SimProcess]``;
            a returned process is admitted immediately (job queues).
        faults: optional :class:`~repro.sim.faults.FaultPlan` (or a
            prebuilt :class:`~repro.sim.faults.FaultInjector`).  ``None``
            — and a null plan — leave the run bit-identical to an
            injector-free simulation.
    """

    def __init__(
        self,
        machine: MachineConfig,
        scheduler: Optional[Scheduler] = None,
        runtime=None,
        contention_alpha: float = 0.4,
        pollution_beta: float = 0.6,
        on_complete: Optional[Callable] = None,
        memory: Optional[MemoryModel] = None,
        faults=None,
    ):
        self.machine = machine
        self.scheduler = scheduler or LinuxO1Scheduler()
        self.scheduler.attach(machine, self._wake_core)
        self.runtime = runtime
        self.contention_alpha = contention_alpha
        self.pollution_beta = pollution_beta
        self.memory = memory or MemoryModel()
        self.on_complete = on_complete

        self._events = EventQueue()
        self._now = 0.0
        # Core ids are dense (validated by MachineConfig), so per-core
        # state lives in flat lists: the quantum loop indexes them far
        # more often than anything else touches them.
        n_cores = len(machine)
        self._core_busy_until = [0.0] * n_cores
        self._core_idle = [True] * n_cores
        self._core_idle_since = [0.0] * n_cores
        self._core_stall_frac = [0.0] * n_cores
        self._core_offline = [False] * n_cores
        self._core_freq_scale = [1.0] * n_cores
        # Degradation hooks a hardened runtime may expose; resolved once
        # here so the hot path pays no getattr per mark.
        self._notify_affinity = (
            getattr(runtime, "on_affinity_result", None)
            if runtime is not None
            else None
        )
        self._notify_machine = (
            getattr(runtime, "on_machine_event", None)
            if runtime is not None
            else None
        )
        self.faults: Optional[FaultInjector] = None
        if faults is not None:
            if isinstance(faults, FaultPlan):
                self.faults = FaultInjector(faults, machine)
            elif isinstance(faults, FaultInjector):
                self.faults = faults
            else:
                raise FaultError(
                    f"faults must be a FaultPlan or FaultInjector, "
                    f"got {type(faults).__name__}"
                )
            for event in self.faults.scheduled_events():
                self._events.push(event.time, ("fault", event))
            attach = getattr(runtime, "attach_faults", None)
            if attach is not None:
                attach(self.faults)
        self._l2_neighbors = tuple(
            tuple(machine.l2_neighbors(c.cid)) for c in machine.cores
        )
        self._pollution_penalty = {
            ct.name: self.memory.dram_penalty_cycles(ct) - self.memory.l2_hit_cycles
            for ct in machine.core_types()
        }
        self._result = SimulationResult(
            machine,
            0.0,
            idle_time_by_core={c.cid: 0.0 for c in machine.cores},
        )
        self._live: set = set()

    # -- admission -------------------------------------------------------------

    def add_process(self, proc: SimProcess, at: float = 0.0) -> None:
        """Admit *proc* at time *at*."""
        validate_affinity(proc.affinity, len(self.machine))
        self._events.push(at, ("arrive", proc))

    def _wake_core(self, core_id: int, now: float) -> None:
        if self._core_offline[core_id]:
            return
        if self._core_idle[core_id]:
            self._core_idle[core_id] = False
            self._result.idle_time_by_core[core_id] += max(
                0.0, now - self._core_idle_since[core_id]
            )
            self._events.push(max(now, self._core_busy_until[core_id]),
                              ("core", core_id))

    # -- main loop --------------------------------------------------------------

    def run(self, until: float) -> SimulationResult:
        """Run the simulation until time *until* (seconds)."""
        while self._events:
            time = self._events.peek_time()
            if time is None or time > until:
                break
            time, payload = self._events.pop()
            self._now = max(self._now, time)
            kind = payload[0]
            if kind == "arrive":
                proc = payload[1]
                proc.arrival = time
                self._live.add(proc.pid)
                self.scheduler.enqueue(proc, time)
            elif kind == "core":
                self._core_turn(payload[1], time)
            elif kind == "fault":
                self._apply_fault(payload[1], time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event {kind!r}")

        # Close idle accounting at the horizon.
        for cid, idle in enumerate(self._core_idle):
            if idle:
                self._result.idle_time_by_core[cid] += max(
                    0.0, until - self._core_idle_since[cid]
                )
                self._core_idle_since[cid] = until
        self._now = max(self._now, until)
        self._result.time = self._now
        return self._result

    def _core_turn(self, core_id: int, now: float) -> None:
        if self._core_offline[core_id]:
            self._core_idle[core_id] = True
            self._core_idle_since[core_id] = now
            self._core_stall_frac[core_id] = 0.0
            return
        proc = self.scheduler.pick(core_id, now)
        if proc is None:
            self._core_idle[core_id] = True
            self._core_idle_since[core_id] = now
            self._core_stall_frac[core_id] = 0.0
            return
        end = self._run_quantum(core_id, proc, now)
        self._core_busy_until[core_id] = end
        # _core_stall_frac keeps the last segment's memory intensity so
        # neighbours sharing the L2 see this core's pressure until it
        # idles or runs something else.
        if proc.finished:
            self._finish(proc, end)
        elif core_id in proc.affinity:
            self.scheduler.requeue(proc, core_id, end)
        else:
            self.scheduler.enqueue(proc, end)
        self._events.push(end, ("core", core_id))

    # -- quantum execution -------------------------------------------------------

    def _run_quantum(self, core_id: int, proc: SimProcess, start: float) -> float:
        core = self.machine.cores[core_id]
        ctype = core.ctype
        ctype_name = ctype.name
        # DVFS faults re-clock individual cores; the scale is exactly
        # 1.0 (multiplication is a float no-op) in unfaulted runs.
        freq = ctype.freq_hz * self._core_freq_scale[core_id]
        budget = self.scheduler.timeslice
        t = start
        proc.current_core = core_id

        # Invariant state hoisted out of the inner loop: attribute and
        # dict lookups here execute once per quantum, not once per
        # trace step.
        cursor = proc.cursor
        stats = proc.stats
        runtime = self.runtime
        contention_alpha = self.contention_alpha
        pollution_beta = self.pollution_beta
        neighbors = self._l2_neighbors[core_id]
        core_idle = self._core_idle
        core_stall_frac = self._core_stall_frac
        pollution_penalty = self._pollution_penalty[ctype_name]
        buckets = self._result.throughput_buckets

        while budget > 0 and not cursor.finished:
            seg = cursor.current
            if cursor.at_entry:
                action = self._fire_marks(proc, seg, core, t)
                cost_s = action.extra_cycles / freq
                t += cost_s
                budget -= cost_s
                cursor.at_entry = False
                if action.affinity is not None and action.affinity != proc.affinity:
                    if self.faults is not None and not self._affinity_call_ok(
                        proc, t
                    ):
                        # Injected sched_setaffinity failure: the call
                        # was charged but the mask did not change.
                        continue
                    proc.affinity = validate_affinity(
                        action.affinity, len(self.machine)
                    )
                    if self.faults is not None and self._notify_affinity is not None:
                        self._notify_affinity(proc, True, None, t)
                    if core_id not in proc.affinity:
                        # Core switch: charge migration and preempt.
                        switch_s = MIGRATION_CYCLES / freq
                        stats.switches += 1
                        stats.migrations += 1
                        return t + switch_s
                continue

            compute, stall, l2_resident, seg_instrs, raw_stall_frac = (
                seg.cost_tuple(ctype_name)
            )
            neighbor = 0.0
            for other in neighbors:
                if not core_idle[other]:
                    other_frac = core_stall_frac[other]
                    if other_frac > neighbor:
                        neighbor = other_frac
            if neighbor > 0:
                if contention_alpha > 0 and stall > 0:
                    # Bandwidth contention: two memory-intensive phases
                    # on one L2 (and one front-side bus) slow each other
                    # down.
                    stall *= 1.0 + contention_alpha * neighbor
                if pollution_beta > 0 and l2_resident > 0:
                    # Pollution: a streaming co-runner evicts this
                    # segment's L2-resident lines, turning L2 hits into
                    # DRAM misses.
                    stall += pollution_beta * neighbor * l2_resident * pollution_penalty

            per_iter_overhead = 0.0
            switch_rate = 0.0
            if seg.embedded:
                per_iter_overhead, switch_rate = self._embedded_overhead(
                    proc, seg, runtime
                )

            total_per_iter = compute + stall + per_iter_overhead
            per_iter_s = max(total_per_iter / freq, 1e-18)
            remaining = cursor.remaining_iterations
            fit = budget / per_iter_s
            n = min(remaining, fit)
            if n <= 0:
                n = min(remaining, 1e-9)
            elapsed = n * per_iter_s
            stats.record(ctype_name, n * seg_instrs, n * total_per_iter)
            stats.mark_overhead_cycles += n * per_iter_overhead
            stats.switches += n * switch_rate
            stats.cpu_time += elapsed
            bucket = int(t)
            instrs = n * seg_instrs
            buckets[bucket] = buckets.get(bucket, 0.0) + instrs
            core_stall_frac[core_id] = raw_stall_frac
            cursor.consume(n)
            t += elapsed
            budget -= elapsed
            if budget <= _MIN_STEP_S and not cursor.finished:
                break

        return max(t, start + _MIN_STEP_S)

    def _fire_marks(self, proc: SimProcess, seg: Segment, core, now) -> MarkAction:
        """Fire the segment's entry marks (and give embedded marks their
        once-per-entry runtime visit); return the combined action."""
        n_entry = len(seg.entry_marks)
        fired = n_entry + len(seg.embedded)
        cycles = MARK_FIRE_CYCLES * n_entry
        proc.stats.mark_firings += n_entry
        proc.stats.mark_overhead_cycles += cycles
        if self.runtime is None:
            if not fired:
                return _NO_ACTION
            action = _ENTRY_ACTIONS.get(n_entry)
            if action is None:
                action = _ENTRY_ACTIONS[n_entry] = MarkAction(extra_cycles=cycles)
            return action

        affinity = None
        extra = cycles
        for ref in seg.entry_marks:
            action = self.runtime.on_mark(proc, ref.mark_id, ref.phase_type, core, now)
            extra += action.extra_cycles
            if action.affinity is not None:
                affinity = action.affinity
        for emb in seg.embedded:
            action = self.runtime.on_mark(proc, emb.mark_id, emb.phase_type, core, now)
            extra += action.extra_cycles
            if action.affinity is not None and affinity is None:
                # Embedded marks may steer too, but an entry mark's
                # request (the section actually being entered) wins.
                affinity = action.affinity
        return MarkAction(affinity=affinity, extra_cycles=extra)

    @staticmethod
    def _embedded_overhead(proc: SimProcess, seg: Segment, runtime):
        """(mark overhead cycles, switch rate) per iteration contributed
        by the segment's embedded marks under *runtime*'s current
        decisions.  Runtime-dependent, so recomputed each quantum."""
        overhead = seg.embedded_rate * MARK_FIRE_CYCLES
        switch_rate = 0.0
        if runtime is not None:
            targets = {}
            for emb in seg.embedded:
                target = runtime.assignment_for(proc, emb.phase_type)
                if target is not None:
                    targets[emb.phase_type] = (target.name, emb.rate)
            names = {name for name, _ in targets.values()}
            if len(names) >= 2:
                # Marks of differing decided targets thrash: every
                # firing of a minority-target mark is a switch.
                dominant = max(targets.values(), key=lambda tr: tr[1])[0]
                thrash = sum(
                    rate for name, rate in targets.values() if name != dominant
                )
                switch_rate += thrash
                overhead += thrash * MIGRATION_CYCLES
        return overhead, switch_rate

    # -- fault handling ----------------------------------------------------------

    def _affinity_call_ok(self, proc: SimProcess, now: float) -> bool:
        """Whether this sched_setaffinity call survives injection; on
        failure the runtime is notified so it can degrade."""
        try:
            self.faults.check_affinity_call(proc.pid, now)
        except AffinitySyscallError as exc:
            if self._notify_affinity is not None:
                self._notify_affinity(proc, False, exc, now)
            return False
        return True

    def _apply_fault(self, event, now: float) -> None:
        """Apply one scheduled hotplug/DVFS event, refusing transitions
        that would leave the machine unable to run anything."""
        if isinstance(event, HotplugEvent):
            cid = event.core_id
            if event.online:
                if not self._core_offline[cid]:
                    self.faults.note_skipped(event)
                    return
                self._core_offline[cid] = False
                self.scheduler.set_core_offline(cid, False, now)
                self.faults.note_applied(event)
                self._wake_core(cid, now)
            else:
                online = self._core_offline.count(False)
                if self._core_offline[cid] or online <= 1:
                    # Never take down the last online core.
                    self.faults.note_skipped(event)
                    return
                self._core_offline[cid] = True
                self._core_stall_frac[cid] = 0.0
                self.scheduler.set_core_offline(cid, True, now)
                self.faults.note_applied(event)
        elif isinstance(event, DvfsEvent):
            self._core_freq_scale[event.core_id] = event.scale
            self.faults.note_applied(event)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown fault event {event!r}")
        if self._notify_machine is not None:
            self._notify_machine(event, now, tuple(self._core_freq_scale))

    def _account_throughput(self, t: float, instrs: float) -> None:
        bucket = int(t)
        self._result.throughput_buckets[bucket] = (
            self._result.throughput_buckets.get(bucket, 0.0) + instrs
        )

    def _finish(self, proc: SimProcess, now: float) -> None:
        proc.completion = now
        self._live.discard(proc.pid)
        self._result.completed.append(proc)
        if self.runtime is not None:
            self.runtime.on_process_end(proc, now)
        if self.on_complete is not None:
            replacement = self.on_complete(proc, now)
            if replacement is not None:
                self.add_process(replacement, now)

    @property
    def now(self) -> float:
        return self._now

    def live_processes(self) -> int:
        return len(self._live)

    def snapshot_running(self) -> list:
        """Collect still-running processes into the result (call after
        :meth:`run`)."""
        running = []
        seen = {p.pid for p in self._result.completed}
        for queue_proc in self.scheduler.queued_processes():
            if queue_proc.pid not in seen:
                running.append(queue_proc)
        self._result.running = running
        return running
