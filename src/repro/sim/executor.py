"""The discrete-event execution engine.

Runs a set of :class:`~repro.sim.process.SimProcess` jobs on a
:class:`~repro.sim.machine.MachineConfig` under a scheduler, optionally
with a tuning runtime attached (the dynamic half of phase-based tuning).

Execution is quantum-at-a-time per core.  Within a quantum the core
consumes trace segments: phase marks fire at segment entries (and, for
marks embedded in collapsed bodies, at a per-iteration rate), the
runtime may request an affinity change, and a change that excludes the
current core preempts the process and charges the ~1000-cycle migration
cost.  L2-sharing contention inflates the stall portion of a segment's
cycles by a factor proportional to the co-runner's memory intensity.

The runtime attached via ``runtime`` must provide::

    on_mark(process, mark_id, phase_type, core, now) -> MarkAction
    on_process_end(process, now) -> None
    assignment_for(process, phase_type) -> Optional[CoreType]

(See :mod:`repro.tuning.runtime`; ``None`` runs the stock baseline.)
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from heapq import heappop as _heappop, heappush as _heappush
from typing import Callable, Optional

import numpy as np

from repro.errors import (
    AffinitySyscallError,
    CheckpointError,
    FaultError,
    SimulationError,
)
from repro.instrument.phase_mark import MARK_FIRE_CYCLES
from repro.sim.events import EventQueue
from repro.sim.faults import (
    DvfsEvent,
    FaultInjector,
    FaultPlan,
    HotplugEvent,
    MemoryPressureEvent,
)
from repro.sim.flattrace import FlatCursor
from repro.sim.memory import MemoryModel
from repro.sim.machine import MachineConfig
from repro.sim.process import Segment, SimProcess
from repro.sim.scheduler.affinity import MIGRATION_CYCLES, validate_affinity
from repro.sim.scheduler.base import Scheduler
from repro.sim.scheduler.linux_o1 import LinuxO1Scheduler
from repro.taxonomy import cancelled_reason
from repro.telemetry.context import current_recorder
from repro.telemetry.events import PROC_TID_BASE

#: Floor on simulated progress per scheduling decision, to keep the
#: event count bounded even for pathological zero-cost segments.
_MIN_STEP_S = 1e-9

#: Version stamp of Simulation.snapshot_state dicts; bump on any layout
#: change so stale checkpoints are rejected instead of misrestored.
_SNAPSHOT_VERSION = 2

#: Environment kill-switch for macro-quantum coalescing (the CLI's
#: --no-coalesce flag sets it, and pool workers inherit it): any
#: non-empty value forces ``coalesce=False`` wherever the Simulation
#: constructor is left to pick the default.
NO_COALESCE_ENV = "REPRO_NO_COALESCE"

#: Environment kill-switch for segment-batched quantum execution: any
#: non-empty value forces ``batched=False`` (the stepped reference
#: path) wherever the constructor is left to pick the default.
NO_BATCH_ENV = "REPRO_NO_BATCH"

#: Commit-cache miss sentinel (``None`` is a cached negative result).
_MISS = object()

#: Minimum step count before _run_quantum_flat's numpy window engages.
#: Below this the scalar per-step loop is faster (the batch pays ~15
#: small-array numpy calls of fixed overhead); both paths commit
#: bit-identical floats (np.add.accumulate folds left-to-right like the
#: scalar ``t += elapsed`` chain and the elementwise per-step
#: expressions round identically), so the threshold is purely a speed
#: knob — any value picks the same numbers, just via different code.
_NP_WINDOW_MIN = 10


@dataclass(frozen=True)
class MarkAction:
    """What a runtime asked for after a mark fired."""

    affinity: Optional[frozenset] = None
    extra_cycles: float = 0.0


#: Reused no-op action for mark-free segment entries (the overwhelmingly
#: common case in baseline runs).
_NO_ACTION = MarkAction()

#: Reused actions for runtime-less entries, keyed by entry-mark count —
#: the extra cycles depend only on that count.
_ENTRY_ACTIONS: dict = {}


@dataclass
class SimulationResult:
    """Everything a finished (or stopped) simulation observed.

    Attributes:
        machine: the machine simulated.
        time: simulation end time in seconds.
        completed: processes that ran to completion, in completion order.
        running: processes still live at the end.
        cancelled: processes removed by cancellation events, in
            cancellation order (open-system departures; empty for
            closed runs).  Cancelled processes never appear in
            ``completed`` or ``running``.
        throughput_buckets: instructions committed per 1-second bucket.
        idle_time_by_core: seconds each core spent idle.
    """

    machine: MachineConfig
    time: float
    completed: list = field(default_factory=list)
    running: list = field(default_factory=list)
    throughput_buckets: dict = field(default_factory=dict)
    idle_time_by_core: dict = field(default_factory=dict)
    cancelled: list = field(default_factory=list)

    def instructions_before(self, horizon: float) -> float:
        """Instructions committed in ``[0, horizon)``."""
        return sum(
            count
            for bucket, count in self.throughput_buckets.items()
            if bucket < horizon
        )

    @property
    def all_processes(self) -> list:
        return self.completed + self.running

    def total_switches(self) -> float:
        return sum(p.stats.switches for p in self.all_processes)


class Simulation:
    """One simulation run.

    Args:
        machine: the AMP to simulate.
        scheduler: defaults to a fresh :class:`LinuxO1Scheduler`.
        runtime: tuning runtime, or ``None`` for the stock baseline.
        contention_alpha: strength of L2-sharing bandwidth contention
            (0 disables): a memory-intensive co-runner inflates this
            segment's stall cycles by up to this factor.
        pollution_beta: strength of shared-L2 *pollution*: the fraction
            of this segment's L2-resident accesses a fully streaming
            co-runner turns into DRAM misses.  Pollution is what makes
            random co-location (the stock scheduler) expensive for
            cache-resident code and segregation (phase-based tuning)
            valuable — on the paper's machine each core pair shares one
            L2, so a streaming neighbour evicts a cache-resident
            neighbour's working set.
        on_complete: callback ``(process, now) -> Optional[SimProcess]``;
            a returned process is admitted immediately (job queues).
        on_cancel: callback ``(process, now) -> None`` fired when a
            :meth:`cancel_process` event lands; *process* is the
            removed process, or ``None`` when the cancellation missed
            (the job had already completed, never arrived, or the
            scheduler could not remove it).  Open-system engines use
            this for ledger bookkeeping; ``None`` (the default) costs
            nothing.
        faults: optional :class:`~repro.sim.faults.FaultPlan` (or a
            prebuilt :class:`~repro.sim.faults.FaultInjector`).  ``None``
            — and a null plan — leave the run bit-identical to an
            injector-free simulation.
    """

    def __init__(
        self,
        machine: MachineConfig,
        scheduler: Optional[Scheduler] = None,
        runtime=None,
        contention_alpha: float = 0.4,
        pollution_beta: float = 0.6,
        on_complete: Optional[Callable] = None,
        memory: Optional[MemoryModel] = None,
        faults=None,
        batched: Optional[bool] = None,
        coalesce: Optional[bool] = None,
        on_cancel: Optional[Callable] = None,
    ):
        self.machine = machine
        self.scheduler = scheduler or LinuxO1Scheduler()
        self.scheduler.attach(machine, self._wake_core)
        self.runtime = runtime
        self.contention_alpha = contention_alpha
        self.pollution_beta = pollution_beta
        self.memory = memory or MemoryModel()
        self.on_complete = on_complete
        self.on_cancel = on_cancel
        #: Segment-batched quantum execution over flat traces; disable
        #: to force the stepped reference path (golden-equality tests).
        #: ``None`` resolves the REPRO_NO_BATCH kill-switch, the
        #: environment form of the same escape hatch (benchmarks and CI
        #: drive whole processes through the stepped path with it).
        if batched is None:
            batched = not os.environ.get(NO_BATCH_ENV)
        self.batched = batched
        #: Macro-quantum coalescing: runs of provably-stable core turns
        #: execute through a mini event loop with cached per-quantum
        #: commits (see _coalesce_horizon/_run_window).  ``None``
        #: resolves the REPRO_NO_COALESCE kill-switch; the results are
        #: pinned bit-identical to the per-quantum paths either way.
        if coalesce is None:
            coalesce = not os.environ.get(NO_COALESCE_ENV)
        self.coalesce = coalesce

        self._events = EventQueue()
        self._now = 0.0
        # Core ids are dense (validated by MachineConfig), so per-core
        # state lives in flat lists: the quantum loop indexes them far
        # more often than anything else touches them.
        n_cores = len(machine)
        self._core_busy_until = [0.0] * n_cores
        self._core_idle = [True] * n_cores
        self._core_idle_since = [0.0] * n_cores
        self._core_stall_frac = [0.0] * n_cores
        self._core_offline = [False] * n_cores
        self._core_freq_scale = [1.0] * n_cores
        # Effective-L2 shrink per core (memory-pressure faults); 0.0
        # contributes nothing to the stall math.
        self._core_mem_pressure = [0.0] * n_cores
        # Degradation hooks a hardened runtime may expose; resolved once
        # here so the hot path pays no getattr per mark.
        self._notify_affinity = (
            getattr(runtime, "on_affinity_result", None)
            if runtime is not None
            else None
        )
        self._notify_machine = (
            getattr(runtime, "on_machine_event", None)
            if runtime is not None
            else None
        )
        self.faults: Optional[FaultInjector] = None
        if faults is not None:
            if isinstance(faults, FaultPlan):
                self.faults = FaultInjector(faults, machine)
            elif isinstance(faults, FaultInjector):
                self.faults = faults
            else:
                raise FaultError(
                    f"faults must be a FaultPlan or FaultInjector, "
                    f"got {type(faults).__name__}"
                )
            for event in self.faults.scheduled_events():
                self._events.push(event.time, ("fault", event))
            attach = getattr(runtime, "attach_faults", None)
            if attach is not None:
                attach(self.faults)
        # With memory-pressure events in play, _core_turn's inline
        # fast-commit (which omits the pressure term) must stand aside
        # for the full quantum paths.
        self._mem_pressure_possible = (
            self.faults is not None and bool(self.faults.plan.mem_pressure)
        )
        self._l2_neighbors = tuple(
            tuple(machine.l2_neighbors(c.cid)) for c in machine.cores
        )
        self._pollution_penalty = {
            ct.name: self.memory.dram_penalty_cycles(ct) - self.memory.l2_hit_cycles
            for ct in machine.core_types()
        }
        # Per-core execution context, fetched with one index per quantum
        # (everything here is immutable for the life of the simulation;
        # only the DVFS frequency scale stays in its own mutable list).
        # The last slot is the sole L2 neighbour's id when there is
        # exactly one (the paper's pairwise-shared-L2 machines), else -1.
        self._core_exec = tuple(
            (
                core,
                core.ctype.name,
                core.ctype.freq_hz,
                self._l2_neighbors[core.cid],
                self._pollution_penalty[core.ctype.name],
                self._l2_neighbors[core.cid][0]
                if len(self._l2_neighbors[core.cid]) == 1
                else -1,
            )
            for core in machine.cores
        )
        # Effective per-core frequency (base × DVFS scale), kept in sync
        # by _apply_fault; freq_hz * 1.0 is exact, so the cached value
        # always equals the per-quantum product it replaces.
        self._core_freq_eff = [
            core.ctype.freq_hz * 1.0 for core in machine.cores
        ]
        self._core_events = tuple(("core", core.cid) for core in machine.cores)
        self._timeslice = self.scheduler.timeslice
        self._result = SimulationResult(
            machine,
            0.0,
            idle_time_by_core={c.cid: 0.0 for c in machine.cores},
        )
        self._live: set = set()
        # Direct access to the stock scheduler's runqueues lets the
        # per-quantum turn skip the pick/requeue call overhead; any
        # subclass (which may override those methods) keeps the full
        # calls.
        self._sched_queues = (
            self.scheduler._queues
            if type(self.scheduler) is LinuxO1Scheduler
            else None
        )
        # Coalescing machinery.  The commit cache maps one pure
        # mid-step quantum shape — (core, flat-trace identity, step,
        # neighbour stall fraction) — to its fully computed commit;
        # _apply_fault clears it (DVFS/pressure change the per-core
        # cost parameters it bakes in).  The stability floor caches an
        # absolute lower bound on the next process completion;
        # execution only pushes completions later, so it stays valid
        # until a fault or arrival resets it.  The window context
        # bundles each core's immutable turn state behind one index.
        self._commit_cache: dict = {}
        self._stability_floor = -math.inf
        # When a window probe refuses, the time before which probing
        # again is provably useless (the refusal's bound must pass
        # first); the run loop folds it into its probe backoff.  Floor
        # refusals additionally back off exponentially (_probe_backoff
        # doubles, resets on the next opened window): under heavy
        # churn the completion floor is conservative by construction —
        # queue wait is not modeled, so with hundreds of queued
        # processes some bound is nearly always imminent — and probing
        # every quantum would pay the O(processes) floor recompute
        # just to be refused again.
        self._probe_defer = 0.0
        self._probe_backoff = 1.0
        self._window_ctx = None
        if self._sched_queues is not None:
            self._window_ctx = [
                (
                    self._sched_queues[cid],
                    exec_info[1],
                    exec_info[5],
                    exec_info[3],
                    exec_info[4],
                )
                for cid, exec_info in enumerate(self._core_exec)
            ]
        self._coalescing = (
            self.coalesce and batched and self._sched_queues is not None
        )
        # Everything the quantum fast path reads from self, bundled so
        # one attribute fetch + unpack replaces nine lookups.  Mutable
        # members (lists/dicts) are shared references, so updates via
        # self.* stay visible.
        self._hot = (
            self._core_exec,
            self._core_freq_eff,
            self._timeslice,
            self.runtime,
            self._core_idle,
            self._core_stall_frac,
            self.contention_alpha,
            self.pollution_beta,
            self._result.throughput_buckets,
        )
        # Telemetry: the recorder and its category gates are resolved
        # once here, so with the null recorder (the default) every hook
        # point below is a single falsy attribute check and an untraced
        # run executes exactly the float operations it always did.
        rec = current_recorder()
        tr = rec if rec.enabled else None
        self._tr = tr
        if tr is not None:
            self._tr_run = tr.begin_run(f"sim:{machine.name}", clock="sim")
            # Metrics as of construction: snapshot_state ships only the
            # delta beyond this, i.e. what this run itself recorded.
            self._tr_metrics_base = dict(tr.metrics)
            self._tr_exec = tr.wants("exec")
            self._tr_phase = tr.wants("phase")
            self._tr_quantum = tr.wants("quantum")
            self._tr_fault = tr.wants("fault")
            self._tr_opensys = tr.wants("opensys")
            self.scheduler.telemetry = tr if tr.wants("sched") else None
            attach_tr = getattr(runtime, "attach_telemetry", None)
            if attach_tr is not None:
                attach_tr(tr, self._tr_run)
        else:
            self._tr_run = 0
            self._tr_exec = self._tr_phase = False
            self._tr_quantum = self._tr_fault = False
            self._tr_opensys = False

    # -- admission -------------------------------------------------------------

    def add_process(self, proc: SimProcess, at: float = 0.0) -> None:
        """Admit *proc* at time *at*."""
        validate_affinity(proc.affinity, len(self.machine))
        self._events.push(at, ("arrive", proc))

    def cancel_process(self, pid: int, at: float) -> None:
        """Schedule cancellation of process *pid* at time *at*.

        The cancellation enters the event heap like an arrival or a
        fault, so it composes with macro-quantum coalescing the same
        way: a pending cancellation bounds any stability window instead
        of breaking it (DESIGN.md §12/§15).  When it fires, a job still
        waiting in a runqueue is removed and torn down cleanly (runtime
        notified, ledger updated); a job that already completed — or
        one mid-quantum under a scheduler that cannot remove it — makes
        the cancellation a miss, reported to ``on_cancel`` as ``None``.
        Mid-run cancellations therefore take effect at the end of the
        quantum in flight at *at*, which is when the process returns to
        a runqueue.
        """
        self._events.push(at, ("cancel", pid))

    def _wake_core(self, core_id: int, now: float) -> None:
        if self._core_offline[core_id]:
            return
        if self._core_idle[core_id]:
            self._core_idle[core_id] = False
            self._result.idle_time_by_core[core_id] += max(
                0.0, now - self._core_idle_since[core_id]
            )
            self._events.push(max(now, self._core_busy_until[core_id]),
                              ("core", core_id))

    # -- checkpoint/resume ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """A picklable image of everything :meth:`run` mutates.

        Pure read — no RNG draws, no state mutation — so taking
        snapshots never perturbs the run: a simulation run with
        checkpointing enabled stays bit-identical to one without.

        The dict must be pickled in one piece (``save_checkpoint`` does
        this): the processes referenced from the event heap, the
        scheduler runqueues, and the result lists are the *same*
        objects, and a single pickle preserves that sharing.
        """
        runtime = self.runtime
        runtime_state = None
        if runtime is not None:
            snap = getattr(runtime, "snapshot_state", None)
            if snap is not None:
                runtime_state = snap()
        telemetry = None
        tr = self._tr
        if tr is not None:
            run = self._tr_run
            # Only this run's share of the recorder: its own events, and
            # the metrics delta since construction.  A shared recorder's
            # earlier runs (and anything recorded before this simulation
            # existed, e.g. pipeline-cache counters) must not travel, or
            # restoring would double-count them.
            base = self._tr_metrics_base
            telemetry = {
                "run_info": tr.runs.get(run),
                "events": [ev for ev in tr.events if ev[3] == run],
                "metrics": {
                    name: value - base.get(name, 0.0)
                    for name, value in tr.metrics.items()
                    if value != base.get(name, 0.0)
                },
            }
        return {
            "version": _SNAPSHOT_VERSION,
            "machine": self.machine,
            "scheduler": self.scheduler,
            "scheduler_state": self.scheduler.snapshot_state(),
            "runtime": runtime,
            "runtime_state": runtime_state,
            "faults": self.faults,
            "faults_state": (
                self.faults.snapshot_state() if self.faults is not None else None
            ),
            "memory": self.memory,
            "on_complete": self.on_complete,
            # Additive key: snapshots predating the open-system engine
            # restore with .get() to None, which is exactly what closed
            # runs (the only runs that existed) carried.
            "on_cancel": self.on_cancel,
            "contention_alpha": self.contention_alpha,
            "pollution_beta": self.pollution_beta,
            "batched": self.batched,
            "coalesce": self.coalesce,
            "now": self._now,
            "heap": list(self._events._heap),
            "seq": self._events._seq,
            "live": sorted(self._live),
            "result": self._result,
            "core_state": {
                "busy_until": list(self._core_busy_until),
                "idle": list(self._core_idle),
                "idle_since": list(self._core_idle_since),
                "stall_frac": list(self._core_stall_frac),
                "offline": list(self._core_offline),
                "freq_scale": list(self._core_freq_scale),
                "mem_pressure": list(self._core_mem_pressure),
                "freq_eff": list(self._core_freq_eff),
            },
            "telemetry": telemetry,
        }

    @classmethod
    def from_snapshot(cls, state: dict) -> "Simulation":
        """Rebuild a live simulation from a :meth:`snapshot_state` dict
        (typically via :func:`repro.sim.checkpoint.load_checkpoint`).

        The snapshot's own scheduler, runtime, and fault injector are
        re-wired into the new instance, so ``from_snapshot(s).run(t)``
        continues exactly where the snapshot was taken.
        """
        if not isinstance(state, dict) or state.get("version") != _SNAPSHOT_VERSION:
            raise CheckpointError(
                "snapshot version mismatch: expected "
                f"{_SNAPSHOT_VERSION}, got "
                f"{state.get('version') if isinstance(state, dict) else state!r}"
            )
        sim = cls(
            state["machine"],
            scheduler=state["scheduler"],
            runtime=state["runtime"],
            contention_alpha=state["contention_alpha"],
            pollution_beta=state["pollution_beta"],
            on_complete=state["on_complete"],
            on_cancel=state.get("on_cancel"),
            memory=state["memory"],
            faults=state["faults"],
            batched=state["batched"],
            # The kill-switch wins over the snapshot's mode so a run
            # resumed under --no-coalesce really is uncoalesced — the
            # whole point of a field-bisection flag.
            coalesce=(
                False
                if os.environ.get(NO_COALESCE_ENV)
                else state["coalesce"]
            ),
        )
        sim.restore_state(state)
        return sim

    def restore_state(self, state: dict) -> None:
        """Install a :meth:`snapshot_state` image into this simulation.

        The constructor has already attached the scheduler (fresh empty
        runqueues, waker bound) and begun a telemetry run; this replaces
        every piece of dynamic state with the snapshot's and rebuilds
        the derived hot-path caches around it.
        """
        if not isinstance(state, dict) or state.get("version") != _SNAPSHOT_VERSION:
            raise CheckpointError(
                "snapshot version mismatch: expected "
                f"{_SNAPSHOT_VERSION}, got "
                f"{state.get('version') if isinstance(state, dict) else state!r}"
            )
        machine = state["machine"]
        if len(machine) != len(self.machine) or machine.name != self.machine.name:
            raise CheckpointError(
                f"snapshot was taken on machine {machine.name!r} "
                f"({len(machine)} cores); cannot restore into "
                f"{self.machine.name!r} ({len(self.machine)} cores)"
            )
        core = state["core_state"]
        self._now = state["now"]
        self._events = EventQueue()
        self._events._heap = list(state["heap"])
        self._events._seq = state["seq"]
        self._live = set(state["live"])
        self._result = state["result"]
        self._core_busy_until = list(core["busy_until"])
        self._core_idle = list(core["idle"])
        self._core_idle_since = list(core["idle_since"])
        self._core_stall_frac = list(core["stall_frac"])
        self._core_offline = list(core["offline"])
        self._core_freq_scale = list(core["freq_scale"])
        self._core_mem_pressure = list(core["mem_pressure"])
        self._core_freq_eff = list(core["freq_eff"])
        self.on_complete = state["on_complete"]
        self.on_cancel = state.get("on_cancel")
        self.scheduler.restore_state(state["scheduler_state"])
        if self.faults is not None and state["faults_state"] is not None:
            self.faults.restore_state(state["faults_state"])
        runtime = self.runtime
        if runtime is not None and state["runtime_state"] is not None:
            restore = getattr(runtime, "restore_state", None)
            if restore is not None:
                restore(state["runtime_state"])
        # Derived coalescing caches never travel: the commit cache
        # bakes in restored per-core parameters and the floor must be
        # recomputed against the restored queues.
        self._commit_cache = {}
        self._stability_floor = -math.inf
        # Rebuild the derived hot-path bundle around the restored lists
        # (_sched_queues still aliases scheduler._queues: restore_state
        # refills the attach()-built deques in place).
        self._hot = (
            self._core_exec,
            self._core_freq_eff,
            self._timeslice,
            self.runtime,
            self._core_idle,
            self._core_stall_frac,
            self.contention_alpha,
            self.pollution_beta,
            self._result.throughput_buckets,
        )
        tel = state.get("telemetry")
        tr = self._tr
        if tr is not None and tel is not None:
            # Rebase the snapshot's events onto the run id the fresh
            # constructor allocated: on a new recorder both are 0 and
            # the replayed stream is bit-identical; on a shared recorder
            # the resumed run appends under its own id, like any run.
            run = self._tr_run
            if tel["run_info"] is not None:
                tr.runs[run] = tel["run_info"]
            tr.events.extend(
                (ph, cat, name, run, ts, tid, value, args)
                for ph, cat, name, _, ts, tid, value, args in tel["events"]
            )
            metrics = tr.metrics
            for name, value in tel["metrics"].items():
                metrics[name] = metrics.get(name, 0.0) + value

    # -- main loop --------------------------------------------------------------

    def run(self, until: float, checkpoint=None) -> SimulationResult:
        """Run the simulation until time *until* (seconds).

        Args:
            until: horizon in simulated seconds.
            checkpoint: optional
                :class:`~repro.sim.checkpoint.CheckpointManager` (or a
                directory path to build one with default cadence).
                Snapshots are taken between events whenever sim time
                crosses the manager's interval grid; they never change
                what the run computes.
        """
        ckpt = checkpoint
        if ckpt is not None and isinstance(ckpt, (str, os.PathLike)):
            from repro.sim.checkpoint import CheckpointManager

            ckpt = CheckpointManager(ckpt)
        ckpt_due = ckpt.first_due(self._now) if ckpt is not None else float("inf")
        # The event loop runs once per scheduling quantum — hundreds of
        # thousands of iterations per experiment — so it reads the heap
        # directly instead of going through the EventQueue wrappers
        # (pops are time-ordered, so _now only ever moves forward).
        events = self._events
        heap = events._heap
        heappop = _heappop
        core_turn = self._core_turn
        coalescing = self._coalescing
        timeslice = self._timeslice
        # Failed window attempts back off one timeslice so runs that
        # are never coalescible (short horizons, unflattenable traces)
        # pay the probe at most once per quantum, not once per event —
        # and further, to whatever bound caused the refusal (an
        # imminent completion floor, a pending arrival or fault), so
        # churning workloads do not recompute the stability floor once
        # per quantum just to be refused by the same bound again.
        macro_after = -math.inf
        while heap:
            entry = heap[0]
            time = entry[0]
            if time > until:
                break
            if time >= ckpt_due:
                # Between events every invariant holds, so this is the
                # one safe instant to freeze the run.  A crash after
                # this point loses at most [ckpt_due, crash) of work.
                ckpt.save(self, time)
                ckpt_due = ckpt.next_due
            if coalescing and time >= macro_after and entry[2][0] == "core":
                horizon = self._coalesce_horizon(time, ckpt_due)
                if horizon is not None and self._run_window(horizon, until):
                    continue
                macro_after = time + timeslice
                if self._probe_defer > macro_after:
                    macro_after = self._probe_defer
            time, _, payload = heappop(heap)
            if time > self._now:
                self._now = time
            kind = payload[0]
            if kind == "core":
                core_turn(payload[1], time)
            elif kind == "arrive":
                proc = payload[1]
                proc.arrival = time
                self._live.add(proc.pid)
                if self._tr_exec:
                    self._tr.instant(
                        "exec",
                        "start",
                        time,
                        tid=PROC_TID_BASE + proc.pid,
                        args={"pid": proc.pid, "name": proc.name},
                        run=self._tr_run,
                    )
                self.scheduler.enqueue(proc, time)
                if self._tr_opensys:
                    self._tr.instant(
                        "opensys",
                        "arrival",
                        time,
                        tid=PROC_TID_BASE + proc.pid,
                        args={"pid": proc.pid, "name": proc.name},
                        run=self._tr_run,
                    )
                    self._tr.counter(
                        "opensys",
                        "jobs_in_system",
                        time,
                        float(len(self._live)),
                        run=self._tr_run,
                    )
                # The new process's completion/mark bounds are not in
                # the cached stability floor.
                self._stability_floor = -math.inf
            elif kind == "cancel":
                self._do_cancel(payload[1], time)
            elif kind == "fault":
                self._apply_fault(payload[1], time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event {kind!r}")

        # Close idle accounting at the horizon.
        for cid, idle in enumerate(self._core_idle):
            if idle:
                self._result.idle_time_by_core[cid] += max(
                    0.0, until - self._core_idle_since[cid]
                )
                self._core_idle_since[cid] = until
        self._now = max(self._now, until)
        self._result.time = self._now
        if self._tr_exec:
            for cid in sorted(self._result.idle_time_by_core):
                self._tr.counter(
                    "exec",
                    "idle",
                    self._now,
                    self._result.idle_time_by_core[cid],
                    tid=cid,
                    run=self._tr_run,
                )
        return self._result

    def _core_turn(self, core_id: int, now: float) -> None:
        if self._core_offline[core_id]:
            self._core_idle[core_id] = True
            self._core_idle_since[core_id] = now
            self._core_stall_frac[core_id] = 0.0
            return
        sq = self._sched_queues
        if sq is not None:
            # Stock-scheduler pick, inlined (this core is online — the
            # executor checked — and the offline sets stay in sync).
            sched = self.scheduler
            if now - sched._last_balance >= sched.balance_interval:
                sched._maybe_balance(now)
            queue = sq[core_id]
            proc = queue.popleft() if queue else sched._steal(core_id, now)
        else:
            proc = self.scheduler.pick(core_id, now)
        if proc is None:
            self._core_idle[core_id] = True
            self._core_idle_since[core_id] = now
            self._core_stall_frac[core_id] = 0.0
            return
        # The _run_quantum dispatch and the proc.finished property chain
        # are inlined here: both run once per quantum.
        cursor = proc.cursor
        if self.batched and cursor.__class__ is FlatCursor:
            # Most quanta resume mid-step and end inside that same step.
            # Decide that *before* mutating anything (same float ops as
            # _run_quantum_flat): if so, commit the step right here and
            # skip the call; any other shape delegates with state
            # untouched.
            end = None
            finished = False
            done = cursor.iters_done
            if (
                done > 0.0
                and not cursor.at_entry
                and not self._mem_pressure_possible
            ):
                (
                    core_exec,
                    freq_eff,
                    timeslice,
                    runtime,
                    core_idle,
                    core_stall_frac,
                    contention_alpha,
                    pollution_beta,
                    buckets,
                ) = self._hot
                _, ctype_name, _, neighbors, pollution_penalty, nb = (
                    core_exec[core_id]
                )
                flat = cursor.flat
                pos = cursor.pos
                (
                    remaining_full,
                    seg_instrs,
                    per_iter_overhead,
                    emb_p,
                    compute,
                    stall,
                    l2_resident,
                    raw_stall_frac,
                ) = flat.fastinfo[ctype_name][pos]
                if runtime is None or not emb_p:
                    if nb >= 0:
                        neighbor = (
                            0.0 if core_idle[nb] else core_stall_frac[nb]
                        )
                    else:
                        neighbor = 0.0
                        for other in neighbors:
                            if not core_idle[other]:
                                other_frac = core_stall_frac[other]
                                if other_frac > neighbor:
                                    neighbor = other_frac
                    if neighbor > 0:
                        if contention_alpha > 0 and stall > 0:
                            stall *= 1.0 + contention_alpha * neighbor
                        if pollution_beta > 0 and l2_resident > 0:
                            stall += (
                                pollution_beta
                                * neighbor
                                * l2_resident
                                * pollution_penalty
                            )
                    total_per_iter = compute + stall + per_iter_overhead
                    per_iter_s = total_per_iter / freq_eff[core_id]
                    if per_iter_s < 1e-18:
                        per_iter_s = 1e-18
                    remaining = remaining_full - done
                    fit = timeslice / per_iter_s
                    n = remaining if remaining <= fit else fit
                    if n > 0:
                        elapsed = n * per_iter_s
                        new_done = done + n
                        budget = timeslice - elapsed
                        advanced = remaining_full - new_done <= 1e-9
                        if budget <= _MIN_STEP_S or (
                            advanced and pos + 1 >= flat.n
                        ):
                            proc.current_core = core_id
                            instrs = n * seg_instrs
                            stats = proc.stats
                            stats.instructions += instrs
                            cycles_by_type = stats.cycles_by_type
                            try:
                                cycles_by_type[ctype_name] += (
                                    n * total_per_iter
                                )
                            except KeyError:
                                cycles_by_type[ctype_name] = (
                                    n * total_per_iter
                                )
                            instrs_by_type = stats.instrs_by_type
                            try:
                                instrs_by_type[ctype_name] += instrs
                            except KeyError:
                                instrs_by_type[ctype_name] = instrs
                            stats.mark_overhead_cycles += (
                                n * per_iter_overhead
                            )
                            stats.cpu_time += elapsed
                            bucket = int(now)
                            try:
                                buckets[bucket] += instrs
                            except KeyError:
                                buckets[bucket] = instrs
                            core_stall_frac[core_id] = raw_stall_frac
                            if advanced:
                                pos += 1
                                cursor.pos = pos
                                cursor.iters_done = 0.0
                                cursor.at_entry = pos < flat.n
                                finished = pos >= flat.n
                            else:
                                cursor.iters_done = new_done
                            t = now + elapsed
                            floor = now + _MIN_STEP_S
                            end = t if t > floor else floor
            if end is None:
                end = self._run_quantum_flat(core_id, proc, now, cursor)
                finished = cursor.pos >= cursor.flat.n
        else:
            end = self._run_quantum_stepped(core_id, proc, now)
            finished = cursor.finished
        self._core_busy_until[core_id] = end
        if self._tr_quantum:
            self._tr.span(
                "quantum",
                "q",
                now,
                end - now,
                tid=core_id,
                args={"pid": proc.pid},
                run=self._tr_run,
            )
        # _core_stall_frac keeps the last segment's memory intensity so
        # neighbours sharing the L2 see this core's pressure until it
        # idles or runs something else.
        if finished:
            self._finish(proc, end)
        elif core_id in proc.affinity:
            if sq is not None and core_id not in self.scheduler._offline:
                # Stock-scheduler requeue, inlined: the waker is a no-op
                # for a core that is mid-turn (never idle), leaving just
                # the runqueue append.
                sq[core_id].append(proc)
            else:
                self.scheduler.requeue(proc, core_id, end)
        else:
            self.scheduler.enqueue(proc, end)
        events = self._events
        _heappush(events._heap, (end, events._seq, self._core_events[core_id]))
        events._seq += 1

    # -- macro-quantum coalescing ------------------------------------------------
    #
    # The outer loop pays one heap event per core per quantum.  When the
    # schedule is stable over a window [now, T) — every pending event is
    # an online core's turn on a non-empty runqueue, and no fault,
    # arrival, or checkpoint grid point lands before T — every core turn
    # in the window is the same plain round-robin pop/run/requeue, so
    # the turns run through a tight mini event loop instead.  The mini
    # loop replays the outer loop's exact event order (real heap tuples,
    # continued sequence numbers) and the exact per-turn float
    # operations, so everything it commits — stats, stall fractions,
    # buckets, telemetry quantum spans — is bit-identical to stepping.
    # Soft events inside the window (balance ticks, runtime marks,
    # migrations, completions) execute through the stepped code paths in
    # place; the window bails back to the outer loop only when the event
    # set stops being pure core turns (an arrival admitted, an idle core
    # woken, a runqueue drained).

    def _coalesce_horizon(self, now: float, ckpt_due: float):
        """The stable window end ``T`` for a macro commit starting at
        *now*, or ``None`` when no profitable window exists.

        A window is admissible when every pending event in the heap is
        an online core's turn with a non-empty runqueue (any pending
        arrival or fault event instead caps ``T`` at its time), the
        scheduler vouches for a nonempty quiet region on every such
        core, and the stability floor (earliest possible completion
        across the queued processes) leaves room for at least two
        quanta.  ``T`` itself is bounded only by the hard bit-identity
        boundaries — the checkpoint grid point, the fault plan's next
        timed event, and pending non-core events; everything softer
        (balance ticks, mark firings, completions) the window handles
        in place by replaying the stepped operations exactly, bailing
        back to the outer loop the moment an idle core would wake.
        """
        sq = self._sched_queues
        offline = self._core_offline
        sched = self.scheduler
        horizon = ckpt_due
        for time, _, payload in self._events._heap:
            if payload[0] != "core":
                # A pending arrival/fault bounds the window instead of
                # vetoing it: turns starting before it commute with it.
                if time < horizon:
                    horizon = time
                continue
            cid = payload[1]
            if offline[cid] or not sq[cid]:
                self._probe_defer = 0.0
                return None
            if sched.stability_horizon(cid, now) <= now:
                # The scheduler refuses any quiet region (an overdue
                # balance pass, or a scheduler that never opted in):
                # let the outer loop step the next turn.
                self._probe_defer = 0.0
                return None
        if self.faults is not None:
            h = self.faults.plan.next_event_after(now)
            if h < horizon:
                horizon = h
        # Below two quanta per core the mini loop cannot beat the
        # outer loop's per-event cost.
        min_end = now + 2.0 * self._timeslice
        if horizon < min_end:
            # Capped by a fixed-time bound (arrival, fault, checkpoint
            # grid point).  min_end only grows while the bound stands,
            # so probing again before the bound passes cannot succeed.
            self._probe_defer = horizon
            return None
        if self._stability_floor < min_end:
            self._stability_floor = self._stability_floor_calc(now)
            if self._stability_floor < min_end:
                # A completion is (possibly) imminent; the window would
                # bail after a turn or two, so it is not worth opening.
                # The floor is a fixed absolute time, so re-probing (and
                # paying this O(processes) recompute) before it passes
                # would refuse for the same reason — and because the
                # floor ignores queue wait, churning workloads keep it
                # perpetually imminent, hence the exponential backoff.
                backoff = self._probe_backoff
                defer = now + backoff * (2.0 * self._timeslice)
                if self._stability_floor > defer:
                    defer = self._stability_floor
                self._probe_defer = defer
                if backoff < 64.0:
                    self._probe_backoff = backoff + backoff
                return None
        self._probe_defer = 0.0
        self._probe_backoff = 1.0
        return horizon

    def _stability_floor_calc(self, now: float) -> float:
        """Absolute lower bound on the next process completion across
        every queued process.

        Computed from uncontended cycle prefix sums at each core type's
        fastest online frequency: wall time can only exceed the bound
        (contention, pressure, and mark costs all add cycles; queue
        waits add time), and execution never moves a completion
        earlier, so the bound stays valid until a fault or arrival
        resets it.  Unflattenable traces return *now* — their quanta
        always run the stepped reference path, so windows never open
        around them.
        """
        offline = self._core_offline
        freq_eff = self._core_freq_eff
        fmax: dict = {}
        for cid, info in enumerate(self._core_exec):
            if not offline[cid]:
                name = info[1]
                f = freq_eff[cid]
                if f > fmax.get(name, 0.0):
                    fmax[name] = f
        inf = math.inf
        floor = inf
        for queue in self._sched_queues.values():
            for proc in queue:
                cursor = proc.cursor
                if cursor.__class__ is not FlatCursor:
                    return now
                flat = cursor.flat
                pos = cursor.pos
                if pos >= flat.n:
                    return now
                rem = flat.iters[pos] - cursor.iters_done
                stab = flat.stab
                for name, f in fmax.items():
                    unc, tail = stab[name]
                    t = (rem * unc[pos] + tail[pos]) / f
                    if t < floor:
                        floor = t
        return now + floor if floor is not inf else inf

    def _build_commit(
        self, core_id: int, ctype_name, pollution_penalty, fastrow, neighbor
    ):
        """Precompute one pure mid-step quantum on *core_id*: the step
        runs the full timeslice without advancing.  Returns ``None`` for
        any shape needing the general path; otherwise a tuple whose
        floats are produced by exactly the per-quantum expressions of
        :meth:`_run_quantum_flat`'s fast path, so replaying a cached
        commit is bit-identical to recomputing it.
        """
        (
            remaining_full,
            seg_instrs,
            per_iter_overhead,
            emb_p,
            compute,
            stall,
            l2_resident,
            raw_stall_frac,
        ) = fastrow
        if self.runtime is not None and emb_p:
            return None
        contention_alpha = self.contention_alpha
        pollution_beta = self.pollution_beta
        if neighbor > 0:
            if contention_alpha > 0 and stall > 0:
                stall *= 1.0 + contention_alpha * neighbor
            if pollution_beta > 0 and l2_resident > 0:
                stall += (
                    pollution_beta * neighbor * l2_resident * pollution_penalty
                )
        mem_pressure = self._core_mem_pressure[core_id]
        if mem_pressure > 0.0 and l2_resident > 0:
            stall += mem_pressure * l2_resident * pollution_penalty
        total_per_iter = compute + stall + per_iter_overhead
        per_iter_s = total_per_iter / self._core_freq_eff[core_id]
        if per_iter_s < 1e-18:
            per_iter_s = 1e-18
        timeslice = self._timeslice
        n = timeslice / per_iter_s
        elapsed = n * per_iter_s
        if timeslice - elapsed > _MIN_STEP_S:
            # Degenerate cost: the quantum would continue into further
            # steps; leave the shape to the general loop.
            return None
        return (
            n,
            elapsed,
            n * total_per_iter,
            n * seg_instrs,
            n * per_iter_overhead,
            raw_stall_frac,
            remaining_full,
        )

    def _run_window(self, horizon: float, until: float) -> bool:
        """Run every core turn in ``[front, horizon)`` through a mini
        event loop; returns whether any turn ran.

        The turns are popped off the real heap as their original
        ``(time, seq, payload)`` tuples; re-pushes continue the real
        sequence counter, so the event stream — and with it every
        FIFO tie-break — is identical to the outer loop's.  Turns
        generated inside the window that land at or past the horizon
        (or past *until*) are parked back onto the real heap.

        Balance ticks, runtime mark firings (including migrations),
        and completions all execute *inside* the window through the
        same code paths — and therefore the same float operations and
        sequence numbers — the outer loop would run.  The window only
        hands control back early when the event set stops being pure
        core turns: a completion's arrival, a wake-up of an idle core,
        or a drained runqueue (whose next pick would steal or idle).
        """
        events = self._events
        heap = events._heap
        ctx = self._window_ctx
        (
            core_exec,
            freq_eff,
            timeslice,
            runtime,
            core_idle,
            core_stall_frac,
            contention_alpha,
            pollution_beta,
            buckets,
        ) = self._hot
        cache_get = self._commit_cache.get
        cache = self._commit_cache
        run_flat = self._run_quantum_flat
        run_stepped = self._run_quantum_stepped
        busy = self._core_busy_until
        tr_q = self._tr_quantum
        tr = self._tr
        tr_run = self._tr_run
        sched = self.scheduler
        last_balance = sched._last_balance
        balance_interval = sched.balance_interval
        heappush = _heappush
        heappop = _heappop
        mini: list = []
        while heap and heap[0][0] < horizon:
            mini.append(heappop(heap))
        # Popped in order, so the sorted list is itself a valid heap.
        parked: list = []
        ran = False
        # Locals shadowing hot simulation state for the duration of the
        # window; every call that can read or push events (balance,
        # enqueue, _finish) is bracketed by an events._seq sync, and
        # _now advances only past *processed* turn starts (parked
        # entries keep their place for the outer loop, and checkpoint
        # snapshots taken at the horizon must match the stepped clock).
        seq = events._seq
        pnow = self._now
        while mini:
            entry = heappop(mini)
            s = entry[0]
            if s >= horizon or s > until:
                parked.append(entry)
                continue
            if s > pnow:
                pnow = s
            if s - last_balance >= balance_interval:
                # The periodic balance pass, at exactly the instant and
                # with exactly the state the stepped pick would run it.
                nheap = len(heap)
                events._seq = seq
                sched._maybe_balance(s)
                seq = events._seq
                last_balance = sched._last_balance
                if len(heap) != nheap:
                    # A move woke an idle core: its turn is now pending
                    # on the real heap inside the window.  This turn has
                    # not run; the outer loop re-picks it with the
                    # balance-done guard false.
                    parked.append(entry)
                    parked.extend(mini)
                    break
            cid = entry[2][1]
            queue, ctype_name, nb, neighbors, penalty = ctx[cid]
            if not queue:
                # The runqueue drained mid-window (completion or
                # migration): the next pick would steal or go idle,
                # which only the outer loop does.
                parked.append(entry)
                parked.extend(mini)
                break
            proc = queue.popleft()
            cursor = proc.cursor
            end = None
            finished = False
            if cursor.__class__ is FlatCursor:
                done = cursor.iters_done
                if done > 0.0 and not cursor.at_entry:
                    if nb >= 0:
                        neighbor = (
                            0.0 if core_idle[nb] else core_stall_frac[nb]
                        )
                    else:
                        neighbor = 0.0
                        for other in neighbors:
                            if not core_idle[other]:
                                other_frac = core_stall_frac[other]
                                if other_frac > neighbor:
                                    neighbor = other_frac
                    flat = cursor.flat
                    pos = cursor.pos
                    key = (cid, id(flat), pos, neighbor)
                    commit = cache_get(key, _MISS)
                    if commit is _MISS:
                        commit = self._build_commit(
                            cid,
                            ctype_name,
                            penalty,
                            flat.fastinfo[ctype_name][pos],
                            neighbor,
                        )
                        cache[key] = commit
                    if commit is not None:
                        (
                            n,
                            elapsed,
                            cyc,
                            instrs,
                            movh,
                            sfrac,
                            remaining_full,
                        ) = commit
                        new_done = done + n
                        if remaining_full - new_done > 1e-9:
                            proc.current_core = cid
                            stats = proc.stats
                            stats.instructions += instrs
                            cycles_by_type = stats.cycles_by_type
                            try:
                                cycles_by_type[ctype_name] += cyc
                            except KeyError:
                                cycles_by_type[ctype_name] = cyc
                            instrs_by_type = stats.instrs_by_type
                            try:
                                instrs_by_type[ctype_name] += instrs
                            except KeyError:
                                instrs_by_type[ctype_name] = instrs
                            stats.mark_overhead_cycles += movh
                            stats.cpu_time += elapsed
                            bucket = int(s)
                            try:
                                buckets[bucket] += instrs
                            except KeyError:
                                buckets[bucket] = instrs
                            core_stall_frac[cid] = sfrac
                            cursor.iters_done = new_done
                            t = s + elapsed
                            floor = s + _MIN_STEP_S
                            end = t if t > floor else floor
                if end is None:
                    # Entries, step advances, mark firings, and
                    # degenerate shapes run the real per-quantum path.
                    end = run_flat(cid, proc, s, cursor)
                    finished = cursor.pos >= cursor.flat.n
            else:
                end = run_stepped(cid, proc, s)
                finished = cursor.finished
            busy[cid] = end
            if tr_q:
                tr.events.append(
                    ("X", "quantum", "q", tr_run, s, cid, end - s,
                     {"pid": proc.pid})
                )
            ran = True
            payload = entry[2]
            if finished:
                nheap = len(heap)
                events._seq = seq
                self._finish(proc, end)
                seq = events._seq
                if len(heap) != nheap:
                    # The completion admitted an arrival (pushed by
                    # _finish with the next sequence number, exactly as
                    # stepping would); it must interleave with the
                    # remaining turns, so the window ends here.
                    heappush(heap, (end, seq, payload))
                    seq += 1
                    parked.extend(mini)
                    break
            elif cid in proc.affinity:
                queue.append(proc)
            else:
                # Migration decision (a mark fired inside run_flat):
                # the full enqueue path, exactly as stepping runs it.
                nheap = len(heap)
                events._seq = seq
                sched.enqueue(proc, end)
                seq = events._seq
                if len(heap) != nheap:
                    # The placement woke an idle core.
                    heappush(heap, (end, seq, payload))
                    seq += 1
                    parked.extend(mini)
                    break
            heappush(mini, (end, seq, payload))
            seq += 1
        events._seq = seq
        if pnow > self._now:
            self._now = pnow
        for entry in parked:
            heappush(heap, entry)
        return ran

    # -- quantum execution -------------------------------------------------------

    def _run_quantum(self, core_id: int, proc: SimProcess, start: float) -> float:
        cursor = proc.cursor
        if self.batched and cursor.__class__ is FlatCursor:
            return self._run_quantum_flat(core_id, proc, start, cursor)
        return self._run_quantum_stepped(core_id, proc, start)

    def _run_quantum_stepped(
        self, core_id: int, proc: SimProcess, start: float
    ) -> float:
        """Reference quantum loop: one trace step per iteration.

        Used for unflattenable traces and as the golden reference for
        :meth:`_run_quantum_flat` (``batched=False`` forces it).  Both
        paths must stay bit-identical — every float operation feeding
        ``t``/``budget``/``n`` cascades through scheduler decisions.
        """
        core, ctype_name, freq_hz, neighbors, pollution_penalty, _ = (
            self._core_exec[core_id]
        )
        # DVFS faults re-clock individual cores; the scale is exactly
        # 1.0 (multiplication is a float no-op) in unfaulted runs.
        freq = freq_hz * self._core_freq_scale[core_id]
        budget = self.scheduler.timeslice
        t = start
        proc.current_core = core_id

        # Invariant state hoisted out of the inner loop: attribute and
        # dict lookups here execute once per quantum, not once per
        # trace step.
        cursor = proc.cursor
        stats = proc.stats
        runtime = self.runtime
        contention_alpha = self.contention_alpha
        pollution_beta = self.pollution_beta
        core_idle = self._core_idle
        core_stall_frac = self._core_stall_frac
        buckets = self._result.throughput_buckets
        # Loop-invariant within the quantum: pressure events apply
        # between quanta, through the event loop.
        mem_pressure = self._core_mem_pressure[core_id]

        while budget > 0 and not cursor.finished:
            seg = cursor.current
            if cursor.at_entry:
                action = self._fire_marks(proc, seg, core, t)
                cost_s = action.extra_cycles / freq
                t += cost_s
                budget -= cost_s
                cursor.at_entry = False
                if action.affinity is not None and action.affinity != proc.affinity:
                    if self.faults is not None and not self._affinity_call_ok(
                        proc, t
                    ):
                        # Injected sched_setaffinity failure: the call
                        # was charged but the mask did not change.
                        continue
                    proc.affinity = validate_affinity(
                        action.affinity, len(self.machine)
                    )
                    if self.faults is not None and self._notify_affinity is not None:
                        self._notify_affinity(proc, True, None, t)
                    if core_id not in proc.affinity:
                        # Core switch: charge migration and preempt.
                        switch_s = MIGRATION_CYCLES / freq
                        stats.switches += 1
                        stats.migrations += 1
                        if self._tr_exec:
                            self._tr.instant(
                                "exec",
                                "migrate",
                                t,
                                tid=PROC_TID_BASE + proc.pid,
                                args={"pid": proc.pid, "from": core_id},
                                run=self._tr_run,
                            )
                        return t + switch_s
                continue

            compute, stall, l2_resident, seg_instrs, raw_stall_frac = (
                seg.cost_tuple(ctype_name)
            )
            neighbor = 0.0
            for other in neighbors:
                if not core_idle[other]:
                    other_frac = core_stall_frac[other]
                    if other_frac > neighbor:
                        neighbor = other_frac
            if neighbor > 0:
                if contention_alpha > 0 and stall > 0:
                    # Bandwidth contention: two memory-intensive phases
                    # on one L2 (and one front-side bus) slow each other
                    # down.
                    stall *= 1.0 + contention_alpha * neighbor
                if pollution_beta > 0 and l2_resident > 0:
                    # Pollution: a streaming co-runner evicts this
                    # segment's L2-resident lines, turning L2 hits into
                    # DRAM misses.
                    stall += pollution_beta * neighbor * l2_resident * pollution_penalty
            if mem_pressure > 0.0 and l2_resident > 0:
                # Memory-pressure fault: the shrunk share of the L2
                # turns that share of resident accesses into DRAM
                # misses, like pollution but from outside the machine.
                stall += mem_pressure * l2_resident * pollution_penalty

            per_iter_overhead = 0.0
            switch_rate = 0.0
            if seg.embedded:
                per_iter_overhead, switch_rate = self._embedded_overhead(
                    proc, seg, runtime
                )

            total_per_iter = compute + stall + per_iter_overhead
            per_iter_s = max(total_per_iter / freq, 1e-18)
            remaining = cursor.remaining_iterations
            fit = budget / per_iter_s
            n = min(remaining, fit)
            if n <= 0:
                n = min(remaining, 1e-9)
            elapsed = n * per_iter_s
            stats.record(ctype_name, n * seg_instrs, n * total_per_iter)
            stats.mark_overhead_cycles += n * per_iter_overhead
            stats.switches += n * switch_rate
            if switch_rate != 0.0 and self._tr_exec:
                self._tr.counter(
                    "exec",
                    "thrash",
                    t,
                    n * switch_rate,
                    tid=PROC_TID_BASE + proc.pid,
                    run=self._tr_run,
                )
            stats.cpu_time += elapsed
            bucket = int(t)
            instrs = n * seg_instrs
            buckets[bucket] = buckets.get(bucket, 0.0) + instrs
            core_stall_frac[core_id] = raw_stall_frac
            cursor.consume(n)
            t += elapsed
            budget -= elapsed
            if budget <= _MIN_STEP_S and not cursor.finished:
                break

        return max(t, start + _MIN_STEP_S)

    def _run_quantum_flat(
        self, core_id: int, proc: SimProcess, start: float, cursor: FlatCursor
    ) -> float:
        """Segment-batched quantum loop over a flat trace.

        Bit-identical to :meth:`_run_quantum_stepped`: windows of
        mark-free steps run through one numpy pipeline whose cumulative
        arrays (``np.add.accumulate``) reproduce the scalar
        ``t += elapsed`` / ``budget -= elapsed`` sequences operation for
        operation; the step straddling the timeslice (or phase-mark)
        boundary — located via the cumulative budget array — and every
        marked step execute through the same scalar expressions as the
        stepped loop.
        """
        (
            core_exec,
            freq_eff,
            timeslice,
            runtime,
            core_idle,
            core_stall_frac,
            contention_alpha,
            pollution_beta,
            buckets,
        ) = self._hot
        core, ctype_name, freq_hz, neighbors, pollution_penalty, nb = (
            core_exec[core_id]
        )
        freq = freq_eff[core_id]
        budget = timeslice
        t = start
        proc.current_core = core_id

        flat = cursor.flat
        pos = cursor.pos
        done = cursor.iters_done
        at_entry = cursor.at_entry
        n_steps = flat.n

        # The neighbour scan reads only *other* cores' state, which no
        # event can change mid-quantum, so it is loop-invariant.  Stall
        # fractions are non-negative, so with a single L2 neighbour the
        # max-scan collapses to one read.
        if nb >= 0:
            neighbor = 0.0 if core_idle[nb] else core_stall_frac[nb]
        else:
            neighbor = 0.0
            for other in neighbors:
                if not core_idle[other]:
                    other_frac = core_stall_frac[other]
                    if other_frac > neighbor:
                        neighbor = other_frac
        # Like the neighbour scan, loop-invariant: pressure events only
        # apply between quanta.
        mem_pressure = self._core_mem_pressure[core_id]

        # Fast path: nearly every quantum resumes mid-step (at_entry
        # cleared, partial iterations done) and the whole timeslice fits
        # inside that one step.  Commit exactly one scalar step — the
        # same float ops as the general loop below — with a minimal
        # prologue, and return if the quantum ends there.  Any other
        # shape falls through with nothing mutated (n <= 0) or with the
        # step committed and budget/pos updated for the general loop.
        if not at_entry and done > 0.0:
            (
                remaining_full,
                seg_instrs,
                per_iter_overhead,
                emb_p,
                compute,
                stall,
                l2_resident,
                raw_stall_frac,
            ) = flat.fastinfo[ctype_name][pos]
            if runtime is None or not emb_p:
                if neighbor > 0:
                    if contention_alpha > 0 and stall > 0:
                        stall *= 1.0 + contention_alpha * neighbor
                    if pollution_beta > 0 and l2_resident > 0:
                        stall += (
                            pollution_beta
                            * neighbor
                            * l2_resident
                            * pollution_penalty
                        )
                if mem_pressure > 0.0 and l2_resident > 0:
                    stall += mem_pressure * l2_resident * pollution_penalty
                total_per_iter = compute + stall + per_iter_overhead
                per_iter_s = total_per_iter / freq
                if per_iter_s < 1e-18:
                    per_iter_s = 1e-18
                remaining = remaining_full - done
                fit = budget / per_iter_s
                n = remaining if remaining <= fit else fit
                if n > 0:
                    elapsed = n * per_iter_s
                    instrs = n * seg_instrs
                    stats = proc.stats
                    stats.instructions += instrs
                    # d[k] = d.get(k, 0.0) + x spelled as try/except:
                    # the key exists after the first commit, and
                    # 0.0 + x == x exactly on the miss.
                    cycles_by_type = stats.cycles_by_type
                    try:
                        cycles_by_type[ctype_name] += n * total_per_iter
                    except KeyError:
                        cycles_by_type[ctype_name] = n * total_per_iter
                    instrs_by_type = stats.instrs_by_type
                    try:
                        instrs_by_type[ctype_name] += instrs
                    except KeyError:
                        instrs_by_type[ctype_name] = instrs
                    stats.mark_overhead_cycles += n * per_iter_overhead
                    stats.cpu_time += elapsed
                    bucket = int(t)
                    try:
                        buckets[bucket] += instrs
                    except KeyError:
                        buckets[bucket] = instrs
                    core_stall_frac[core_id] = raw_stall_frac
                    done += n
                    if remaining_full - done <= 1e-9:
                        pos += 1
                        done = 0.0
                        at_entry = True
                    t += elapsed
                    budget -= elapsed
                    if budget <= _MIN_STEP_S or pos >= n_steps:
                        cursor.pos = pos
                        cursor.iters_done = done
                        cursor.at_entry = at_entry if pos < n_steps else False
                        floor = start + _MIN_STEP_S
                        return t if t > floor else floor

        stats = proc.stats
        (
            segs,
            iters,
            instrs_l,
            ovh_l,
            entry_marked,
            next_entry,
            any_marked,
            next_any,
            emb_multi,
            comp_l,
            stall_l,
            l2_l,
            sfrac_l,
            np_iters,
            np_comp,
            np_stall,
            np_l2,
            np_ovh,
            est_cum,
        ) = flat.cols[ctype_name]
        # Steps needing scalar treatment: with a runtime attached, any
        # mark (entry or embedded) may call into it; without one, only
        # entry marks charge cycles (embedded overhead is a constant
        # per-iteration term already present in the cost arrays).
        if runtime is not None:
            marked = any_marked
            next_marked = next_any
        else:
            marked = entry_marked
            next_marked = next_entry
        apply_alpha = neighbor > 0 and contention_alpha > 0
        apply_beta = neighbor > 0 and pollution_beta > 0
        alpha_factor = 1.0 + contention_alpha * neighbor
        beta_neighbor = pollution_beta * neighbor

        while budget > 0 and pos < n_steps:
            if at_entry:
                if marked[pos]:
                    action = self._fire_marks(proc, segs[pos], core, t)
                    cost_s = action.extra_cycles / freq
                    t += cost_s
                    budget -= cost_s
                    at_entry = False
                    if (
                        action.affinity is not None
                        and action.affinity != proc.affinity
                    ):
                        if self.faults is not None and not self._affinity_call_ok(
                            proc, t
                        ):
                            continue
                        proc.affinity = validate_affinity(
                            action.affinity, len(self.machine)
                        )
                        if (
                            self.faults is not None
                            and self._notify_affinity is not None
                        ):
                            self._notify_affinity(proc, True, None, t)
                        if core_id not in proc.affinity:
                            switch_s = MIGRATION_CYCLES / freq
                            stats.switches += 1
                            stats.migrations += 1
                            if self._tr_exec:
                                self._tr.instant(
                                    "exec",
                                    "migrate",
                                    t,
                                    tid=PROC_TID_BASE + proc.pid,
                                    args={"pid": proc.pid, "from": core_id},
                                    run=self._tr_run,
                                )
                            cursor.pos = pos
                            cursor.iters_done = done
                            cursor.at_entry = False
                            return t + switch_s
                    continue
                # A mark-free entry is an exact no-op in the stepped
                # loop (zero cycles, zero firings); just clear the flag.
                at_entry = False

            # Batch only from a fresh step boundary (done == 0.0): a
            # fully-consumed fresh step always advances the cursor
            # exactly (done' == iterations, residue 0), whereas resuming
            # a partially-consumed step can leave a float residue above
            # the 1e-9 advance tolerance that the stepped loop would
            # execute as an extra mini-step.
            window_end = next_marked[pos] if done == 0.0 else pos
            if window_end - pos >= _NP_WINDOW_MIN:
                # Upper-bound the reachable step count: contention and
                # the 1e-18 time floor only slow steps down, so the
                # uncontended cumulative-cycle prefix cannot undershoot.
                hi = int(
                    np.searchsorted(
                        est_cum, est_cum[pos] + budget * freq, side="right"
                    )
                )
                window_end = min(window_end, hi + 1, pos + 4096)
            if window_end - pos >= _NP_WINDOW_MIN:
                w = window_end
                stall_a = np_stall[pos:w]
                if apply_alpha:
                    stall_a = stall_a * alpha_factor
                if apply_beta:
                    stall_a = stall_a + (beta_neighbor * np_l2[pos:w]) * (
                        pollution_penalty
                    )
                if mem_pressure > 0.0:
                    stall_a = stall_a + (mem_pressure * np_l2[pos:w]) * (
                        pollution_penalty
                    )
                total_a = (np_comp[pos:w] + stall_a) + np_ovh[pos:w]
                per_iter_a = total_a / freq
                np.maximum(per_iter_a, 1e-18, out=per_iter_a)
                rem_a = np_iters[pos:w]
                elapsed_a = rem_a * per_iter_a
                m = w - pos
                # Cumulative budget/time with the scalar accumulation
                # order: add.accumulate is strictly left-to-right.
                b_cum = np.add.accumulate(
                    np.concatenate(((budget,), -elapsed_a))
                )
                t_cum = np.add.accumulate(np.concatenate(((t,), elapsed_a)))
                fits = (b_cum[:m] / per_iter_a) >= rem_a
                fits[1:] &= b_cum[1:m] > _MIN_STEP_S
                blocked = np.flatnonzero(~fits)
                j = int(blocked[0]) if blocked.size else m
                if j > 0:
                    n_l = rem_a[:j].tolist()
                    total_l = total_a[:j].tolist()
                    elapsed_l = elapsed_a[:j].tolist()
                    t_l = t_cum[:j].tolist()
                    instructions = stats.instructions
                    cycles_ct = stats.cycles_by_type.get(ctype_name, 0.0)
                    instrs_ct = stats.instrs_by_type.get(ctype_name, 0.0)
                    mark_overhead = stats.mark_overhead_cycles
                    cpu_time = stats.cpu_time
                    for i in range(j):
                        n = n_l[i]
                        step = pos + i
                        instrs = n * instrs_l[step]
                        instructions += instrs
                        cycles_ct += n * total_l[i]
                        instrs_ct += instrs
                        mark_overhead += n * ovh_l[step]
                        cpu_time += elapsed_l[i]
                        bucket = int(t_l[i])
                        buckets[bucket] = buckets.get(bucket, 0.0) + instrs
                    stats.instructions = instructions
                    stats.cycles_by_type[ctype_name] = cycles_ct
                    stats.instrs_by_type[ctype_name] = instrs_ct
                    stats.mark_overhead_cycles = mark_overhead
                    stats.cpu_time = cpu_time
                    core_stall_frac[core_id] = sfrac_l[pos + j - 1]
                    pos += j
                    done = 0.0
                    at_entry = True
                    t = float(t_cum[j])
                    budget = float(b_cum[j])
                    if budget <= _MIN_STEP_S and pos < n_steps:
                        break
                    continue
                # j == 0: the first step already straddles the boundary.

            compute = comp_l[pos]
            stall = stall_l[pos]
            l2_resident = l2_l[pos]
            seg_instrs = instrs_l[pos]
            raw_stall_frac = sfrac_l[pos]
            if neighbor > 0:
                if contention_alpha > 0 and stall > 0:
                    stall *= 1.0 + contention_alpha * neighbor
                if pollution_beta > 0 and l2_resident > 0:
                    stall += (
                        pollution_beta * neighbor * l2_resident * pollution_penalty
                    )
            if mem_pressure > 0.0 and l2_resident > 0:
                stall += mem_pressure * l2_resident * pollution_penalty

            if runtime is not None and emb_multi[pos]:
                per_iter_overhead, switch_rate = self._embedded_overhead(
                    proc, segs[pos], runtime
                )
            else:
                # ovh_l holds exactly embedded_rate * MARK_FIRE_CYCLES
                # (0.0 for mark-free steps) — what _embedded_overhead
                # returns whenever thrash is impossible (no runtime, or
                # fewer than two embedded marks).
                per_iter_overhead = ovh_l[pos]
                switch_rate = 0.0

            total_per_iter = compute + stall + per_iter_overhead
            # min()/max() spelled as conditionals (value-identical for
            # the non-NaN floats here; saves a builtin call per step).
            per_iter_s = total_per_iter / freq
            if per_iter_s < 1e-18:
                per_iter_s = 1e-18
            remaining = iters[pos] - done
            fit = budget / per_iter_s
            n = remaining if remaining <= fit else fit
            if n <= 0:
                n = min(remaining, 1e-9)
            elapsed = n * per_iter_s
            # stats.record inlined, same field order and float ops
            # (0.0 + x == x exactly, so the try/except miss arm matches
            # the .get(k, 0.0) + x it replaces).
            instrs = n * seg_instrs
            stats.instructions += instrs
            cycles_by_type = stats.cycles_by_type
            try:
                cycles_by_type[ctype_name] += n * total_per_iter
            except KeyError:
                cycles_by_type[ctype_name] = n * total_per_iter
            instrs_by_type = stats.instrs_by_type
            try:
                instrs_by_type[ctype_name] += instrs
            except KeyError:
                instrs_by_type[ctype_name] = instrs
            stats.mark_overhead_cycles += n * per_iter_overhead
            stats.switches += n * switch_rate
            if switch_rate != 0.0 and self._tr_exec:
                self._tr.counter(
                    "exec",
                    "thrash",
                    t,
                    n * switch_rate,
                    tid=PROC_TID_BASE + proc.pid,
                    run=self._tr_run,
                )
            stats.cpu_time += elapsed
            bucket = int(t)
            try:
                buckets[bucket] += instrs
            except KeyError:
                buckets[bucket] = instrs
            core_stall_frac[core_id] = raw_stall_frac
            done += n
            if iters[pos] - done <= 1e-9:
                pos += 1
                done = 0.0
                at_entry = True
            t += elapsed
            budget -= elapsed
            if budget <= _MIN_STEP_S and pos < n_steps:
                break

        cursor.pos = pos
        cursor.iters_done = done
        cursor.at_entry = at_entry if pos < n_steps else False
        floor = start + _MIN_STEP_S
        return t if t > floor else floor

    def _fire_marks(self, proc: SimProcess, seg: Segment, core, now) -> MarkAction:
        """Fire the segment's entry marks (and give embedded marks their
        once-per-entry runtime visit); return the combined action."""
        n_entry = len(seg.entry_marks)
        fired = n_entry + len(seg.embedded)
        cycles = MARK_FIRE_CYCLES * n_entry
        proc.stats.mark_firings += n_entry
        proc.stats.mark_overhead_cycles += cycles
        if self._tr_phase and n_entry:
            # Highest-volume hook point (one event per entry-mark
            # firing): append the raw tuple, bypassing Recorder.instant,
            # to stay inside the tracing overhead budget.
            pid = proc.pid
            tid = PROC_TID_BASE + pid
            run = self._tr_run
            append = self._tr.events.append
            for ref in seg.entry_marks:
                append(
                    ("I", "phase", "phase", run, now, tid, None,
                     {"pid": pid, "phase": ref.phase_type})
                )
        if self.runtime is None:
            if not fired:
                return _NO_ACTION
            action = _ENTRY_ACTIONS.get(n_entry)
            if action is None:
                action = _ENTRY_ACTIONS[n_entry] = MarkAction(extra_cycles=cycles)
            return action

        affinity = None
        extra = cycles
        for ref in seg.entry_marks:
            action = self.runtime.on_mark(proc, ref.mark_id, ref.phase_type, core, now)
            extra += action.extra_cycles
            if action.affinity is not None:
                affinity = action.affinity
        for emb in seg.embedded:
            action = self.runtime.on_mark(proc, emb.mark_id, emb.phase_type, core, now)
            extra += action.extra_cycles
            if action.affinity is not None and affinity is None:
                # Embedded marks may steer too, but an entry mark's
                # request (the section actually being entered) wins.
                affinity = action.affinity
        return MarkAction(affinity=affinity, extra_cycles=extra)

    @staticmethod
    def _embedded_overhead(proc: SimProcess, seg: Segment, runtime):
        """(mark overhead cycles, switch rate) per iteration contributed
        by the segment's embedded marks under *runtime*'s current
        decisions.  Runtime-dependent, so recomputed each quantum."""
        overhead = seg.embedded_rate * MARK_FIRE_CYCLES
        switch_rate = 0.0
        # Thrash needs at least two embedded marks decided to *distinct*
        # core types; with zero or one mark the answer is always the
        # plain fire overhead, no runtime consultation needed.
        if runtime is not None and len(seg.embedded) > 1:
            targets = {}
            for emb in seg.embedded:
                target = runtime.assignment_for(proc, emb.phase_type)
                if target is not None:
                    targets[emb.phase_type] = (target.name, emb.rate)
            names = {name for name, _ in targets.values()}
            if len(names) >= 2:
                # Marks of differing decided targets thrash: every
                # firing of a minority-target mark is a switch.
                dominant = max(targets.values(), key=lambda tr: tr[1])[0]
                thrash = sum(
                    rate for name, rate in targets.values() if name != dominant
                )
                switch_rate += thrash
                overhead += thrash * MIGRATION_CYCLES
        return overhead, switch_rate

    # -- fault handling ----------------------------------------------------------

    def _affinity_call_ok(self, proc: SimProcess, now: float) -> bool:
        """Whether this sched_setaffinity call survives injection; on
        failure the runtime is notified so it can degrade."""
        try:
            self.faults.check_affinity_call(proc.pid, now)
        except AffinitySyscallError as exc:
            if self._tr_fault:
                self._tr.instant(
                    "fault",
                    "affinity-fail",
                    now,
                    tid=PROC_TID_BASE + proc.pid,
                    args={"pid": proc.pid, "errno": exc.errno_name},
                    run=self._tr_run,
                )
            if self._notify_affinity is not None:
                self._notify_affinity(proc, False, exc, now)
            return False
        return True

    def _apply_fault(self, event, now: float) -> None:
        """Apply one scheduled hotplug/DVFS event, refusing transitions
        that would leave the machine unable to run anything."""
        if isinstance(event, HotplugEvent):
            cid = event.core_id
            if event.online:
                if not self._core_offline[cid]:
                    self.faults.note_skipped(event)
                    return
                self._core_offline[cid] = False
                self.scheduler.set_core_offline(cid, False, now)
                self.faults.note_applied(event)
                self._wake_core(cid, now)
            else:
                online = self._core_offline.count(False)
                if self._core_offline[cid] or online <= 1:
                    # Never take down the last online core.
                    self.faults.note_skipped(event)
                    return
                self._core_offline[cid] = True
                self._core_stall_frac[cid] = 0.0
                self.scheduler.set_core_offline(cid, True, now)
                self.faults.note_applied(event)
        elif isinstance(event, DvfsEvent):
            cid = event.core_id
            self._core_freq_scale[cid] = event.scale
            # Same product the stepped path computes per quantum.
            self._core_freq_eff[cid] = self._core_exec[cid][2] * event.scale
            self.faults.note_applied(event)
        elif isinstance(event, MemoryPressureEvent):
            self._core_mem_pressure[event.core_id] = event.shrink
            self.faults.note_applied(event)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown fault event {event!r}")
        # Every fault class invalidates the coalescing caches: DVFS and
        # pressure change the per-core costs baked into commits, and
        # hotplug changes the online set behind the stability floor.
        self._commit_cache.clear()
        self._stability_floor = -math.inf
        if self._tr_fault:
            if isinstance(event, HotplugEvent):
                name = "hotplug"
                args = {"core": event.core_id, "online": event.online}
            elif isinstance(event, DvfsEvent):
                name = "dvfs"
                args = {"core": event.core_id, "scale": event.scale}
            else:
                name = "mem-pressure"
                args = {
                    "core": event.core_id,
                    "shrink": event.shrink,
                    "restored": event.shrink == 0.0,
                }
            self._tr.instant(
                "fault",
                name,
                now,
                tid=event.core_id,
                args=args,
                run=self._tr_run,
            )
        if self._tr_opensys and isinstance(event, HotplugEvent):
            # Open-system breakdown/repair windows are hotplug events;
            # mirror them into the opensys timeline so queue-depth and
            # latency excursions line up with capacity losses.
            self._tr.instant(
                "opensys",
                "breakdown" if not event.online else "repair",
                now,
                tid=event.core_id,
                args={"core": event.core_id},
                run=self._tr_run,
            )
        if self._notify_machine is not None:
            self._notify_machine(event, now, tuple(self._core_freq_scale))

    def _account_throughput(self, t: float, instrs: float) -> None:
        bucket = int(t)
        self._result.throughput_buckets[bucket] = (
            self._result.throughput_buckets.get(bucket, 0.0) + instrs
        )

    def _do_cancel(self, pid: int, now: float) -> None:
        """Dispatch one ``("cancel", pid)`` event (see
        :meth:`cancel_process` for the semantics)."""
        proc = None
        if pid in self._live:
            proc = self.scheduler.remove(pid, now)
        if proc is None:
            # The job completed before the cancellation fired, never
            # arrived, or the scheduler cannot surgically remove it
            # (the conservative base contract) — it runs to completion
            # and the cancellation is a miss.
            if self._tr_opensys:
                self._tr.instant(
                    "opensys",
                    "cancel",
                    now,
                    tid=PROC_TID_BASE + pid,
                    args={"pid": pid, "reason": cancelled_reason("missed")},
                    run=self._tr_run,
                )
            if self.on_cancel is not None:
                self.on_cancel(None, now)
            return
        self._live.discard(pid)
        self._result.cancelled.append(proc)
        if self._tr_opensys:
            self._tr.instant(
                "opensys",
                "cancel",
                now,
                tid=PROC_TID_BASE + proc.pid,
                args={
                    "pid": proc.pid,
                    "name": proc.name,
                    "reason": cancelled_reason("queued"),
                },
                run=self._tr_run,
            )
            self._tr.counter(
                "opensys",
                "jobs_in_system",
                now,
                float(len(self._live)),
                run=self._tr_run,
            )
        if self.runtime is not None:
            # Same teardown as completion: the runtime releases any
            # open measurement session for the departing process.
            self.runtime.on_process_end(proc, now)
        # The removal shrank a runqueue the cached stability floor was
        # computed against; reset it like an arrival does.
        self._stability_floor = -math.inf
        if self.on_cancel is not None:
            self.on_cancel(proc, now)

    def _finish(self, proc: SimProcess, now: float) -> None:
        proc.completion = now
        self._live.discard(proc.pid)
        self._result.completed.append(proc)
        if self._tr_exec:
            stats = proc.stats
            self._tr.instant(
                "exec",
                "end",
                now,
                tid=PROC_TID_BASE + proc.pid,
                args={
                    "pid": proc.pid,
                    "name": proc.name,
                    "instructions": stats.instructions,
                    "cpu_time": stats.cpu_time,
                    "switches": stats.switches,
                    "migrations": stats.migrations,
                    "mark_overhead_cycles": stats.mark_overhead_cycles,
                    "cycles_by_type": dict(stats.cycles_by_type),
                },
                run=self._tr_run,
            )
        if self._tr_opensys:
            self._tr.counter(
                "opensys",
                "jobs_in_system",
                now,
                float(len(self._live)),
                run=self._tr_run,
            )
        if self.runtime is not None:
            self.runtime.on_process_end(proc, now)
        if self.on_complete is not None:
            replacement = self.on_complete(proc, now)
            if replacement is not None:
                self.add_process(replacement, now)

    @property
    def now(self) -> float:
        return self._now

    def live_processes(self) -> int:
        return len(self._live)

    def snapshot_running(self) -> list:
        """Collect still-running processes into the result (call after
        :meth:`run`)."""
        running = []
        seen = {p.pid for p in self._result.completed}
        for queue_proc in self.scheduler.queued_processes():
            if queue_proc.pid not in seen:
                running.append(queue_proc)
        self._result.running = running
        return running
