"""Performance-asymmetric multicore (AMP) simulator.

The paper evaluates on real hardware: an Intel Core 2 Quad with two cores
at 2.4 GHz and two underclocked to 1.6 GHz, paired shared L2 caches, an
unmodified Linux 2.6.22 kernel with the O(1) scheduler, PAPI counters and
the process-affinity API.  This package simulates that whole substrate:

* :mod:`core` / :mod:`machine` — core types (frequency, caches) and
  machine configurations, including the paper's 4-core AMP and the
  3-core (2 fast, 1 slow) setup from Section VII;
* :mod:`cache` — a real set-associative LRU cache simulator, used to
  calibrate and validate the analytic model;
* :mod:`memory` — the analytic miss model: working sets vs capacities,
  with DRAM latency fixed in nanoseconds so stall *cycles* scale with
  clock frequency — the physical source of the IPC asymmetry the paper
  exploits;
* :mod:`cost_model` — per-block cycles and IPC per core type;
* :mod:`counters` — PAPI-like bounded hardware counter slots;
* :mod:`process` / :mod:`tracegen` — simulated processes executing
  compact hierarchical traces generated from (instrumented) programs
  plus a behaviour specification;
* :mod:`scheduler` — the Linux-O(1)-like baseline scheduler and the
  affinity API;
* :mod:`executor` — the discrete-event machine that runs workloads;
* :mod:`opensys` — the open-system engine layering dynamic arrivals,
  cancellations, and breakdown windows over the executor's event heap.
"""

from repro.sim.core import Core, CoreType
from repro.sim.machine import (
    MachineConfig,
    core2quad_amp,
    many_core_amp,
    three_core_amp,
    symmetric_machine,
)
from repro.sim.cache import SetAssociativeCache, CacheStats
from repro.sim.memory import MemoryModel, MissProfile
from repro.sim.cost_model import BlockCost, CostModel, CostVector
from repro.sim.counters import CounterBank, CounterSession
from repro.sim.process import (
    EmbeddedMark,
    Repeat,
    Segment,
    SimProcess,
    Trace,
    spawn_thread_group,
)
from repro.sim.tracegen import BehaviorSpec, TraceGenerator
from repro.sim.executor import Simulation, SimulationResult
from repro.sim.scheduler import LinuxO1Scheduler, Scheduler
from repro.sim.opensys import (
    LoadController,
    LoadPoint,
    LoadSweep,
    OpenSystemPlan,
    OpenSystemResult,
    OpenSystemRun,
    service_capacity,
)

__all__ = [
    "Core",
    "CoreType",
    "MachineConfig",
    "core2quad_amp",
    "many_core_amp",
    "three_core_amp",
    "symmetric_machine",
    "SetAssociativeCache",
    "CacheStats",
    "MemoryModel",
    "MissProfile",
    "BlockCost",
    "CostModel",
    "CostVector",
    "CounterBank",
    "CounterSession",
    "Segment",
    "Repeat",
    "Trace",
    "SimProcess",
    "EmbeddedMark",
    "spawn_thread_group",
    "BehaviorSpec",
    "TraceGenerator",
    "Simulation",
    "SimulationResult",
    "LinuxO1Scheduler",
    "Scheduler",
    "LoadController",
    "LoadPoint",
    "LoadSweep",
    "OpenSystemPlan",
    "OpenSystemResult",
    "OpenSystemRun",
    "service_capacity",
]
