"""Deterministic fault injection for the AMP simulator.

The paper's dynamic machinery leans on real-world services that fail in
practice: hardware counters are a bounded resource behind a flaky API
(Section III makes programs *wait* for them), ``sched_setaffinity`` can
return EPERM/EINVAL, cores go offline under hotplug, and DVFS governors
re-clock cores underneath a tuned assignment.  A :class:`FaultPlan`
describes a deterministic, seed-driven schedule of such faults; a
:class:`FaultInjector` realises the plan against one running
:class:`~repro.sim.executor.Simulation`.

Fault classes
=============

``counter_fail_rate``
    Probability a counter-slot acquisition spuriously fails (EAGAIN on
    top of genuine slot contention).
``counter_corrupt_rate``
    Probability a counter read returns garbage: the measured IPC is
    multiplied by a wild factor.  Outlier rejection in the runtime
    (median-of-k sampling) is the intended defence.
``ipc_noise``
    Extra multiplicative noise amplitude on every IPC sample, on top of
    the monitor's intrinsic noise.
``affinity_fail_rate``
    Probability one ``sched_setaffinity`` call fails with EPERM/EINVAL;
    the mask is left unchanged and the runtime is notified.
``slot_outages``
    Timed windows during which a core loses counter slots entirely
    (another profiler grabbed them) — the slot-exhaustion fault.
``hotplug``
    Timed core offline/online events.  The executor drains the core's
    runqueue, placement avoids offline cores, and affinity masks whose
    cores are all offline are broken kernel-style (fall back to any
    online core).  The last online core is never taken down.
``dvfs``
    Timed per-core frequency steps (a multiplier on nominal frequency).
``mem_pressure``
    Timed per-core effective-L2 shrinkage: a co-located bully (another
    VM, a prefetch storm) evicts the fraction ``shrink`` of the core's
    L2, so that share of a segment's L2-resident accesses pays the DRAM
    penalty while the pressure lasts.  A ``shrink`` of ``0.0`` restores
    the full cache.
``clock_drift``
    Static per-core multiplicative skew on *observed* cycle counters
    (TSC drift between sockets, unsynchronised APERF/MPERF): every
    cycle delta the monitor reads on a drifted core is off by the
    core's ``skew`` factor, so IPC samples taken there are consistently
    wrong.  Execution itself is unaffected — only the measurement lies,
    which is what the runtime's median-of-k sampling rung must absorb.

Determinism: the plan is pure data and the injector draws every
stochastic decision from one ``random.Random(plan.seed)`` stream, so a
given (plan, workload) pair replays bit-identically.  A null plan (all
rates zero, no events) never draws and never perturbs anything, so it
leaves simulations byte-identical to running with no plan at all.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import AffinitySyscallError, FaultError

__all__ = [
    "ClockDrift",
    "DvfsEvent",
    "FaultInjector",
    "FaultPlan",
    "HotplugEvent",
    "MemoryPressureEvent",
    "SlotOutage",
]


@dataclass(frozen=True)
class HotplugEvent:
    """One core going offline (``online=False``) or back online."""

    time: float
    core_id: int
    online: bool


@dataclass(frozen=True)
class DvfsEvent:
    """A frequency step: core ``core_id`` runs at ``scale`` × nominal."""

    time: float
    core_id: int
    scale: float


@dataclass(frozen=True)
class MemoryPressureEvent:
    """Core ``core_id`` loses the fraction ``shrink`` of its effective
    L2 from time ``time`` on (``shrink=0.0`` restores it)."""

    time: float
    core_id: int
    shrink: float


@dataclass(frozen=True)
class ClockDrift:
    """Core ``core_id``'s cycle counter reads are skewed by the
    multiplicative factor ``skew`` (1.0 means an exact counter)."""

    core_id: int
    skew: float


@dataclass(frozen=True)
class SlotOutage:
    """A window ``[start, end)`` during which ``core_id`` loses
    ``slots`` counter slots."""

    start: float
    end: float
    core_id: int
    slots: int = 1


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule (pure, picklable data).

    All rates are probabilities in ``[0, 1]``; the default plan is null
    (injects nothing).  Build scaled plans for sweeps with
    :meth:`scaled`.
    """

    seed: int = 0
    counter_fail_rate: float = 0.0
    counter_corrupt_rate: float = 0.0
    ipc_noise: float = 0.0
    affinity_fail_rate: float = 0.0
    slot_outages: tuple = ()
    hotplug: tuple = ()
    dvfs: tuple = ()
    mem_pressure: tuple = ()
    clock_drift: tuple = ()

    def __post_init__(self) -> None:
        for name in (
            "counter_fail_rate",
            "counter_corrupt_rate",
            "ipc_noise",
            "affinity_fail_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {value}")
        for event in self.hotplug:
            if event.time < 0:
                raise FaultError(f"hotplug event before t=0: {event}")
        for event in self.dvfs:
            if event.time < 0:
                raise FaultError(f"DVFS event before t=0: {event}")
            if not event.scale > 0:
                raise FaultError(f"DVFS scale must be positive: {event}")
        for outage in self.slot_outages:
            if outage.start < 0 or outage.end < outage.start:
                raise FaultError(f"bad slot outage window: {outage}")
            if outage.slots < 0:
                raise FaultError(f"negative outage slot count: {outage}")
        for event in self.mem_pressure:
            if event.time < 0:
                raise FaultError(f"memory-pressure event before t=0: {event}")
            if not 0.0 <= event.shrink <= 1.0:
                raise FaultError(
                    f"memory-pressure shrink must be in [0, 1]: {event}"
                )
        for drift in self.clock_drift:
            if not (drift.skew > 0 and math.isfinite(drift.skew)):
                raise FaultError(
                    f"clock-drift skew must be positive and finite: {drift}"
                )

    @property
    def is_null(self) -> bool:
        """True when this plan injects nothing at all."""
        return (
            self.counter_fail_rate == 0.0
            and self.counter_corrupt_rate == 0.0
            and self.ipc_noise == 0.0
            and self.affinity_fail_rate == 0.0
            and not self.slot_outages
            and not self.hotplug
            and not self.dvfs
            and not self.mem_pressure
            and not self.clock_drift
        )

    def next_event_after(self, now: float) -> float:
        """Earliest *timed* fault event strictly after *now*, or
        ``inf`` when no hotplug/DVFS/memory-pressure event remains.

        The executor's quantum-coalescing layer uses this as the fault
        half of its stability horizon: a window ``[now, T)`` with ``T``
        at or below this bound cannot straddle a machine-state change.
        Stochastic faults (counter failures, affinity-call failures,
        IPC noise) fire only inside runtime interactions, which the
        coalescing layer already excludes from windows, so they do not
        cap the horizon.
        """
        bound = math.inf
        for events in (self.hotplug, self.dvfs, self.mem_pressure):
            for event in events:
                if now < event.time < bound:
                    bound = event.time
        return bound

    @classmethod
    def scaled(
        cls,
        rate: float,
        machine,
        horizon: float,
        seed: int = 0,
        mem_pressure_rate: float = 0.0,
        clock_drift_rate: float = 0.0,
    ) -> "FaultPlan":
        """A plan whose intensity across every fault class scales with
        one knob — the x-axis of ``extras.fault_resilience``.

        Args:
            rate: overall fault intensity in ``[0, 1]``; 0 gives the
                null plan.
            machine: the :class:`~repro.sim.machine.MachineConfig` the
                plan will run against (bounds core ids).
            horizon: simulation length in seconds (bounds event times).
            seed: RNG seed; same arguments reproduce the same plan.
            mem_pressure_rate: intensity of timed memory-pressure
                windows in ``[0, 1]``.  Off by default, and drawn from
                its own RNG stream, so plans built without it are
                bit-identical to plans built before the knob existed.
            clock_drift_rate: magnitude of static per-core cycle-counter
                skew in ``[0, 1]``.  Off by default and drawn from its
                own RNG stream for the same bit-identity reason.
        """
        if not 0.0 <= rate <= 1.0:
            raise FaultError(f"fault rate must be in [0, 1], got {rate}")
        if not 0.0 <= mem_pressure_rate <= 1.0:
            raise FaultError(
                f"mem_pressure_rate must be in [0, 1], got {mem_pressure_rate}"
            )
        if not 0.0 <= clock_drift_rate <= 1.0:
            raise FaultError(
                f"clock_drift_rate must be in [0, 1], got {clock_drift_rate}"
            )
        if horizon <= 0:
            raise FaultError(f"horizon must be positive, got {horizon}")
        mem_pressure = ()
        if mem_pressure_rate > 0.0:
            mem_pressure = cls._scaled_mem_pressure(
                mem_pressure_rate, len(machine), horizon, seed
            )
        clock_drift = ()
        if clock_drift_rate > 0.0:
            clock_drift = cls._scaled_clock_drift(
                clock_drift_rate, len(machine), seed
            )
        if rate == 0.0:
            return cls(
                seed=seed, mem_pressure=mem_pressure, clock_drift=clock_drift
            )
        rng = random.Random((int(seed) << 4) ^ 0x5FA17)
        n_cores = len(machine)
        hotplug = []
        # Core 0 is never hot-unplugged (like cpu0 on most kernels), so
        # at least one core is always online whatever the plan says.
        if n_cores > 1:
            for _ in range(round(rate * 8)):
                core = rng.randrange(1, n_cores)
                start = rng.uniform(0.05, 0.70) * horizon
                length = rng.uniform(0.05, 0.25) * horizon
                end = min(start + length, 0.95 * horizon)
                hotplug.append(HotplugEvent(start, core, online=False))
                hotplug.append(HotplugEvent(end, core, online=True))
        dvfs = []
        for _ in range(round(rate * 10)):
            dvfs.append(
                DvfsEvent(
                    rng.uniform(0.05, 0.90) * horizon,
                    rng.randrange(n_cores),
                    rng.uniform(0.55, 1.0),
                )
            )
        outages = []
        for _ in range(round(rate * 6)):
            start = rng.uniform(0.0, 0.9) * horizon
            outages.append(
                SlotOutage(
                    start,
                    start + rng.uniform(0.02, 0.10) * horizon,
                    rng.randrange(n_cores),
                    slots=1,
                )
            )
        return cls(
            seed=seed,
            counter_fail_rate=0.5 * rate,
            counter_corrupt_rate=0.35 * rate,
            ipc_noise=0.25 * rate,
            affinity_fail_rate=0.5 * rate,
            slot_outages=tuple(outages),
            hotplug=tuple(hotplug),
            dvfs=tuple(dvfs),
            mem_pressure=mem_pressure,
            clock_drift=clock_drift,
        )

    @staticmethod
    def _scaled_mem_pressure(
        rate: float, n_cores: int, horizon: float, seed: int
    ) -> tuple:
        """Paired shrink/restore windows for :meth:`scaled`.  Drawn from
        a dedicated RNG stream: enabling the knob must not shift the
        draws behind the pre-existing fault classes."""
        rng = random.Random((int(seed) << 4) ^ 0x3E77)
        events = []
        for _ in range(round(rate * 6)):
            core = rng.randrange(n_cores)
            start = rng.uniform(0.05, 0.70) * horizon
            end = min(
                start + rng.uniform(0.05, 0.30) * horizon, 0.95 * horizon
            )
            shrink = rng.uniform(0.3, 0.9) * rate
            events.append(MemoryPressureEvent(start, core, shrink))
            events.append(MemoryPressureEvent(end, core, 0.0))
        return tuple(events)

    @staticmethod
    def _scaled_clock_drift(rate: float, n_cores: int, seed: int) -> tuple:
        """Per-core skew factors for :meth:`scaled`.  Dedicated RNG
        stream: enabling the knob must leave every draw behind the
        other fault classes bit-identical."""
        rng = random.Random((int(seed) << 4) ^ 0xC1D7)
        drifts = []
        for core in range(n_cores):
            # Real TSC drift is parts-per-thousand; scale up to a few
            # percent at full rate so the skew is visible to sampling.
            magnitude = rng.uniform(0.005, 0.08) * rate
            sign = 1.0 if rng.random() < 0.5 else -1.0
            drifts.append(ClockDrift(core, 1.0 + sign * magnitude))
        return tuple(drifts)


class FaultInjector:
    """Runtime realisation of a :class:`FaultPlan` for one simulation.

    One injector belongs to exactly one :class:`Simulation` run: it owns
    the RNG stream for the stochastic fault classes and the counters of
    what actually fired.  Build a fresh one (or pass the plan and let
    ``Simulation`` build it) for every run so runs stay independent.
    """

    def __init__(self, plan: FaultPlan, machine):
        n_cores = len(machine)
        for event in plan.hotplug:
            if not 0 <= event.core_id < n_cores:
                raise FaultError(f"hotplug core id out of range: {event}")
        for event in plan.dvfs:
            if not 0 <= event.core_id < n_cores:
                raise FaultError(f"DVFS core id out of range: {event}")
        for outage in plan.slot_outages:
            if not 0 <= outage.core_id < n_cores:
                raise FaultError(f"outage core id out of range: {outage}")
        for event in plan.mem_pressure:
            if not 0 <= event.core_id < n_cores:
                raise FaultError(
                    f"memory-pressure core id out of range: {event}"
                )
        for drift in plan.clock_drift:
            if not 0 <= drift.core_id < n_cores:
                raise FaultError(f"clock-drift core id out of range: {drift}")
        self.plan = plan
        self.machine = machine
        self._rng = random.Random(plan.seed)
        # Dense per-core skew table; later plan entries win.
        self._cycle_skew = [1.0] * n_cores
        for drift in plan.clock_drift:
            self._cycle_skew[drift.core_id] = drift.skew
        #: Count of faults that actually fired, per class.
        self.fired: dict = {
            "counter_fail": 0,
            "counter_corrupt": 0,
            "slot_outage_hits": 0,
            "affinity_fail": 0,
            "hotplug": 0,
            "dvfs": 0,
            "mem_pressure": 0,
            "clock_drift": 0,
            "skipped_events": 0,
        }

    # -- checkpoint/resume --------------------------------------------------

    def snapshot_state(self) -> dict:
        """The injector's cursor: RNG stream position plus fired
        counters (the plan is immutable and travels separately)."""
        return {"rng": self._rng.getstate(), "fired": dict(self.fired)}

    def restore_state(self, state: dict) -> None:
        self._rng.setstate(state["rng"])
        self.fired = dict(state["fired"])

    # -- scheduled faults ---------------------------------------------------

    def scheduled_events(self) -> list:
        """All timed events, for the simulation to enqueue at start."""
        return (
            list(self.plan.hotplug)
            + list(self.plan.dvfs)
            + list(self.plan.mem_pressure)
        )

    def note_applied(self, event) -> None:
        if isinstance(event, HotplugEvent):
            kind = "hotplug"
        elif isinstance(event, MemoryPressureEvent):
            kind = "mem_pressure"
        else:
            kind = "dvfs"
        self.fired[kind] += 1

    def note_skipped(self, event) -> None:
        """An event that could not be applied safely (e.g. offlining the
        last online core) was dropped, not crashed on."""
        self.fired["skipped_events"] += 1

    # -- stochastic faults (no RNG draws at zero rates) ---------------------

    def counter_acquire_fails(self, core_id: int, now: float) -> bool:
        """Whether this counter acquisition spuriously fails."""
        rate = self.plan.counter_fail_rate
        if rate <= 0.0:
            return False
        if self._rng.random() < rate:
            self.fired["counter_fail"] += 1
            return True
        return False

    def slots_unavailable(self, core_id: int, now: float) -> int:
        """Counter slots of *core_id* currently lost to an outage."""
        taken = 0
        for outage in self.plan.slot_outages:
            if outage.core_id == core_id and outage.start <= now < outage.end:
                taken += outage.slots
        if taken:
            self.fired["slot_outage_hits"] += 1
        return taken

    def sample_read_factor(self) -> float:
        """Multiplicative perturbation of one IPC counter read: extra
        noise, plus (rarely) a wild corruption factor."""
        factor = 1.0
        noise = self.plan.ipc_noise
        if noise > 0.0:
            factor *= 1.0 + self._rng.uniform(-noise, noise)
        rate = self.plan.counter_corrupt_rate
        if rate > 0.0 and self._rng.random() < rate:
            self.fired["counter_corrupt"] += 1
            # Up to ~20x off in either direction: clearly an outlier,
            # which is exactly what median-of-k sampling must reject.
            factor *= math.exp(self._rng.uniform(-3.0, 3.0))
        return factor

    def cycle_skew(self, core_id: int) -> float:
        """Multiplicative skew on cycle counts observed on *core_id*
        (1.0 means the counter is exact).  Draws no RNG: the skew is
        static plan data, so reading it never perturbs other fault
        streams."""
        skew = self._cycle_skew[core_id]
        if skew != 1.0:
            self.fired["clock_drift"] += 1
        return skew

    def check_affinity_call(self, pid: int, now: float) -> None:
        """Raise :class:`AffinitySyscallError` when this affinity
        syscall is chosen to fail; return normally otherwise."""
        rate = self.plan.affinity_fail_rate
        if rate <= 0.0:
            return
        if self._rng.random() < rate:
            self.fired["affinity_fail"] += 1
            errno = "EPERM" if self._rng.random() < 0.5 else "EINVAL"
            raise AffinitySyscallError(errno, pid)
