"""Scheduler interface.

The executor drives a scheduler through this small surface: ready
processes are enqueued (respecting affinity), each free core asks for
its next process, and preempted processes are requeued.  Idle cores may
steal.  A ``waker`` callback lets the scheduler wake a sleeping core
when work arrives for it.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.sim.machine import MachineConfig
from repro.sim.process import SimProcess


class Scheduler(abc.ABC):
    """Abstract scheduler over per-core runqueues."""

    #: Timeslice in seconds; the executor runs quanta of this length.
    timeslice: float = 0.05

    #: Recorder for dispatch-decision events, installed by the executor
    #: when tracing is enabled with the ``sched`` category; ``None``
    #: (the default) keeps every decision site a single falsy check.
    telemetry = None

    def attach(self, machine: MachineConfig, waker: Callable) -> None:
        """Bind to *machine*; *waker(core_id, now)* wakes an idle core."""
        self.machine = machine
        self.waker = waker

    def __getstate__(self):
        """Pickle support for checkpoints.

        ``waker`` is a bound method of the owning simulation (pickling
        it would drag the whole executor along) and ``telemetry`` is a
        live recorder; the executor re-binds both on ``attach``, so
        neither travels.
        """
        state = self.__dict__.copy()
        state.pop("waker", None)
        state["telemetry"] = None
        return state

    def snapshot_state(self) -> dict:
        """Dynamic state for checkpoint/resume.

        Stateless schedulers have none; implementations with runqueues
        or counters must override this together with
        :meth:`restore_state`.
        """
        return {}

    def restore_state(self, state: dict) -> None:
        """Install state captured by :meth:`snapshot_state`.

        Called after :meth:`attach` on a freshly constructed (or
        unpickled) scheduler; the default is a no-op to match the empty
        default snapshot.
        """

    @abc.abstractmethod
    def enqueue(self, proc: SimProcess, now: float) -> None:
        """Place a ready process on some allowed core's queue."""

    @abc.abstractmethod
    def pick(self, core_id: int, now: float) -> Optional[SimProcess]:
        """Pop the next process for *core_id* (stealing if allowed)."""

    @abc.abstractmethod
    def requeue(self, proc: SimProcess, core_id: int, now: float) -> None:
        """Return a preempted process to a queue (it may have a new
        affinity mask that excludes *core_id*)."""

    @abc.abstractmethod
    def queue_length(self, core_id: int) -> int:
        """Ready processes currently queued on *core_id*."""

    def set_core_offline(self, core_id: int, offline: bool, now: float) -> None:
        """A hotplug event took *core_id* offline (or brought it back).

        Implementations with internal queues should migrate work queued
        on an offlined core and stop placing new work there; the default
        is a no-op for schedulers without placement state.
        """

    def stability_horizon(self, core_id: int, now: float) -> float:
        """Earliest future time at which this scheduler might perturb
        *core_id*'s runqueue on its own initiative.

        The executor's quantum-coalescing layer opens a macro window
        over a core's turns only when this returns a time strictly
        after *now* — the scheduler vouching that no periodic balance
        pass, queue migration, priority boost, or other self-initiated
        mechanism is *already due* on that core.  Inside the window the
        executor still re-verifies the scheduler's own guards per turn
        with the exact stepped comparisons, so the horizon gates window
        admission; it is never a substitute for those checks.  External
        events (arrivals, affinity changes, hotplug) are the executor's
        problem — it checks for those separately.

        The contract is conservative-by-default: the base returns
        ``now``, i.e. "no guarantee", which disables coalescing for any
        scheduler that does not opt in.
        """
        return now

    def remove(self, pid: int, now: float) -> Optional[SimProcess]:
        """Remove and return the queued process with *pid* (open-system
        cancellation), or ``None`` when it is not queued.

        The conservative default supports no removal at all: the
        executor then treats the cancellation as a miss and lets the
        job run to completion, which keeps the job ledger conserved
        (the job still retires exactly once).  Implementations with
        inspectable runqueues should override this together with
        :meth:`queued_processes`.
        """
        return None

    def queued_processes(self) -> list:
        """All ready processes currently sitting in runqueues, in a
        deterministic (core-id, queue-position) order.

        Implementations with internal queues should override this; the
        default reports nothing queued, matching a scheduler that hands
        every ready process straight to a core.
        """
        return []

    def load_map(self) -> dict:
        """Queue length per core id."""
        return {c.cid: self.queue_length(c.cid) for c in self.machine.cores}
