"""A Linux-2.6 O(1)-scheduler-like baseline.

Captures what matters for the paper's comparison:

* one runqueue per core, round-robin within it at a fixed timeslice
  (a single priority level models the paper's CPU-bound batch jobs,
  which all run at the default nice level);
* wake-up placement on the least-loaded core the affinity mask allows,
  with a cheap stickiness preference for the previous core;
* work stealing when a core idles and periodic pull balancing, both
  affinity-respecting;
* complete frequency blindness — a 1.6 GHz core is as good a home as a
  2.4 GHz one, which is the pathology phase-based tuning corrects.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import SchedulingError
from repro.sim.machine import MachineConfig
from repro.sim.process import SimProcess
from repro.sim.scheduler.affinity import pick_core, validate_affinity
from repro.sim.scheduler.base import Scheduler


class LinuxO1Scheduler(Scheduler):
    """Per-core runqueues with stealing and periodic balancing.

    Args:
        timeslice: quantum length in seconds (the O(1) scheduler's
            default timeslice was 100 ms; we default to 50 ms so tuning
            decisions surface faster in short simulations).
        balance_interval: minimum seconds between periodic balance
            passes.
    """

    def __init__(self, timeslice: float = 0.05, balance_interval: float = 0.2):
        if timeslice <= 0:
            raise SchedulingError(f"timeslice must be positive, got {timeslice}")
        self.timeslice = timeslice
        self.balance_interval = balance_interval
        self._queues: dict[int, deque] = {}
        self._offline: set = set()
        self._last_balance = 0.0
        self.placements = 0
        self.steals = 0
        self.balance_moves = 0
        self.affinity_breaks = 0

    def attach(self, machine: MachineConfig, waker) -> None:
        super().attach(machine, waker)
        self._queues = {c.cid: deque() for c in machine.cores}
        self._offline = set()

    # -- checkpoint/resume ------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "queues": {cid: list(queue) for cid, queue in self._queues.items()},
            "offline": sorted(self._offline),
            "last_balance": self._last_balance,
            "placements": self.placements,
            "steals": self.steals,
            "balance_moves": self.balance_moves,
            "affinity_breaks": self.affinity_breaks,
        }

    def restore_state(self, state: dict) -> None:
        # Repopulate the attach()-built deques in place: the executor
        # aliases the _queues dict on its hot path, and keeping the
        # machine-order keys preserves _steal/load_map iteration order.
        queues = state["queues"]
        for cid, queue in self._queues.items():
            queue.clear()
            queue.extend(queues.get(cid, ()))
        self._offline = set(state["offline"])
        self._last_balance = state["last_balance"]
        self.placements = state["placements"]
        self.steals = state["steals"]
        self.balance_moves = state["balance_moves"]
        self.affinity_breaks = state["affinity_breaks"]

    # -- hotplug ----------------------------------------------------------------

    def set_core_offline(self, core_id: int, offline: bool, now: float) -> None:
        """Stop (or resume) placing work on *core_id*; migrate its queue."""
        if offline:
            self._offline.add(core_id)
            stranded = list(self._queues[core_id])
            self._queues[core_id].clear()
            for proc in stranded:
                self.enqueue(proc, now)
        else:
            self._offline.discard(core_id)

    def _usable_mask(self, mask: frozenset) -> frozenset:
        """Restrict *mask* to online cores, breaking the affinity
        kernel-style (any online core) when every allowed core is down."""
        if not self._offline:
            return mask
        usable = mask - self._offline
        if usable:
            return usable
        usable = frozenset(self._queues) - self._offline
        if not usable:
            raise SchedulingError("every core is offline")
        self.affinity_breaks += 1
        return usable

    # -- queue operations ----------------------------------------------------

    def enqueue(self, proc: SimProcess, now: float) -> None:
        mask = validate_affinity(proc.affinity, len(self.machine))
        mask = self._usable_mask(mask)
        target = pick_core(mask, self.load_map(), prefer=proc.current_core)
        self._queues[target].append(proc)
        self.placements += 1
        tr = self.telemetry
        if tr is not None:
            # Per-wakeup hook point: append the raw event tuple (see
            # repro.telemetry.events for the layout) to keep dispatch
            # cost off the scheduling fast path.
            tr.events.append(
                ("I", "sched", "place", tr.run, now, target, None,
                 {"pid": proc.pid, "target": target})
            )
        self.waker(target, now)

    def requeue(self, proc: SimProcess, core_id: int, now: float) -> None:
        # proc.affinity is validated at admission and at every change,
        # so the hot requeue path only needs the membership checks.
        if core_id in proc.affinity and core_id not in self._offline:
            self._queues[core_id].append(proc)
            self.waker(core_id, now)
        else:
            self.enqueue(proc, now)

    def pick(self, core_id: int, now: float) -> Optional[SimProcess]:
        if core_id in self._offline:
            return None
        # _maybe_balance's early-exit guard, inlined: pick runs once per
        # quantum and balancing is due only every balance_interval.
        if now - self._last_balance >= self.balance_interval:
            self._maybe_balance(now)
        queue = self._queues[core_id]
        if queue:
            return queue.popleft()
        return self._steal(core_id, now)

    def queue_length(self, core_id: int) -> int:
        return len(self._queues[core_id])

    def remove(self, pid: int, now: float) -> Optional[SimProcess]:
        """Surgically pull a queued process out by pid (open-system
        cancellation), scanning queues in machine order like
        :meth:`queued_processes` enumerates them."""
        for cid, queue in self._queues.items():
            for i, proc in enumerate(queue):
                if proc.pid == pid:
                    del queue[i]
                    tr = self.telemetry
                    if tr is not None:
                        tr.events.append(
                            ("I", "sched", "remove", tr.run, now, cid,
                             None, {"pid": pid, "from": cid})
                        )
                    return proc
        return None

    def stability_horizon(self, core_id: int, now: float) -> float:
        """Until the next periodic balance pass is due, this scheduler
        touches a core's queue only through pick/requeue on that core
        (stealing needs an *empty* queue, which the coalescing layer
        rules out separately), so the horizon is the balance due time.

        The executor treats a horizon at or below *now* as a refusal
        and steps the next turn normally; a future horizon admits a
        macro window, inside which the executor re-verifies the balance
        guard per turn with the exact stepped comparison (so the
        horizon only ever gates window *admission*, never replaces the
        guard).
        """
        if core_id in self._offline:
            return now
        return self._last_balance + self.balance_interval

    def queued_processes(self) -> list:
        procs = []
        for queue in self._queues.values():
            procs.extend(queue)
        return procs

    def load_map(self) -> dict:
        return {cid: len(queue) for cid, queue in self._queues.items()}

    # -- balancing -------------------------------------------------------------

    def _steal(self, thief: int, now: float = 0.0) -> Optional[SimProcess]:
        """Pull one allowed process from the busiest other core."""
        donors = sorted(
            (cid for cid in self._queues if cid != thief),
            key=lambda cid: -len(self._queues[cid]),
        )
        for donor in donors:
            queue = self._queues[donor]
            if not queue:
                break
            # Scan from the cold end so the donor keeps its hot task.
            for i in range(len(queue) - 1, -1, -1):
                proc = queue[i]
                if thief in proc.affinity:
                    del queue[i]
                    self.steals += 1
                    tr = self.telemetry
                    if tr is not None:
                        tr.events.append(
                            ("I", "sched", "steal", tr.run, now, thief,
                             None, {"pid": proc.pid, "from": donor})
                        )
                    return proc
        return None

    def _maybe_balance(self, now: float) -> None:
        """Periodic pull balancing: even out queue lengths."""
        if now - self._last_balance < self.balance_interval:
            return
        self._last_balance = now
        if not self._offline:
            # Cheap no-move exit: a move needs a length spread of at
            # least 2, and this max/min over the deques is the same
            # busiest-minus-idlest the loop below would compute (its
            # tie-break keys only pick WHICH extreme core, not the
            # extreme length), without building the load_map dict.
            hi = -1
            lo = 1 << 30
            for queue in self._queues.values():
                length = len(queue)
                if length > hi:
                    hi = length
                if length < lo:
                    lo = length
            if hi - lo < 2:
                return
        moved = True
        while moved:
            moved = False
            load = self.load_map()
            if self._offline:
                load = {
                    cid: length
                    for cid, length in load.items()
                    if cid not in self._offline
                }
                if len(load) < 2:
                    return
            busiest = max(load, key=lambda cid: (load[cid], -cid))
            idlest = min(load, key=lambda cid: (load[cid], cid))
            if load[busiest] - load[idlest] < 2:
                return
            queue = self._queues[busiest]
            for i in range(len(queue) - 1, -1, -1):
                proc = queue[i]
                if idlest in proc.affinity:
                    del queue[i]
                    self._queues[idlest].append(proc)
                    self.balance_moves += 1
                    tr = self.telemetry
                    if tr is not None:
                        tr.events.append(
                            ("I", "sched", "balance", tr.run, now, idlest,
                             None, {"pid": proc.pid, "from": busiest})
                        )
                    self.waker(idlest, now)
                    moved = True
                    break
