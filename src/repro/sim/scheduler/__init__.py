"""Schedulers for the AMP simulator.

:class:`LinuxO1Scheduler` models the stock Linux 2.6.22 O(1) scheduler
the paper compares against: per-core runqueues, fixed timeslices,
work-stealing when a core idles and periodic balancing — all affinity-
respecting but completely frequency-blind, which is precisely the
inefficiency phase-based tuning exploits.  The affinity module is the
``sched_setaffinity`` analogue phase marks call through.
"""

from repro.sim.scheduler.base import Scheduler
from repro.sim.scheduler.linux_o1 import LinuxO1Scheduler
from repro.sim.scheduler.affinity import (
    MIGRATION_CYCLES,
    pick_core,
    validate_affinity,
)

__all__ = [
    "Scheduler",
    "LinuxO1Scheduler",
    "MIGRATION_CYCLES",
    "pick_core",
    "validate_affinity",
]
