"""The process-affinity API ("the standard process affinity API
available for Linux, kernel ver. >= 2.5").

Phase marks change where a process may run by shrinking or moving its
affinity mask; the scheduler honours the mask at every placement
decision.  A core switch costs :data:`MIGRATION_CYCLES` cycles — the
paper measured "approximately 1000 cycles" per switch with an
alternating-cores microbenchmark.
"""

from __future__ import annotations

from repro.errors import SchedulingError

#: Cycles one core switch costs (cache refill + kernel migration path).
MIGRATION_CYCLES = 1000.0


def validate_affinity(mask: frozenset, n_cores: int) -> frozenset:
    """Check an affinity mask.

    Raises:
        SchedulingError: if the mask is empty or names unknown cores.
    """
    if not mask:
        raise SchedulingError("affinity mask excludes every core")
    bad = [cid for cid in mask if not 0 <= cid < n_cores]
    if bad:
        raise SchedulingError(f"affinity names unknown cores {sorted(bad)}")
    return frozenset(mask)


def pick_core(mask: frozenset, load: dict, prefer: int = None) -> int:
    """Pick the least-loaded allowed core (ties: lowest id).

    Args:
        mask: allowed core ids.
        load: current queue length per core id.
        prefer: return this core if allowed and not busier than the best
            alternative (cheap cache-affinity heuristic).
    """
    best = min(sorted(mask), key=lambda cid: (load.get(cid, 0), cid))
    if prefer is not None and prefer in mask:
        if load.get(prefer, 0) <= load.get(best, 0):
            return prefer
    return best
