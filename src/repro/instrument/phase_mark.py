"""Phase marks: the code-and-data fragments inserted at transitions.

A phase mark "contains information about the phase type for the current
section, code for dynamic performance analysis, and code for making core
switching decisions".  Its physical shape follows Section III: the
instrumentation is finely tuned so the inline cost is "an unconditional
jump and a relatively small number of pushes"; the body lives in an
out-of-line trampoline.

Byte budget (matching the paper's "each phase mark is at most 78 bytes"):

=====================  =====
component              bytes
=====================  =====
trampoline code           31
descriptor data           40
inline jump (only on       5
fall-through edges;
branch edges retarget
for free)
=====================  =====
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.isa.encoding import code_size
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import GPR, Register
from repro.analysis.transitions import TransitionPoint

#: Synthetic syscall number through which mark code reaches the runtime.
SYS_PHASE_MARK = 0x20

#: Per-mark descriptor data: phase type (4), mark id (4), runtime state
#: pointer (8), monitoring scratch (16), cached target core mask (8).
MARK_DATA_BYTES = 40

#: Cycles one mark firing costs when no switch happens (executing the
#: trampoline: jump, saves, runtime check, restores, jump back — about
#: thirteen specialized instructions on a superscalar pipeline).
MARK_FIRE_CYCLES = 15

#: Extra cycles when monitoring code runs (counter reads/bookkeeping).
MARK_MONITOR_CYCLES = 120


#: Registers the mark body clobbers (the syscall ABI's scratch set).
CLOBBERED_REGISTERS = ("r0", "r1", "r2")


def mark_trampoline(
    mark_id: int,
    phase_type: int,
    back_label: str,
    saves: tuple = CLOBBERED_REGISTERS,
) -> list[Instruction]:
    """Build the out-of-line trampoline for one mark.

    Saves the clobbered registers that are live at the insertion point
    (Section III's live-register analysis: the default saves all three
    scratch registers; the rewriter passes a smaller set where liveness
    allows), passes the phase type and mark id to the runtime via the
    ``SYS_PHASE_MARK`` syscall, restores, and jumps back to the marked
    section's entry.
    """
    save_regs = [Register.get(name) for name in saves]
    body = [Instruction(Opcode.PUSH, (r,)) for r in save_regs]
    body += [
        Instruction(Opcode.MOVI, (GPR[0], phase_type)),
        Instruction(Opcode.MOVI, (GPR[1], mark_id)),
        Instruction(Opcode.SYS, (SYS_PHASE_MARK,)),
    ]
    body += [Instruction(Opcode.POP, (r,)) for r in reversed(save_regs)]
    body.append(Instruction(Opcode.JMP, (back_label,)))
    return body


#: Size in bytes of one inline jump stub (fall-through edges only).
INLINE_JUMP_BYTES = 5


@dataclass(frozen=True)
class PhaseMark:
    """One phase mark placed at a transition point.

    Attributes:
        mark_id: program-wide unique id, passed to the runtime.
        point: the transition point this mark instruments.
        fallthrough_edges: how many trigger edges were fall-through and
            needed an inline jump stub.
        saves: names of the clobbered registers that are live at the
            insertion point and therefore saved/restored.
    """

    mark_id: int
    point: TransitionPoint
    fallthrough_edges: int = 0
    saves: tuple = CLOBBERED_REGISTERS

    @property
    def phase_type(self) -> int:
        return self.point.phase_type

    @cached_property
    def trampoline_bytes(self) -> int:
        return code_size(
            mark_trampoline(self.mark_id, self.phase_type, "x", self.saves)
        )

    @cached_property
    def entry_inline_bytes(self) -> int:
        """Inline body of a procedure-entry mark (trampoline minus the
        back jump, spliced straight into the entry block)."""
        return code_size(
            mark_trampoline(self.mark_id, self.phase_type, "x", self.saves)[:-1]
        )

    @property
    def data_bytes(self) -> int:
        return MARK_DATA_BYTES

    @property
    def total_bytes(self) -> int:
        """Everything this mark adds to the binary, exactly matching
        what :meth:`InstrumentedProgram.materialize` splices in."""
        total = self.data_bytes + self.fallthrough_edges * INLINE_JUMP_BYTES
        if self.point.trigger_edges:
            total += self.trampoline_bytes
        if self.point.at_proc_entry:
            total += self.entry_inline_bytes
        return total

    def __repr__(self) -> str:
        return (
            f"PhaseMark(#{self.mark_id}, type={self.phase_type}, "
            f"at={self.point.uid}, {self.total_bytes}B)"
        )
