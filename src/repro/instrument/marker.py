"""Marking strategies — the paper's technique variants.

The evaluation names variants ``BB[min,lookahead]`` (basic-block
technique), ``Int[min]`` (interval technique), and ``Loop[min]`` (loop
technique); Table 2 sweeps eighteen of them.  Each strategy computes the
transition points for its sectioning granularity.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Protocol

from repro.errors import InstrumentationError
from repro.analysis.annotate import AttributedProgram
from repro.analysis.transitions import (
    TransitionPoint,
    basic_block_transitions,
    interval_transitions,
    loop_transitions,
)


class MarkingStrategy(Protocol):
    """A technique for choosing phase-transition points."""

    @property
    def name(self) -> str:
        """Display name, e.g. ``"Loop[45]"``."""
        ...

    def compute_points(self, aprog: AttributedProgram) -> list[TransitionPoint]:
        """Select the transition points to mark."""
        ...


@dataclass(frozen=True)
class BBStrategy:
    """Basic-block technique with a minimum block size and lookahead."""

    min_size: int = 10
    lookahead: int = 0

    @property
    def name(self) -> str:
        return f"BB[{self.min_size},{self.lookahead}]"

    def compute_points(self, aprog: AttributedProgram) -> list[TransitionPoint]:
        return basic_block_transitions(aprog, self.min_size, self.lookahead)


@dataclass(frozen=True)
class IntervalStrategy:
    """Interval technique with a minimum interval size."""

    min_size: int = 45

    @property
    def name(self) -> str:
        return f"Int[{self.min_size}]"

    def compute_points(self, aprog: AttributedProgram) -> list[TransitionPoint]:
        return interval_transitions(aprog, self.min_size)


@dataclass(frozen=True)
class LoopStrategy:
    """Inter-procedural loop technique with a minimum loop size."""

    min_size: int = 45
    eliminate_same_type_callees: bool = True

    @property
    def name(self) -> str:
        return f"Loop[{self.min_size}]"

    def compute_points(self, aprog: AttributedProgram) -> list[TransitionPoint]:
        return loop_transitions(
            aprog,
            self.min_size,
            eliminate_same_type_callees=self.eliminate_same_type_callees,
        )


_STRATEGY_RE = re.compile(
    r"^(?P<kind>BB|Int|Loop)\[(?P<min>\d+)(?:,(?P<look>\d+))?\]$"
)


def parse_strategy(name: str) -> MarkingStrategy:
    """Parse a strategy name like ``"BB[15,2]"`` or ``"Loop[45]"``.

    Raises:
        InstrumentationError: if the name is malformed.
    """
    match = _STRATEGY_RE.match(name.strip())
    if match is None:
        raise InstrumentationError(f"malformed strategy name {name!r}")
    kind = match.group("kind")
    min_size = int(match.group("min"))
    look = match.group("look")
    if kind == "BB":
        return BBStrategy(min_size, int(look or 0))
    if look is not None:
        raise InstrumentationError(
            f"{kind} strategies take no lookahead: {name!r}"
        )
    if kind == "Int":
        return IntervalStrategy(min_size)
    return LoopStrategy(min_size)
