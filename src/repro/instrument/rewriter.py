"""The binary rewriter: splice phase marks into programs.

:func:`instrument` runs the whole static half of phase-based tuning in
one call — block typing, transition analysis for the chosen strategy,
mark construction — and returns an :class:`InstrumentedProgram` that

* knows the exact byte overhead of every mark (Figure 3),
* indexes marks by trigger edge and procedure entry for the simulator's
  trace generator, and
* can ``materialize()`` a physically rewritten
  :class:`~repro.program.module.Program` in which every mark is a real
  trampoline reachable from its retargeted branches and jump stubs — the
  analogue of what the paper's Binutils-based framework emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from repro.errors import InstrumentationError
from repro.isa.encoding import code_size
from repro.isa.instructions import Instruction, Opcode
from repro.program.cfg import CFG
from repro.program.module import Procedure, Program
from repro.analysis.annotate import AttributedProgram, annotate_program
from repro.analysis.block_typing import BlockTyping, StaticBlockTyper
from repro.analysis.liveness import compute_liveness
from repro.analysis.transitions import TransitionPoint
from repro.instrument.marker import MarkingStrategy
from repro.instrument.phase_mark import (
    CLOBBERED_REGISTERS,
    INLINE_JUMP_BYTES,
    MARK_DATA_BYTES,
    PhaseMark,
    mark_trampoline,
)


def _is_fallthrough_edge(cfg: CFG, src: int, dst: int) -> bool:
    """True if edge (src, dst) exists only by block adjacency, so an
    inline jump stub is needed to divert it through a trampoline."""
    src_block = cfg.blocks[src]
    last = src_block.instrs[-1]
    target = last.label_target
    if target is not None:
        # Does the explicit target land on dst?  Then the branch can be
        # retargeted for free.
        dst_start = cfg.blocks[dst].start
        proc_labels = _LABELS_CACHE.get(id(cfg))
        if proc_labels is not None and proc_labels.get(target) == dst_start:
            return False
    if last.opcode is Opcode.JMP:
        return False  # Direct jump: always retargetable.
    return dst == src + 1


#: CFG id -> label table of the owning procedure (set by instrument()).
_LABELS_CACHE: dict = {}


@dataclass
class InstrumentedProgram:
    """A program plus its phase marks.

    The simulator consumes the logical index (``mark_at_edge`` /
    ``entry_mark``); tests and the overhead experiments consume the byte
    accounting and the ``materialize()`` output.
    """

    program: Program
    aprog: AttributedProgram
    strategy_name: str
    marks: list[PhaseMark]
    _edge_index: dict = field(default_factory=dict)
    _entry_index: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for mark in self.marks:
            point = mark.point
            for edge in point.trigger_edges:
                self._edge_index[(point.proc, edge[0], edge[1])] = mark
            if point.at_proc_entry:
                self._entry_index[point.proc] = mark

    @property
    def typing(self) -> BlockTyping:
        return self.aprog.typing

    def mark_at_edge(self, proc: str, src: int, dst: int) -> Optional[PhaseMark]:
        """The mark triggered by traversing CFG edge (src, dst), if any."""
        return self._edge_index.get((proc, src, dst))

    def entry_mark(self, proc: str) -> Optional[PhaseMark]:
        """The mark fired on entering *proc*, if any."""
        return self._entry_index.get(proc)

    # -- overhead accounting (Figure 3) ------------------------------------

    @property
    def added_bytes(self) -> int:
        """Total bytes of mark code and data added to the binary."""
        return sum(mark.total_bytes for mark in self.marks)

    @cached_property
    def original_bytes(self) -> int:
        return self.program.size_bytes + MARK_DATA_BYTES  # headers etc.

    @property
    def space_overhead(self) -> float:
        """Fractional size increase over the original binary."""
        return self.added_bytes / self.program.size_bytes

    def __repr__(self) -> str:
        return (
            f"InstrumentedProgram({self.program.name!r}, "
            f"{self.strategy_name}, {len(self.marks)} marks, "
            f"+{self.added_bytes}B / {self.space_overhead:.2%})"
        )

    # -- physical rewriting -------------------------------------------------

    def materialize(self) -> Program:
        """Produce a physically rewritten program with real trampolines.

        Every marked edge is diverted through its mark's trampoline:
        explicit branches are retargeted; fall-through edges get an
        inline jump stub.  Procedure-entry marks are inlined before the
        first instruction.  The result validates and has the same
        observable control flow (trampolines always return to the
        section entry they guard).
        """
        new_procs: dict[str, Procedure] = {}
        for proc in self.program:
            new_procs[proc.name] = self._materialize_proc(proc)
        return Program(
            new_procs,
            entry=self.program.entry,
            regions=dict(self.program.regions),
            name=self.program.name + ".tuned",
        )

    def _materialize_proc(self, proc: Procedure) -> Procedure:
        cfg = self.aprog.cfgs[proc.name]
        block_label = {b.index: f".B{b.index}" for b in cfg.blocks}
        start_to_block = {b.start: b.index for b in cfg.blocks}

        proc_marks = [m for m in self.marks if m.point.proc == proc.name]
        tramp_label = {m.mark_id: f".PM{m.mark_id}" for m in proc_marks}

        code: list[Instruction] = []
        labels: dict[str, int] = {}

        def place(label: str) -> None:
            if label in labels:
                raise InstrumentationError(
                    f"duplicate label {label!r} while rewriting {proc.name!r}"
                )
            labels[label] = len(code)

        entry = self._entry_index.get(proc.name)
        for block in cfg.blocks:
            place(block_label[block.index])
            if entry is not None and block.index == 0:
                # Inline entry mark: trampoline body minus the back jump.
                code.extend(
                    mark_trampoline(
                        entry.mark_id, entry.phase_type, "x", entry.saves
                    )[:-1]
                )
            body = block.instrs
            for instr in body[:-1]:
                code.append(instr)
            last = body[-1]
            code.append(self._rewrite_terminator(proc, cfg, block, last, tramp_label, block_label))
            # Fall-through handling.
            fall_dst = self._fallthrough_successor(cfg, block)
            if fall_dst is not None:
                mark = self._edge_index.get((proc.name, block.index, fall_dst))
                if mark is not None and _is_fallthrough_edge(
                    cfg, block.index, fall_dst
                ):
                    code.append(
                        Instruction(Opcode.JMP, (tramp_label[mark.mark_id],))
                    )

        for mark in proc_marks:
            if not mark.point.trigger_edges:
                continue
            place(tramp_label[mark.mark_id])
            back = block_label[mark.point.entry_block]
            code.extend(
                mark_trampoline(mark.mark_id, mark.phase_type, back, mark.saves)
            )

        del start_to_block  # only used implicitly via block bounds
        return Procedure(proc.name, code, labels)

    def _rewrite_terminator(
        self,
        proc: Procedure,
        cfg: CFG,
        block,
        last: Instruction,
        tramp_label: dict,
        block_label: dict,
    ) -> Instruction:
        """Retarget a block's final instruction to block/trampoline labels."""
        target = last.label_target
        if target is None:
            return last
        dst_start = proc.resolve(target)
        dst = next(
            (b.index for b in cfg.blocks if b.start == dst_start), None
        )
        if dst is None:
            raise InstrumentationError(
                f"branch target {target!r} in {proc.name!r} is not a leader"
            )
        mark = self._edge_index.get((proc.name, block.index, dst))
        new_target = (
            tramp_label[mark.mark_id] if mark is not None else block_label[dst]
        )
        if last.opcode is Opcode.JMP:
            return Instruction(Opcode.JMP, (new_target,))
        return Instruction(Opcode.BR, (last.operands[0], new_target))

    @staticmethod
    def _fallthrough_successor(cfg: CFG, block) -> Optional[int]:
        """The adjacency successor of *block*, if control can fall through."""
        last = block.instrs[-1]
        if last.is_terminator:
            return None
        nxt = block.index + 1
        if nxt >= len(cfg.blocks):
            return None
        return nxt


def build_marks(
    aprog: AttributedProgram, points: list[TransitionPoint]
) -> list[PhaseMark]:
    """Turn transition points into phase marks with byte accounting.

    Applies Section III's live-register analysis: a mark saves only the
    clobbered scratch registers that are live at the section entry it
    guards, shrinking the trampoline.
    """
    liveness_cache: dict = {}
    marks = []
    for mark_id, point in enumerate(sorted(points, key=lambda p: p.uid)):
        cfg = aprog.cfgs[point.proc]
        _LABELS_CACHE[id(cfg)] = aprog.program[point.proc].labels
        fallthrough = sum(
            1
            for (src, dst) in point.trigger_edges
            if _is_fallthrough_edge(cfg, src, dst)
        )
        liveness = liveness_cache.get(point.proc)
        if liveness is None:
            liveness = compute_liveness(cfg)
            liveness_cache[point.proc] = liveness
        live = liveness.live_at_block_entry(point.entry_block)
        saves = tuple(r for r in CLOBBERED_REGISTERS if r in live)
        marks.append(PhaseMark(mark_id, point, fallthrough, saves))
    return marks


def instrument(
    program: Program,
    strategy: MarkingStrategy,
    typing: Optional[BlockTyping] = None,
    typer: Optional[object] = None,
    aprog: Optional[AttributedProgram] = None,
) -> InstrumentedProgram:
    """Run the full static pipeline and return the instrumented program.

    Args:
        program: the binary to tune.
        strategy: sectioning technique, e.g. ``LoopStrategy(45)``.
        typing: a pre-computed block typing (e.g. with injected error).
        typer: used to compute a typing when none is given; defaults to
            :class:`~repro.analysis.block_typing.StaticBlockTyper`.
        aprog: reuse a pre-annotated program (must match *typing*).
    """
    if aprog is None:
        if typing is None:
            typer = typer or StaticBlockTyper()
            typing = typer.type_blocks(program)
        aprog = annotate_program(program, typing)
    points = strategy.compute_points(aprog)
    marks = build_marks(aprog, points)
    return InstrumentedProgram(program, aprog, strategy.name, marks)
