"""Binary instrumentation: phase marks and the rewriter (Sections II-A2, III).

Phase transition points become *phase marks*: small code-and-data
fragments spliced into the binary.  Following the paper's implementation
notes, the inline footprint is a single unconditional jump to an
out-of-line trampoline that saves a few registers, invokes the runtime
(type id + mark id), restores, and jumps to the section entry; branches
that target a marked edge are simply retargeted to the trampoline at zero
inline cost.  No compiler or OS cooperation is required.

:class:`~repro.instrument.marker.MarkingStrategy` names the paper's
technique variants (``BB[min,look]``, ``Int[min]``, ``Loop[min]``);
:func:`~repro.instrument.rewriter.instrument` runs typing, transition
analysis and mark construction in one call and accounts the exact byte
overhead; ``materialize()`` produces a physically rewritten
:class:`~repro.program.module.Program`.  :mod:`atom_baseline` provides
the every-block ATOM-style instrumenter used for the overhead comparison
of Section III.
"""

from repro.instrument.phase_mark import (
    PhaseMark,
    SYS_PHASE_MARK,
    MARK_DATA_BYTES,
    mark_trampoline,
)
from repro.instrument.marker import (
    BBStrategy,
    IntervalStrategy,
    LoopStrategy,
    MarkingStrategy,
    parse_strategy,
)
from repro.instrument.rewriter import InstrumentedProgram, instrument
from repro.instrument.atom_baseline import AtomInstrumenter

__all__ = [
    "PhaseMark",
    "SYS_PHASE_MARK",
    "MARK_DATA_BYTES",
    "mark_trampoline",
    "BBStrategy",
    "IntervalStrategy",
    "LoopStrategy",
    "MarkingStrategy",
    "parse_strategy",
    "InstrumentedProgram",
    "instrument",
    "AtomInstrumenter",
]
