"""ATOM-style every-block instrumentation baseline (Section III).

The paper reports that binaries instrumented with its tuned framework
"execute 10 times faster" than with ATOM-style general instrumentation,
crediting code specialization, live-register analysis, and instruction
motion.  This module models the general strategy the comparison is
against: a fragment before *every* basic block that conservatively saves
and restores the full register file around a generic analysis callout —
no specialization, no liveness, no motion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.encoding import code_size
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import GPR
from repro.program.basic_block import NodeKind
from repro.program.module import Program
from repro.analysis.block_typing import build_all_cfgs

#: Syscall number of the generic ATOM-style analysis callout.
SYS_ATOM_PROBE = 0x21

#: Cycles one ATOM-style probe costs: full register save/restore plus a
#: generic (non-specialized) analysis call.  ~10x a tuned phase mark.
ATOM_PROBE_CYCLES = 300


def atom_fragment(block_id: int) -> list[Instruction]:
    """The conservative per-block fragment: save all sixteen GPRs, call
    the generic probe with the block id, restore."""
    saves = [Instruction(Opcode.PUSH, (r,)) for r in GPR]
    restores = [Instruction(Opcode.POP, (r,)) for r in reversed(GPR)]
    body = [
        Instruction(Opcode.MOVI, (GPR[0], block_id)),
        Instruction(Opcode.SYS, (SYS_ATOM_PROBE,)),
    ]
    return saves + body + restores


@dataclass(frozen=True)
class AtomInstrumentation:
    """Result of ATOM-style instrumentation of one program.

    Attributes:
        probe_count: number of instrumented blocks.
        added_bytes: bytes of fragments added.
        probe_cycles: dynamic cycles per probe execution.
    """

    program_name: str
    probe_count: int
    added_bytes: int
    probe_cycles: int = ATOM_PROBE_CYCLES

    @property
    def space_overhead_for(self):  # pragma: no cover - convenience only
        raise AttributeError("use space_overhead(program)")

    def space_overhead(self, program: Program) -> float:
        return self.added_bytes / program.size_bytes


class AtomInstrumenter:
    """Instrument every basic block, ATOM-style."""

    def instrument(self, program: Program) -> AtomInstrumentation:
        """Account the fragments an every-block instrumentation adds."""
        cfgs = build_all_cfgs(program)
        probes = 0
        added = 0
        block_id = 0
        for proc in program:
            for block in cfgs[proc.name]:
                if block.kind is not NodeKind.BLOCK or len(block) == 0:
                    continue
                probes += 1
                added += code_size(atom_fragment(block_id))
                block_id += 1
        return AtomInstrumentation(program.name, probes, added)
