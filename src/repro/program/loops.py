"""Natural-loop detection and the loop nesting forest.

Loops are found from back edges (edges whose target dominates their
source, already tagged by the CFG builder) using the standard natural-loop
construction from Muchnick.  Loops sharing a header are merged.  The
nesting forest (parent / children / depth) is what Algorithm 1's
nesting-level weights ``wn(λ)`` and its nested-loop rules consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.program.cfg import CFG


@dataclass
class Loop:
    """A natural loop in one procedure's CFG.

    Attributes:
        header: block index of the loop header (single entry).
        body: all block indices in the loop, header included.
        parent: immediately enclosing loop, if any.
        children: loops immediately nested inside this one.
        depth: nesting depth; outermost loops have depth 0.
    """

    proc: str
    header: int
    body: frozenset
    parent: Optional["Loop"] = None
    children: list["Loop"] = field(default_factory=list)
    depth: int = 0

    @property
    def uid(self) -> str:
        """Program-wide unique identifier, e.g. ``"main@loop4"``."""
        return f"{self.proc}@loop{self.header}"

    def contains(self, other: "Loop") -> bool:
        """True if *other* is strictly nested inside this loop."""
        return other is not self and other.body <= self.body

    def properly_contains_block(self, block: int) -> bool:
        return block in self.body

    def nesting_of(self, block: int) -> int:
        """How many of this loop's descendants (including itself) contain
        *block*; used as the nesting level λ in Algorithm 1."""
        count = 0
        stack: list[Loop] = [self]
        while stack:
            loop = stack.pop()
            if block in loop.body:
                count += 1
                stack.extend(loop.children)
        return count

    def __len__(self) -> int:
        return len(self.body)

    def __repr__(self) -> str:
        return f"Loop({self.uid}, depth={self.depth}, |body|={len(self.body)})"


def find_loops(cfg: CFG) -> list[Loop]:
    """Return all natural loops of *cfg* with nesting links filled in.

    Loops are returned sorted innermost-first (deepest nesting first,
    smaller bodies before larger), the order Algorithm 1 wants.
    """
    # Natural loop of each back edge t -> h: h plus every node that can
    # reach t without passing through h.
    bodies: dict[int, set[int]] = {}
    for edge in cfg.back_edges():
        header, tail = edge.dst, edge.src
        body = bodies.setdefault(header, {header})
        if tail in body:
            continue
        stack = [tail]
        body.add(tail)
        while stack:
            node = stack.pop()
            for pred in cfg.preds(node):
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)

    loops = [
        Loop(cfg.proc_name, header, frozenset(body))
        for header, body in sorted(bodies.items())
    ]

    # Nesting: parent of L is the smallest loop strictly containing it.
    for loop in loops:
        candidates = [other for other in loops if other.contains(loop)]
        if candidates:
            loop.parent = min(candidates, key=lambda l: len(l.body))
            loop.parent.children.append(loop)

    def assign_depth(loop: Loop, depth: int) -> None:
        loop.depth = depth
        for child in loop.children:
            assign_depth(child, depth + 1)

    for loop in loops:
        if loop.parent is None:
            assign_depth(loop, 0)

    loops.sort(key=lambda l: (-l.depth, len(l.body), l.header))
    return loops


def block_nesting_levels(cfg: CFG, loops: list[Loop]) -> dict[int, int]:
    """Map each block index to the number of loops containing it."""
    levels = {b: 0 for b in range(len(cfg))}
    for loop in loops:
        for block in loop.body:
            levels[block] += 1
    return levels
