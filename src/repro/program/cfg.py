"""Leader-based CFG construction with forward/backward edge tagging.

Following the paper (Section II-A1), a control-flow graph here is
``⟨N, E, η0⟩``: nodes are attributed basic blocks plus special nodes for
calls and system calls, edges carry a ``b``/``f`` tag for backward vs
forward flow, and ``η0`` is the entry block.  Edge direction tags are
computed from dominators: an edge is *backward* iff its target dominates
its source (the natural-loop back-edge criterion); all interval and loop
traversals in :mod:`repro.analysis` ignore backward edges, as the paper
prescribes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ProgramStructureError
from repro.isa.instructions import Instruction, Opcode
from repro.program.basic_block import BasicBlock, NodeKind
from repro.program.module import Procedure

#: Edge kind tags, as in the paper's E ⊆ N × N × {b, f}.
BACKWARD = "b"
FORWARD = "f"


@dataclass(frozen=True)
class Edge:
    """A tagged control-flow edge between block indices."""

    src: int
    dst: int
    kind: str  # BACKWARD or FORWARD


class CFG:
    """An intra-procedural control-flow graph.

    Blocks are indexed densely ``0..n-1`` in program order; block 0 is the
    entry ``η0``.  Successor/predecessor queries return block indices.
    """

    def __init__(self, proc_name: str, blocks: list[BasicBlock], edges: list[Edge]):
        self.proc_name = proc_name
        self.blocks = blocks
        self.edges = edges
        self._succs: list[list[Edge]] = [[] for _ in blocks]
        self._preds: list[list[Edge]] = [[] for _ in blocks]
        for e in edges:
            if not (0 <= e.src < len(blocks) and 0 <= e.dst < len(blocks)):
                raise ProgramStructureError(
                    f"edge {e} out of range in CFG of {proc_name!r}"
                )
            self._succs[e.src].append(e)
            self._preds[e.dst].append(e)

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    @property
    def entry(self) -> BasicBlock:
        """The entry node η0."""
        return self.blocks[0]

    def succs(self, idx: int, ignore_back: bool = False) -> list[int]:
        """Successor block indices of *idx*.

        Args:
            ignore_back: drop backward edges (used by the summarization
                traversals, which the paper runs on forward edges only).
        """
        return [
            e.dst
            for e in self._succs[idx]
            if not (ignore_back and e.kind == BACKWARD)
        ]

    def preds(self, idx: int, ignore_back: bool = False) -> list[int]:
        """Predecessor block indices of *idx*."""
        return [
            e.src
            for e in self._preds[idx]
            if not (ignore_back and e.kind == BACKWARD)
        ]

    def out_edges(self, idx: int) -> list[Edge]:
        return list(self._succs[idx])

    def in_edges(self, idx: int) -> list[Edge]:
        return list(self._preds[idx])

    def back_edges(self) -> list[Edge]:
        """All edges tagged backward."""
        return [e for e in self.edges if e.kind == BACKWARD]

    def reverse_postorder(self) -> list[int]:
        """Block indices in reverse postorder from the entry."""
        seen = [False] * len(self.blocks)
        order: list[int] = []

        # Iterative DFS with an explicit stack to avoid recursion limits on
        # large generated procedures.
        stack: list[tuple[int, Iterator[int]]] = []
        seen[0] = True
        stack.append((0, iter(self.succs(0))))
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if not seen[nxt]:
                    seen[nxt] = True
                    stack.append((nxt, iter(self.succs(nxt))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def __repr__(self) -> str:
        return f"CFG({self.proc_name!r}, {len(self.blocks)} blocks, {len(self.edges)} edges)"


def _find_leaders(proc: Procedure) -> set[int]:
    """Instruction indices that start a basic block."""
    leaders = {0}
    for i, instr in enumerate(proc.code):
        target = instr.label_target
        if target is not None:
            resolved = proc.resolve(target)
            if resolved >= len(proc.code):
                raise ProgramStructureError(
                    f"control flows past the end of procedure "
                    f"{proc.name!r} (branch to end label {target!r})"
                )
            leaders.add(resolved)
        if instr.ends_block and i + 1 < len(proc.code):
            leaders.add(i + 1)
        # Calls and syscalls become their own special nodes.
        if instr.is_call or instr.opcode is Opcode.SYS:
            leaders.add(i)
            if i + 1 < len(proc.code):
                leaders.add(i + 1)
    return leaders


def _node_kind(instrs: list[Instruction]) -> NodeKind:
    if len(instrs) == 1:
        if instrs[0].is_call:
            return NodeKind.CALL
        if instrs[0].opcode is Opcode.SYS:
            return NodeKind.SYSCALL
    return NodeKind.BLOCK


def build_cfg(proc: Procedure) -> CFG:
    """Build the control-flow graph of *proc*.

    Block discovery uses the classic leaders algorithm; call and syscall
    instructions are singled out into special nodes.  Edges are tagged
    backward iff the target dominates the source (computed here with a
    self-contained iterative pass so :mod:`dominators` can stay generic).

    Raises:
        ProgramStructureError: on branches to unknown labels.
    """
    leaders = sorted(_find_leaders(proc))
    starts = {start: bi for bi, start in enumerate(leaders)}
    bounds = leaders + [len(proc.code)]

    blocks: list[BasicBlock] = []
    for bi, start in enumerate(leaders):
        instrs = proc.code[start : bounds[bi + 1]]
        blocks.append(BasicBlock(proc.name, bi, start, instrs, _node_kind(instrs)))

    def block_of(instr_index: int) -> int:
        if instr_index == len(proc.code):
            # A label at the very end: no block to flow to.
            raise ProgramStructureError(
                f"control flows past the end of procedure {proc.name!r}"
            )
        try:
            return starts[instr_index]
        except KeyError:  # pragma: no cover - leaders cover all targets
            raise ProgramStructureError(
                f"branch target at instruction {instr_index} of "
                f"{proc.name!r} is not a block leader"
            ) from None

    raw_edges: list[tuple[int, int]] = []
    for bi, block in enumerate(blocks):
        last = block.instrs[-1]
        if last.opcode is Opcode.BR:
            raw_edges.append((bi, block_of(proc.resolve(last.operands[1]))))
            if block.end < len(proc.code):
                raw_edges.append((bi, block_of(block.end)))
        elif last.opcode is Opcode.JMP:
            raw_edges.append((bi, block_of(proc.resolve(last.operands[0]))))
        elif last.opcode in (Opcode.JMPI, Opcode.RET):
            # Unknown indirect target / procedure exit: no intra-CFG edge.
            # The paper "currently ignores typing unknown targets".
            pass
        else:
            # Fall through (including out of call/syscall special nodes).
            if block.end < len(proc.code):
                raw_edges.append((bi, block_of(block.end)))

    kinds = _tag_edges(len(blocks), raw_edges)
    edges = [Edge(s, d, k) for (s, d), k in zip(raw_edges, kinds)]
    return CFG(proc.name, blocks, edges)


#: Process-wide CFG memo.  Procedures are immutable after construction
#: (nothing in the codebase mutates ``proc.code`` in place), so the CFG
#: of a given Procedure object can be shared by every consumer — trace
#: generation, block typing, annotation and the call graph all build the
#: same graphs.  Keyed weakly so dropping a program frees its CFGs.
_CFG_MEMO: "weakref.WeakKeyDictionary[Procedure, CFG]" = weakref.WeakKeyDictionary()


def cached_cfg(proc: Procedure) -> CFG:
    """Memoized :func:`build_cfg`, keyed on Procedure object identity."""
    cfg = _CFG_MEMO.get(proc)
    if cfg is None:
        cfg = build_cfg(proc)
        _CFG_MEMO[proc] = cfg
    return cfg


def _tag_edges(n: int, raw_edges: list[tuple[int, int]]) -> list[str]:
    """Tag each edge backward iff its target dominates its source."""
    succs: list[list[int]] = [[] for _ in range(n)]
    for s, d in raw_edges:
        succs[s].append(d)

    idom = _immediate_dominators(n, succs)

    def dominates(a: int, b: int) -> bool:
        # Walk b's dominator chain up to the entry.
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            node = idom[node] if node != 0 else None
        return False

    return [BACKWARD if dominates(d, s) else FORWARD for s, d in raw_edges]


def _immediate_dominators(n: int, succs: list[list[int]]) -> list[Optional[int]]:
    """Cooper-Harvey-Kennedy iterative immediate dominators.

    Unreachable nodes get ``idom = None`` and dominate nothing.
    """
    preds: list[list[int]] = [[] for _ in range(n)]
    for s in range(n):
        for d in succs[s]:
            preds[d].append(s)

    # Reverse postorder over reachable nodes.
    seen = [False] * n
    order: list[int] = []
    stack: list[tuple[int, Iterator[int]]] = []
    seen[0] = True
    stack.append((0, iter(succs[0])))
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if not seen[nxt]:
                seen[nxt] = True
                stack.append((nxt, iter(succs[nxt])))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    rpo_num = {node: i for i, node in enumerate(order)}

    idom: list[Optional[int]] = [None] * n
    idom[0] = 0

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_num[a] > rpo_num[b]:
                a = idom[a]  # type: ignore[assignment]
            while rpo_num[b] > rpo_num[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == 0:
                continue
            candidates = [p for p in preds[node] if idom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(p, new_idom)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True

    idom[0] = None  # Entry has no immediate dominator.
    return idom
