"""Program representation and control-flow substrates.

The paper's static analysis works on binaries: it divides a program into
procedures and basic blocks, builds attributed control-flow graphs, then
partitions them into intervals (Allen) and natural loops (Muchnick).  This
package provides each of those structures for the synthetic ISA:

* :class:`Program` / :class:`Procedure` — the linear binary view,
* :class:`BasicBlock` and :class:`CFG` — leader-based basic block
  discovery and control-flow graphs whose edges are tagged forward or
  backward, with special nodes for calls and system calls as in the
  paper's definition,
* :mod:`~repro.program.dominators` — iterative dominator computation,
* :mod:`~repro.program.intervals` — Allen's interval partitioning,
* :mod:`~repro.program.loops` — natural loops and the loop nesting forest,
* :mod:`~repro.program.callgraph` — call graph with SCCs for the
  bottom-up inter-procedural loop analysis.
"""

from repro.program.module import MemoryRegion, Procedure, Program
from repro.program.basic_block import BasicBlock, NodeKind
from repro.program.cfg import CFG, Edge, build_cfg
from repro.program.dominators import compute_dominators, dominates
from repro.program.intervals import (
    Interval,
    derived_sequence,
    interval_graph,
    is_reducible,
    partition_intervals,
)
from repro.program.loops import Loop, find_loops
from repro.program.callgraph import CallGraph, build_callgraph
from repro.program.validate import validate_program

__all__ = [
    "MemoryRegion",
    "Procedure",
    "Program",
    "BasicBlock",
    "NodeKind",
    "CFG",
    "Edge",
    "build_cfg",
    "compute_dominators",
    "dominates",
    "Interval",
    "derived_sequence",
    "interval_graph",
    "is_reducible",
    "partition_intervals",
    "Loop",
    "find_loops",
    "CallGraph",
    "build_callgraph",
    "validate_program",
]
