"""Basic blocks and CFG node kinds.

The paper uses the classic definition: a basic block has one entry point
and one exit point with no jumps in between (Allen).  Its CFG node set is
``B̄ ∪ S`` where ``S`` ranges over *special nodes* representing system
calls and procedure invocations; we realise those as single-instruction
blocks with a distinguishing :class:`NodeKind`.
"""

from __future__ import annotations

import enum
from collections import Counter
from functools import cached_property
from typing import Optional

from repro.isa.encoding import code_size
from repro.isa.instructions import Instruction, InstrClass


class NodeKind(enum.Enum):
    """Kind of a CFG node."""

    BLOCK = "block"        # ordinary straight-line code
    CALL = "call"          # special node: procedure invocation
    SYSCALL = "syscall"    # special node: system call


class BasicBlock:
    """A maximal straight-line code sequence within one procedure.

    Attributes:
        proc: name of the owning procedure.
        index: position of this block in the procedure's block list.
        start: index of the first instruction in the procedure's code.
        instrs: the instructions, in order.
        kind: ordinary block, call node or syscall node.
    """

    def __init__(
        self,
        proc: str,
        index: int,
        start: int,
        instrs: list[Instruction],
        kind: NodeKind = NodeKind.BLOCK,
    ):
        self.proc = proc
        self.index = index
        self.start = start
        self.instrs = list(instrs)
        self.kind = kind

    @property
    def uid(self) -> str:
        """Program-wide unique identifier, e.g. ``"main#3"``."""
        return f"{self.proc}#{self.index}"

    @property
    def end(self) -> int:
        """Index one past the last instruction (exclusive)."""
        return self.start + len(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    @property
    def terminator(self) -> Optional[Instruction]:
        """The last instruction if it ends the block, else ``None``."""
        if self.instrs and self.instrs[-1].ends_block:
            return self.instrs[-1]
        return None

    @cached_property
    def size_bytes(self) -> int:
        """Encoded size of the block in bytes."""
        return code_size(self.instrs)

    @cached_property
    def class_counts(self) -> Counter:
        """Histogram of instruction classes in the block."""
        return Counter(i.iclass for i in self.instrs)

    @cached_property
    def load_count(self) -> int:
        return self.class_counts[InstrClass.LOAD]

    @cached_property
    def store_count(self) -> int:
        return self.class_counts[InstrClass.STORE]

    @property
    def call_target(self) -> Optional[str]:
        """For CALL special nodes, the direct callee name (``None`` if
        indirect)."""
        if self.kind is not NodeKind.CALL:
            return None
        return self.instrs[0].call_target

    def __repr__(self) -> str:
        return (
            f"BasicBlock({self.uid}, {self.kind.value}, "
            f"[{self.start}:{self.end}), {len(self.instrs)} instrs)"
        )
