"""Call graphs and the bottom-up analysis order.

The inter-procedural loop analysis of the paper types procedures
"bottom-up ... with respect to the call graph", handling indirect
recursion by picking one procedure of a cycle first and iterating to a
fixpoint.  This module provides the call graph, Tarjan SCCs, and the
callees-first SCC order that :mod:`repro.analysis.loop_summary` consumes.
"""

from __future__ import annotations

from typing import Iterator

from repro.program.basic_block import NodeKind
from repro.program.cfg import CFG, cached_cfg
from repro.program.module import Program


class CallGraph:
    """Direct-call graph over procedure names.

    Indirect calls have unknown targets and contribute no edges, matching
    the paper's "we currently ignore typing unknown targets" policy.
    """

    def __init__(self, nodes: list[str], edges: set):
        self.nodes = list(nodes)
        self.edges = set(edges)
        self._succs: dict[str, set] = {n: set() for n in nodes}
        self._preds: dict[str, set] = {n: set() for n in nodes}
        for caller, callee in edges:
            self._succs[caller].add(callee)
            self._preds[callee].add(caller)

    def callees(self, proc: str) -> set:
        return set(self._succs[proc])

    def callers(self, proc: str) -> set:
        return set(self._preds[proc])

    def sccs(self) -> list[list[str]]:
        """Tarjan strongly connected components, iterative."""
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: dict[str, bool] = {}
        stack: list[str] = []
        result: list[list[str]] = []
        counter = [0]

        for root in self.nodes:
            if root in index_of:
                continue
            work: list[tuple[str, Iterator[str]]] = [
                (root, iter(sorted(self._succs[root])))
            ]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index_of:
                        index_of[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack[succ] = True
                        work.append((succ, iter(sorted(self._succs[succ]))))
                        advanced = True
                        break
                    if on_stack.get(succ):
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    result.append(component)
        return result

    def bottom_up_sccs(self) -> list[list[str]]:
        """SCCs ordered callees-first (Tarjan already emits this order)."""
        return self.sccs()

    def is_recursive(self, scc: list[str]) -> bool:
        """True if the SCC contains a cycle (self-loop or size > 1)."""
        if len(scc) > 1:
            return True
        proc = scc[0]
        return proc in self._succs[proc]

    def __repr__(self) -> str:
        return f"CallGraph({len(self.nodes)} procs, {len(self.edges)} edges)"


def build_callgraph(program: Program, cfgs: dict[str, CFG] = None) -> CallGraph:
    """Build the direct call graph of *program*.

    Args:
        cfgs: optional pre-built CFGs to reuse; missing ones are built.
    """
    cfgs = dict(cfgs or {})
    edges = set()
    for proc in program:
        cfg = cfgs.get(proc.name)
        if cfg is None:
            cfg = cached_cfg(proc)
        for block in cfg:
            if block.kind is NodeKind.CALL:
                target = block.call_target
                if target is not None and target in program:
                    edges.add((proc.name, target))
    return CallGraph(sorted(program.procedures), edges)
