"""Dominator computation for CFGs.

Uses the Cooper-Harvey-Kennedy iterative algorithm over reverse postorder,
which is simple, robust on reducible and irreducible graphs alike, and
fast for the CFG sizes this library produces.
"""

from __future__ import annotations

from typing import Optional

from repro.program.cfg import CFG


def compute_dominators(cfg: CFG) -> list[Optional[int]]:
    """Return the immediate-dominator array of *cfg*.

    ``result[b]`` is the immediate dominator of block ``b``; the entry
    block and unreachable blocks get ``None``.
    """
    order = cfg.reverse_postorder()
    rpo_num = {node: i for i, node in enumerate(order)}
    idom: list[Optional[int]] = [None] * len(cfg)
    idom[0] = 0

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_num[a] > rpo_num[b]:
                a = idom[a]  # type: ignore[assignment]
            while rpo_num[b] > rpo_num[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == 0:
                continue
            candidates = [
                p for p in cfg.preds(node) if idom[p] is not None and p in rpo_num
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(p, new_idom)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True

    idom[0] = None
    return idom


def dominates(idom: list[Optional[int]], a: int, b: int) -> bool:
    """Return True if block *a* dominates block *b* under *idom*.

    Every block dominates itself.  Unreachable blocks are dominated by
    nothing but themselves.
    """
    node: Optional[int] = b
    while node is not None:
        if node == a:
            return True
        node = idom[node] if node != 0 else None
    return False


def dominator_tree_depths(idom: list[Optional[int]]) -> list[int]:
    """Return each block's depth in the dominator tree (entry = 0).

    Unreachable blocks get depth -1.
    """
    n = len(idom)
    depths = [-1] * n
    if n:
        depths[0] = 0

    def depth_of(node: int) -> int:
        chain = []
        while depths[node] == -1:
            parent = idom[node]
            if parent is None:
                return -1
            chain.append(node)
            node = parent
        d = depths[node]
        for b in reversed(chain):
            d += 1
            depths[b] = d
        return d

    for b in range(n):
        if depths[b] == -1 and (b == 0 or idom[b] is not None):
            depth_of(b)
    return depths
