"""Linear (binary-level) program representation.

A :class:`Program` is the analogue of an executable: named memory regions
(the data segment), a table of :class:`Procedure` objects (the text
segment) and an entry point.  Procedures hold a flat instruction list with
labels, exactly what a disassembler would recover; all graph structure is
derived lazily by :mod:`repro.program.cfg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ProgramStructureError
from repro.isa.encoding import code_size
from repro.isa.instructions import Instruction

#: Name of the implicit stack region every program owns.
STACK_REGION = "__stack"

#: Default stack size in bytes.
DEFAULT_STACK_SIZE = 64 * 1024


@dataclass(frozen=True)
class MemoryRegion:
    """A named region of the data segment.

    Attributes:
        name: region identifier referenced by ``MemAccess.region``.
        size: size in bytes; the analytic cache model compares this
            footprint against cache capacities.
        hot_fraction: fraction of the region that accounts for most
            dynamic accesses (1.0 = uniform).  Lets synthetic benchmarks
            model working sets smaller than their address span.
    """

    name: str
    size: int
    hot_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ProgramStructureError(f"region {self.name!r} has size {self.size}")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ProgramStructureError(
                f"region {self.name!r} hot_fraction must be in (0, 1], "
                f"got {self.hot_fraction}"
            )

    @property
    def working_set(self) -> int:
        """Effective working-set size in bytes."""
        return max(1, int(self.size * self.hot_fraction))


class Procedure:
    """A procedure: a flat instruction list plus a label table.

    Labels map to the index of the instruction they precede.  A label at
    ``len(code)`` is permitted and denotes the procedure end (useful as a
    branch target for loop exits placed at the very end).
    """

    def __init__(
        self,
        name: str,
        code: list[Instruction],
        labels: Optional[dict[str, int]] = None,
    ):
        if not code:
            raise ProgramStructureError(f"procedure {name!r} has no instructions")
        self.name = name
        self.code = list(code)
        self.labels = dict(labels or {})
        for label, idx in self.labels.items():
            if not 0 <= idx <= len(self.code):
                raise ProgramStructureError(
                    f"label {label!r} in {name!r} points at {idx}, "
                    f"but the procedure has {len(self.code)} instructions"
                )

    def __len__(self) -> int:
        return len(self.code)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.code)

    @property
    def size_bytes(self) -> int:
        """Encoded size of the procedure body in bytes."""
        return code_size(self.code)

    def label_at(self, index: int) -> Optional[str]:
        """Return a label pointing at *index*, if any."""
        for label, idx in self.labels.items():
            if idx == index:
                return label
        return None

    def resolve(self, label: str) -> int:
        """Return the instruction index *label* points at.

        Raises:
            ProgramStructureError: if the label is unknown.
        """
        try:
            return self.labels[label]
        except KeyError:
            raise ProgramStructureError(
                f"unknown label {label!r} in procedure {self.name!r}"
            ) from None

    def __repr__(self) -> str:
        return f"Procedure({self.name!r}, {len(self.code)} instructions)"


class Program:
    """An executable: procedures, memory regions and an entry point."""

    def __init__(
        self,
        procedures: dict[str, Procedure],
        entry: str = "main",
        regions: Optional[dict[str, MemoryRegion]] = None,
        name: str = "a.out",
    ):
        if entry not in procedures:
            raise ProgramStructureError(
                f"entry procedure {entry!r} not defined (have: "
                f"{sorted(procedures)})"
            )
        self.name = name
        self.procedures = dict(procedures)
        self.entry = entry
        self.regions = dict(regions or {})
        if STACK_REGION not in self.regions:
            self.regions[STACK_REGION] = MemoryRegion(STACK_REGION, DEFAULT_STACK_SIZE)

    def __contains__(self, proc_name: str) -> bool:
        return proc_name in self.procedures

    def __getitem__(self, proc_name: str) -> Procedure:
        return self.procedures[proc_name]

    def __iter__(self) -> Iterator[Procedure]:
        return iter(self.procedures.values())

    @property
    def size_bytes(self) -> int:
        """Total encoded text-segment size in bytes."""
        return sum(p.size_bytes for p in self.procedures.values())

    def region(self, name: str) -> MemoryRegion:
        """Return the region called *name*.

        Raises:
            ProgramStructureError: if the region was never declared.
        """
        try:
            return self.regions[name]
        except KeyError:
            raise ProgramStructureError(
                f"unknown memory region {name!r} in program {self.name!r}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self.procedures)} procedures, "
            f"{self.size_bytes} bytes)"
        )
