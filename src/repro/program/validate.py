"""Structural validation of programs.

Run before analysis or simulation to fail fast with a precise message
instead of deep inside a traversal.  Checks:

* every direct branch/jump label resolves inside its procedure,
* every direct call targets a defined procedure,
* every memory access names a declared region with a stride that fits,
* control cannot fall off the end of a procedure,
* the CFG of every procedure builds and its entry reaches every block
  that has instructions (unreachable code is reported, not fatal).
"""

from __future__ import annotations

from repro.errors import ProgramStructureError
from repro.isa.instructions import Opcode
from repro.program.cfg import build_cfg
from repro.program.module import Program


def validate_program(program: Program, strict_reachability: bool = False) -> list[str]:
    """Validate *program*; return a list of non-fatal warnings.

    Args:
        strict_reachability: treat unreachable blocks as errors.

    Raises:
        ProgramStructureError: on any fatal structural problem.
    """
    warnings: list[str] = []

    for proc in program:
        last = proc.code[-1]
        if not last.is_terminator:
            raise ProgramStructureError(
                f"procedure {proc.name!r} can fall off its end "
                f"(last instruction is {last})"
            )

        for i, instr in enumerate(proc.code):
            target = instr.label_target
            if target is not None and target not in proc.labels:
                raise ProgramStructureError(
                    f"{proc.name!r}[{i}]: branch to unknown label {target!r}"
                )
            callee = instr.call_target
            if callee is not None and callee not in program:
                raise ProgramStructureError(
                    f"{proc.name!r}[{i}]: call to undefined procedure {callee!r}"
                )
            if instr.mem is not None:
                region = program.region(instr.mem.region)
                if instr.mem.stride < 0:
                    raise ProgramStructureError(
                        f"{proc.name!r}[{i}]: negative stride {instr.mem.stride}"
                    )
                if instr.mem.stride > region.size:
                    raise ProgramStructureError(
                        f"{proc.name!r}[{i}]: stride {instr.mem.stride} exceeds "
                        f"region {region.name!r} size {region.size}"
                    )
            if instr.opcode in (Opcode.LOAD, Opcode.STORE) and instr.mem is None:
                raise ProgramStructureError(
                    f"{proc.name!r}[{i}]: {instr.opcode.value} without a "
                    f"memory access descriptor"
                )

        cfg = build_cfg(proc)
        reachable = set(cfg.reverse_postorder())
        unreachable = [b.uid for b in cfg if b.index not in reachable]
        if unreachable:
            message = f"unreachable blocks in {proc.name!r}: {unreachable}"
            if strict_reachability:
                raise ProgramStructureError(message)
            warnings.append(message)

    return warnings
