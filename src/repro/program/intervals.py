"""Allen's interval partitioning.

The paper quotes Allen directly: "An interval i(η) corresponding to a node
η ∈ N is the maximal, single entry subgraph for which η is the entry node
and in which all closed paths contain η."  The classic worklist algorithm
below partitions the reachable blocks of a CFG into such intervals; the
interval-based phase marking of Section II-A operates on the first-order
interval graph this produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.program.cfg import CFG


@dataclass
class Interval:
    """One interval: a header and its member blocks (header first)."""

    header: int
    nodes: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.nodes or self.nodes[0] != self.header:
            # Normalise: header is always the first member.
            self.nodes = [self.header] + [n for n in self.nodes if n != self.header]

    def __contains__(self, block: int) -> bool:
        return block in self._member_set

    @property
    def _member_set(self) -> frozenset:
        return frozenset(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"Interval(header={self.header}, nodes={self.nodes})"


def partition_intervals(cfg: CFG) -> list[Interval]:
    """Partition the reachable blocks of *cfg* into intervals.

    Returns intervals in discovery order; the first interval's header is
    the CFG entry.  Every reachable block belongs to exactly one interval.
    """
    reachable = set(cfg.reverse_postorder())
    header_worklist = [0]
    queued = {0}
    placed: set[int] = set()
    intervals: list[Interval] = []

    while header_worklist:
        header = header_worklist.pop(0)
        if header in placed:
            continue
        members = {header}
        order = [header]

        grew = True
        while grew:
            grew = False
            # Grow: absorb any node all of whose predecessors are inside.
            for node in sorted(reachable - members - placed):
                preds = cfg.preds(node)
                if preds and all(p in members for p in preds):
                    members.add(node)
                    order.append(node)
                    grew = True

        placed.update(members)
        intervals.append(Interval(header, order))

        # New headers: unplaced nodes with at least one predecessor inside
        # some already-built interval.
        for node in sorted(reachable - placed):
            if node in queued:
                continue
            if any(p in placed for p in cfg.preds(node)):
                header_worklist.append(node)
                queued.add(node)

    return intervals


def interval_graph(cfg: CFG, intervals: list[Interval]) -> dict[int, set[int]]:
    """Return the derived (second-order) graph over interval indices.

    There is an edge from interval ``i`` to interval ``j`` (``i != j``)
    iff some block of ``i`` has a CFG edge into the header of ``j``.
    """
    owner: dict[int, int] = {}
    for ii, interval in enumerate(intervals):
        for block in interval.nodes:
            owner[block] = ii

    adjacency: dict[int, set[int]] = {i: set() for i in range(len(intervals))}
    for edge in cfg.edges:
        src_int = owner.get(edge.src)
        dst_int = owner.get(edge.dst)
        if src_int is None or dst_int is None or src_int == dst_int:
            continue
        adjacency[src_int].add(dst_int)
    return adjacency


def derived_sequence(cfg: CFG, max_order: int = 32) -> list:
    """The derived sequence of interval graphs (Allen).

    Starting from the first-order partition, each round collapses every
    interval into a node and re-partitions the derived graph, until the
    graph stops shrinking.  A CFG is *reducible* iff the sequence ends in
    a single node (the limit graph); the paper's interval technique uses
    only the first order, but the sequence is the classic completeness
    check for the partitioning machinery.

    Returns the list of graphs as ``(nodes, adjacency)`` pairs, first
    order first.
    """
    # Order 1: from the CFG itself.
    intervals = partition_intervals(cfg)
    nodes = list(range(len(intervals)))
    adjacency = interval_graph(cfg, intervals)
    sequence = [(nodes, adjacency)]

    for _ in range(max_order):
        if len(nodes) <= 1:
            break
        headers, body = _partition_abstract(nodes, adjacency)
        if len(headers) == len(nodes):
            break  # Irreducible: no further reduction possible.
        new_nodes = list(range(len(headers)))
        owner = {}
        for i, members in enumerate(body):
            for member in members:
                owner[member] = i
        new_adjacency = {i: set() for i in new_nodes}
        for src, dsts in adjacency.items():
            for dst in dsts:
                if owner[src] != owner[dst]:
                    new_adjacency[owner[src]].add(owner[dst])
        nodes, adjacency = new_nodes, new_adjacency
        sequence.append((nodes, adjacency))

    return sequence


def is_reducible(cfg: CFG) -> bool:
    """True iff the derived sequence collapses to a single node."""
    sequence = derived_sequence(cfg)
    return len(sequence[-1][0]) <= 1


def _partition_abstract(nodes: list, adjacency: dict):
    """Interval partitioning over an abstract graph (entry = nodes[0])."""
    preds: dict = {n: set() for n in nodes}
    for src, dsts in adjacency.items():
        for dst in dsts:
            preds[dst].add(src)

    entry = nodes[0]
    placed: set = set()
    queued = {entry}
    worklist = [entry]
    headers = []
    bodies = []
    while worklist:
        header = worklist.pop(0)
        if header in placed:
            continue
        members = {header}
        grew = True
        while grew:
            grew = False
            for node in nodes:
                if node in members or node in placed:
                    continue
                if preds[node] and preds[node] <= members:
                    members.add(node)
                    grew = True
        placed |= members
        headers.append(header)
        bodies.append(members)
        for node in nodes:
            if node in placed or node in queued:
                continue
            if preds[node] & placed:
                worklist.append(node)
                queued.add(node)
    return headers, bodies
