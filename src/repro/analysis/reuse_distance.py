"""Static reuse-distance estimation (after Beyls & D'Hollander).

The paper's block typer uses "a rough estimate of cache behavior
(computation based on reuse distances)".  Working from the synthetic
ISA's symbolic memory accesses, this module estimates, per basic block,
how many distinct cache lines are touched between consecutive accesses to
the same line, and turns that into a miss probability against a *nominal*
cache.  The nominal cache is deliberately not the target machine's — the
static analysis makes no assumption about the AMP it will run on ("tune
once, run anywhere"); it only needs a consistent yardstick for
clustering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.isa.instructions import InstrClass, MemAccess
from repro.program.basic_block import BasicBlock
from repro.program.module import Program, STACK_REGION


@dataclass(frozen=True)
class NominalCache:
    """Reference cache used as the static yardstick.

    Attributes:
        line_size: cache line size in bytes.
        capacity_lines: number of lines the cache holds.
    """

    line_size: int = 64
    capacity_lines: int = 65536  # 4 MiB with 64-byte lines: a typical
    # last-level cache of the paper's era; working sets under ~2 MiB are
    # treated as cache-resident, beyond ~8 MiB as streaming.


#: Default yardstick shared by all static analyses.
DEFAULT_NOMINAL_CACHE = NominalCache()


def access_lines_per_iteration(
    mem: MemAccess, program: Program, cache: NominalCache
) -> float:
    """Expected number of *new* cache lines one execution of this access
    touches.

    A scalar access (stride 0) touches the same line every time: ~0 new
    lines after the first touch.  A strided access touches a new line
    every ``line_size / stride`` executions (at most one per execution).
    """
    if mem.stride == 0:
        return 0.0
    return min(1.0, mem.stride / cache.line_size)


def access_reuse_distance(
    mem: MemAccess,
    block: BasicBlock,
    program: Program,
    cache: NominalCache = DEFAULT_NOMINAL_CACHE,
) -> float:
    """Estimated reuse distance (in cache lines) for one access in *block*.

    The block is assumed to execute repeatedly (loop context), which is
    when its cache behaviour matters.  Two cases:

    * Strided access: the line is revisited only after the access sweeps
      its region's working set, so the reuse distance is the working-set
      size in lines.
    * Scalar access: the line is revisited on the next iteration of the
      block, so the reuse distance is the number of distinct lines the
      whole block touches in one iteration (other scalars plus the new
      lines of every strided access).
    """
    region = program.region(mem.region)
    ws_lines = max(1.0, region.working_set / cache.line_size)
    if mem.stride != 0:
        return min(ws_lines, region.size / cache.line_size)

    distinct = 0.0
    seen_scalars = set()
    for instr in block.instrs:
        other = instr.mem
        if other is None:
            if instr.iclass is InstrClass.STACK:
                # push/pop touch the top-of-stack line.
                key = (STACK_REGION, 0)
                if key not in seen_scalars:
                    seen_scalars.add(key)
                    distinct += 1.0
            continue
        if other.stride == 0:
            key = (other.region, other.offset // cache.line_size)
            if key not in seen_scalars:
                seen_scalars.add(key)
                distinct += 1.0
        else:
            other_ws = program.region(other.region).working_set / cache.line_size
            distinct += min(
                access_lines_per_iteration(other, program, cache), other_ws
            )
    return max(1.0, distinct)


def miss_probability(reuse_distance_lines: float, cache: NominalCache) -> float:
    """Probability an access with the given reuse distance misses *cache*.

    A smooth ramp in log-space: distances below half the capacity hit,
    distances beyond twice the capacity miss, with a linear transition in
    between.  The smoothness keeps k-means from seeing artificial cliffs.
    """
    if reuse_distance_lines <= 0:
        return 0.0
    low = cache.capacity_lines / 2.0
    high = cache.capacity_lines * 2.0
    if reuse_distance_lines <= low:
        return 0.0
    if reuse_distance_lines >= high:
        return 1.0
    return (math.log2(reuse_distance_lines) - math.log2(low)) / (
        math.log2(high) - math.log2(low)
    )


@dataclass(frozen=True)
class BlockReuseProfile:
    """Cache-behaviour summary of one block.

    Attributes:
        accesses: number of memory-touching executions per block run.
        expected_misses: expected misses per block run against the
            nominal cache.
        miss_fraction: misses per instruction (the clustering feature).
    """

    accesses: int
    expected_misses: float
    miss_fraction: float


def block_reuse_profile(
    block: BasicBlock,
    program: Program,
    cache: NominalCache = DEFAULT_NOMINAL_CACHE,
) -> BlockReuseProfile:
    """Summarize the cache behaviour of *block* against *cache*."""
    accesses = 0
    expected_misses = 0.0
    for instr in block.instrs:
        if instr.mem is not None:
            accesses += 1
            rd = access_reuse_distance(instr.mem, block, program, cache)
            # A strided access only risks a miss when it enters a new
            # line; scalars risk it on every (post-sweep) revisit.
            if instr.mem.stride != 0:
                rate = access_lines_per_iteration(instr.mem, program, cache)
            else:
                rate = 1.0
            expected_misses += rate * miss_probability(rd, cache)
        elif instr.iclass is InstrClass.STACK:
            accesses += 1  # Stack lines are hot: no expected misses.
    instrs = max(1, len(block.instrs))
    return BlockReuseProfile(accesses, expected_misses, expected_misses / instrs)
