"""Loop summarization — Algorithm 1 of the paper, inter-procedural.

For each procedure, bottom-up over the call graph:

* every natural loop is traversed breadth-first from its header,
  ignoring back edges, maintaining a type map ``M : Π → ℝ`` updated as
  ``M ⊕ {π ↦ M(π) + wn(λ)·ϕ(η)}`` where ``λ`` is the node's nesting
  level *within the loop*, ``wn`` maps nesting levels to weights, and
  ``ϕ`` is the node weight (instruction count; call nodes contribute
  their callee's summarized type map);
* the dominant type ``π_l = argmax M`` and the type strength
  ``σ_l = M(π_l) / Σ M(π)`` are recorded;
* the loop type map ``T`` is maintained with Algorithm 1's rules: a loop
  whose single immediately-nested loop has the same type (or a weaker
  strength) absorbs it; a loop whose multiple disjoint immediate
  children all share its type absorbs them; loops with no children are
  added directly.  (The paper states the disjoint rule for exactly two
  children; we generalise it to any count, which degenerates to the
  paper's rule for two.)

Indirect/mutual recursion is handled as the paper prescribes: procedures
in a call-graph cycle are seeded with empty summaries and re-analysed
until their dominant types and T sets reach a fixpoint (with an iteration
cap as a safety net).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.program.basic_block import NodeKind
from repro.program.loops import Loop, block_nesting_levels
from repro.analysis.annotate import AttributedProgram


def default_nesting_weight(level: int) -> float:
    """The default ``wn``: an order of magnitude per nesting level.

    Loops typically iterate many times, so a node one level deeper is
    assumed to execute ~10x more often.
    """
    return 10.0 ** level


@dataclass(frozen=True)
class TypedLoop:
    """A loop with its dominant type and strength."""

    loop: Loop
    dominant_type: Optional[int]
    strength: float
    size_instrs: int

    @property
    def uid(self) -> str:
        return self.loop.uid


@dataclass
class ProcedureSummary:
    """Whole-procedure type distribution, used at call sites.

    Attributes:
        type_map: accumulated weight per type over the entire procedure
            body (loop nesting included), with callee contributions.
        dominant_type: argmax of ``type_map`` (``None`` if empty).
        strength: σ of the dominant type.
    """

    proc_name: str
    type_map: dict = field(default_factory=dict)

    @property
    def dominant_type(self) -> Optional[int]:
        if not self.type_map:
            return None
        return min(self.type_map, key=lambda t: (-self.type_map[t], t))

    @property
    def strength(self) -> float:
        total = sum(self.type_map.values())
        if total <= 0:
            return 0.0
        return self.type_map[self.dominant_type] / total

    @property
    def total_weight(self) -> float:
        return sum(self.type_map.values())


@dataclass
class LoopSummary:
    """Result of the inter-procedural loop analysis over a program.

    Attributes:
        typed_loops: the final loop type map T — the loops that survive
            Algorithm 1's nesting rules and are candidates for phase
            marks.
        all_loops: every loop's typing, before T filtering (used by the
            typing-accuracy evaluation of Section II-A3).
        proc_summaries: per-procedure type distributions.
    """

    typed_loops: list[TypedLoop]
    all_loops: dict  # loop uid -> TypedLoop
    proc_summaries: dict  # proc name -> ProcedureSummary

    def loops_of(self, proc_name: str) -> list[TypedLoop]:
        """Loops of *proc_name* in T."""
        return [tl for tl in self.typed_loops if tl.loop.proc == proc_name]


#: Cap on fixpoint iterations for recursive call-graph cycles.
_MAX_FIXPOINT_ITERATIONS = 10


def _loop_type_map(
    acfg,
    loop: Loop,
    summaries: dict,
    program,
    wn: Callable[[int], float],
) -> tuple[dict, int]:
    """Compute M for one loop via nesting-weighted BFS (back edges
    ignored), returning (type map, static size in instructions)."""
    cfg = acfg.cfg
    values: dict[int, float] = defaultdict(float)
    size = 0

    visited = {loop.header}
    queue = deque([loop.header])
    while queue:
        node = queue.popleft()
        block = cfg.blocks[node]
        size += len(block)
        # λ = |{l' ∈ L | l' ⊂ l ∧ η ∈ l'}|
        level = sum(
            1
            for child in _strict_descendants(loop)
            if node in child.body
        )
        weight = wn(level)

        if block.kind is NodeKind.CALL:
            callee = block.call_target
            summary = summaries.get(callee) if callee else None
            if summary is not None:
                for type_id, type_weight in summary.type_map.items():
                    values[type_id] += weight * type_weight
        else:
            node_type = acfg.type_of(node)
            if node_type is not None:
                values[node_type] += weight * len(block)

        for succ in cfg.succs(node, ignore_back=True):
            if succ in loop.body and succ not in visited:
                visited.add(succ)
                queue.append(succ)

    return dict(values), size


def _strict_descendants(loop: Loop) -> list[Loop]:
    """All loops strictly nested inside *loop* (any depth)."""
    result = []
    stack = list(loop.children)
    while stack:
        child = stack.pop()
        result.append(child)
        stack.extend(child.children)
    return result


def _dominant(values: dict) -> tuple[Optional[int], float]:
    if not values:
        return None, 0.0
    dominant = min(values, key=lambda t: (-values[t], t))
    total = sum(values.values())
    return dominant, (values[dominant] / total if total > 0 else 0.0)


def _procedure_type_map(
    acfg, summaries: dict, program, wn: Callable[[int], float]
) -> dict:
    """Whole-procedure type map: every block weighted by its total loop
    nesting level, call nodes contributing callee maps."""
    cfg = acfg.cfg
    loops = acfg.loops
    nesting = block_nesting_levels(cfg, loops)
    values: dict[int, float] = defaultdict(float)
    for node in cfg.reverse_postorder():
        block = cfg.blocks[node]
        weight = wn(nesting[node])
        if block.kind is NodeKind.CALL:
            callee = block.call_target
            summary = summaries.get(callee) if callee else None
            if summary is not None:
                for type_id, type_weight in summary.type_map.items():
                    values[type_id] += weight * type_weight
        else:
            node_type = acfg.type_of(node)
            if node_type is not None:
                values[node_type] += weight * len(block)
    return dict(values)


def _summarize_procedure_loops(
    acfg,
    summaries: dict,
    program,
    wn: Callable[[int], float],
) -> tuple[list[TypedLoop], dict]:
    """Run Algorithm 1 over one procedure.

    Returns (T for this procedure, all typed loops by uid).
    """
    loops = acfg.loops  # Innermost-first, as Algorithm 1 wants.
    typed: dict[str, TypedLoop] = {}
    t_set: dict[str, TypedLoop] = {}

    for loop in loops:
        values, size = _loop_type_map(acfg, loop, summaries, program, wn)
        dominant, strength = _dominant(values)
        typed_loop = TypedLoop(loop, dominant, strength, size)
        typed[loop.uid] = typed_loop

        children = loop.children
        if len(children) == 1:
            inner = typed.get(children[0].uid)
            in_t = inner is not None and children[0].uid in t_set
            if in_t and (
                inner.dominant_type == dominant or inner.strength < strength
            ):
                t_set[loop.uid] = typed_loop
                del t_set[children[0].uid]
            # Otherwise the inner loop's (stronger, differently-typed)
            # entry in T stands and the outer loop gets no entry.
        elif len(children) >= 2:
            child_loops = [typed.get(c.uid) for c in children]
            all_in_t = all(c.uid in t_set for c in children)
            same_type = (
                all_in_t
                and len({ct.dominant_type for ct in child_loops}) == 1
                and child_loops[0].dominant_type == dominant
            )
            if same_type:
                t_set[loop.uid] = typed_loop
                for child in children:
                    del t_set[child.uid]
        else:
            t_set[loop.uid] = typed_loop

    return list(t_set.values()), typed


def summarize_loops(
    aprog: AttributedProgram,
    wn: Callable[[int], float] = default_nesting_weight,
) -> LoopSummary:
    """Run the full inter-procedural loop analysis over *aprog*."""
    summaries: dict[str, ProcedureSummary] = {}
    typed_loops: list[TypedLoop] = []
    all_loops: dict[str, TypedLoop] = {}

    for scc in aprog.callgraph.bottom_up_sccs():
        recursive = aprog.callgraph.is_recursive(scc)
        # Seed cycle members with empty summaries so the first pass has
        # something to look up ("randomly choose one procedure to
        # analyze first"); Tarjan's order makes the seed deterministic.
        for name in scc:
            summaries.setdefault(name, ProcedureSummary(name))

        iterations = _MAX_FIXPOINT_ITERATIONS if recursive else 1
        scc_result: dict[str, tuple[list[TypedLoop], dict]] = {}
        previous_signature = None
        for _ in range(iterations):
            for name in scc:
                acfg = aprog[name]
                summaries[name] = ProcedureSummary(
                    name, _procedure_type_map(acfg, summaries, aprog.program, wn)
                )
                scc_result[name] = _summarize_procedure_loops(
                    acfg, summaries, aprog.program, wn
                )
            signature = tuple(
                (uid, tl.dominant_type)
                for name in scc
                for uid, tl in sorted(scc_result[name][1].items())
            )
            if signature == previous_signature:
                break
            previous_signature = signature

        for name in scc:
            proc_t, proc_all = scc_result[name]
            typed_loops.extend(proc_t)
            all_loops.update(proc_all)

    typed_loops.sort(key=lambda tl: tl.uid)
    return LoopSummary(typed_loops, all_loops, summaries)
