"""Phase-transition points (Section II-A1d and II-A2).

A phase-transition point is a point where control flows from a section of
one phase type into a section of a different type.  Sections are basic
blocks, intervals, or loops depending on the technique; in every case a
phase mark is placed on the edges that *enter* the section from outside,
and the mark carries the section's phase type (the runtime compares it
against the currently active type, so a statically over-approximated
trigger set only costs a cheap dynamic no-op, never correctness).

Filters from the paper:

* **minimum size** — sections below a static instruction-count threshold
  are skipped, because tiny sections would fire marks far too often;
* **lookahead** (basic-block technique) — a mark is inserted "only if
  majority of the successors of a code section up to a fixed depth have
  the same type", so a switch is likely amortized.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.program.basic_block import NodeKind
from repro.analysis.annotate import AttributedCFG, AttributedProgram
from repro.analysis.interval_summary import IntervalSummary, summarize_intervals
from repro.analysis.loop_summary import LoopSummary, summarize_loops


@dataclass(frozen=True)
class TransitionPoint:
    """One phase mark to insert.

    Attributes:
        proc: procedure name.
        kind: sectioning technique, ``"bb"``, ``"interval"`` or ``"loop"``.
        phase_type: the section's phase type the mark announces.
        entry_block: block index at which the section is entered.
        section_blocks: all block indices of the section.
        size_instrs: static instruction count of the section.
        trigger_edges: CFG edges (src, dst) entering the section from
            outside, where mark code is spliced.  Empty iff the section
            is entered at the procedure entry.
        at_proc_entry: the section starts at the procedure entry, so the
            mark is placed at the procedure's first instruction.
    """

    proc: str
    kind: str
    phase_type: int
    entry_block: int
    section_blocks: frozenset
    size_instrs: int
    trigger_edges: tuple
    at_proc_entry: bool = False

    @property
    def uid(self) -> str:
        return f"{self.proc}/{self.kind}@{self.entry_block}"


def _entering_edges(
    acfg: AttributedCFG, entry_block: int, section: frozenset
) -> tuple[tuple, bool]:
    """Edges entering *section* at *entry_block* from outside it."""
    cfg = acfg.cfg
    edges = tuple(
        (src, entry_block)
        for src in cfg.preds(entry_block)
        if src not in section
    )
    at_entry = entry_block == 0
    return edges, at_entry


def _majority_lookahead(
    acfg: AttributedCFG, block: int, phase_type: int, depth: int
) -> bool:
    """Lookahead test: do the majority of successors of *block* up to
    *depth* share *phase_type*?  Depth 0 disables the test."""
    if depth <= 0:
        return True
    cfg = acfg.cfg
    same = 0
    total = 0
    visited = {block}
    frontier = deque([(block, 0)])
    while frontier:
        node, dist = frontier.popleft()
        if dist >= depth:
            continue
        for succ in cfg.succs(node):
            if succ in visited:
                continue
            visited.add(succ)
            succ_type = acfg.type_of(succ)
            if succ_type is not None:
                total += 1
                if succ_type == phase_type:
                    same += 1
            frontier.append((succ, dist + 1))
    if total == 0:
        return True
    return same * 2 > total


def _may_change_type(
    acfg: AttributedCFG, entry_block: int, section: frozenset, phase_type: int,
    min_size: int,
) -> bool:
    """Could control arrive at *section* while a different type is
    active?

    Walks backwards from the section entry through skipped (small or
    untyped) blocks; if every sized typed block feeding in has the same
    type, the mark would never fire and is omitted.  Procedure entries
    always count as potential changes (the caller's type is unknown).
    """
    cfg = acfg.cfg
    visited = set(section)
    stack = [
        src for src in cfg.preds(entry_block) if src not in section
    ]
    if entry_block == 0:
        return True
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        block = cfg.blocks[node]
        node_type = acfg.type_of(node)
        if node_type is not None and len(block) >= min_size:
            if node_type != phase_type:
                return True
            continue  # Same type: this path cannot change the phase.
        if node == 0:
            return True  # Reached procedure entry through skipped code.
        preds = cfg.preds(node)
        if not preds:
            return True
        stack.extend(preds)
    return False


def basic_block_transitions(
    aprog: AttributedProgram,
    min_size: int = 10,
    lookahead: int = 0,
) -> list[TransitionPoint]:
    """Basic-block technique: sections are single typed blocks of at
    least *min_size* instructions; *lookahead* applies the majority test.
    """
    points: list[TransitionPoint] = []
    for acfg in aprog:
        cfg = acfg.cfg
        reachable = set(cfg.reverse_postorder())
        for block in cfg:
            if block.index not in reachable:
                continue
            if block.kind is not NodeKind.BLOCK or len(block) < min_size:
                continue
            phase_type = acfg.type_of(block.index)
            if phase_type is None:
                continue
            section = frozenset({block.index})
            if not _may_change_type(
                acfg, block.index, section, phase_type, min_size
            ):
                continue
            if not _majority_lookahead(acfg, block.index, phase_type, lookahead):
                continue
            edges, at_entry = _entering_edges(acfg, block.index, section)
            points.append(
                TransitionPoint(
                    proc=cfg.proc_name,
                    kind="bb",
                    phase_type=phase_type,
                    entry_block=block.index,
                    section_blocks=section,
                    size_instrs=len(block),
                    trigger_edges=edges,
                    at_proc_entry=at_entry,
                )
            )
    return points


def interval_transitions(
    aprog: AttributedProgram,
    min_size: int = 30,
    summaries: Optional[dict] = None,
) -> list[TransitionPoint]:
    """Interval technique: sections are intervals of at least *min_size*
    instructions summarized to a dominant type.

    Args:
        summaries: optional precomputed ``{proc: IntervalSummary}``.
    """
    points: list[TransitionPoint] = []
    for acfg in aprog:
        cfg = acfg.cfg
        summary: IntervalSummary = (
            summaries[cfg.proc_name] if summaries else summarize_intervals(acfg)
        )
        for typed in summary.intervals:
            if typed.dominant_type is None or typed.size_instrs < min_size:
                continue
            section = frozenset(typed.interval.nodes)
            # A mark fires only if a differently-typed sized interval can
            # precede this one.
            preceding_types = set()
            proc_entry_inside = typed.interval.header == 0
            for src in cfg.preds(typed.interval.header):
                if src in section:
                    continue
                owner = summary.interval_of(src)
                if owner is None:
                    preceding_types.add(None)
                    continue
                prev = summary.intervals[owner]
                if prev.dominant_type is None or prev.size_instrs < min_size:
                    preceding_types.add(None)
                else:
                    preceding_types.add(prev.dominant_type)
            changes = proc_entry_inside or any(
                t is None or t != typed.dominant_type for t in preceding_types
            )
            if not changes:
                continue
            edges, at_entry = _entering_edges(
                acfg, typed.interval.header, section
            )
            points.append(
                TransitionPoint(
                    proc=cfg.proc_name,
                    kind="interval",
                    phase_type=typed.dominant_type,
                    entry_block=typed.interval.header,
                    section_blocks=section,
                    size_instrs=typed.size_instrs,
                    trigger_edges=edges,
                    at_proc_entry=at_entry,
                )
            )
    return points


def loop_transitions(
    aprog: AttributedProgram,
    min_size: int = 45,
    summary: Optional[LoopSummary] = None,
    eliminate_same_type_callees: bool = True,
) -> list[TransitionPoint]:
    """Loop technique: sections are the loops surviving Algorithm 1's
    type map T, marked before their entry.

    Args:
        eliminate_same_type_callees: drop marks in procedures whose every
            call site already sits inside a marked loop of the same type
            ("eliminate phase marks in functions that are called inside
            of loops").
    """
    summary = summary or summarize_loops(aprog)

    candidates = [
        tl
        for tl in summary.typed_loops
        if tl.dominant_type is not None and tl.size_instrs >= min_size
    ]

    if eliminate_same_type_callees:
        candidates = _eliminate_callee_marks(aprog, summary, candidates)

    points: list[TransitionPoint] = []
    for typed in candidates:
        acfg = aprog[typed.loop.proc]
        section = frozenset(typed.loop.body)
        edges, at_entry = _entering_edges(acfg, typed.loop.header, section)
        points.append(
            TransitionPoint(
                proc=typed.loop.proc,
                kind="loop",
                phase_type=typed.dominant_type,
                entry_block=typed.loop.header,
                section_blocks=section,
                size_instrs=typed.size_instrs,
                trigger_edges=edges,
                at_proc_entry=at_entry,
            )
        )
    return points


def _eliminate_callee_marks(
    aprog: AttributedProgram,
    summary: LoopSummary,
    candidates: list,
) -> list:
    """Drop loops of procedures dominated by their call-site context.

    A procedure's loops are unmarked when every direct call site of the
    procedure lies inside a candidate loop whose type equals the type of
    each of the procedure's candidate loops — entering the procedure then
    cannot change the phase, so its marks are pure overhead.
    """
    # Innermost candidate loop type covering each call site.
    call_context: dict[str, set] = {}
    candidate_by_proc: dict[str, list] = {}
    for tl in candidates:
        candidate_by_proc.setdefault(tl.loop.proc, []).append(tl)

    for acfg in aprog:
        cfg = acfg.cfg
        proc_candidates = candidate_by_proc.get(cfg.proc_name, [])
        for block in cfg:
            if block.kind is not NodeKind.CALL:
                continue
            callee = block.call_target
            if callee is None:
                continue
            covering = [
                tl for tl in proc_candidates if block.index in tl.loop.body
            ]
            if covering:
                innermost = min(covering, key=lambda tl: len(tl.loop.body))
                call_context.setdefault(callee, set()).add(
                    innermost.dominant_type
                )
            else:
                call_context.setdefault(callee, set()).add(None)

    result = []
    for tl in candidates:
        contexts = call_context.get(tl.loop.proc)
        is_entry_proc = tl.loop.proc == aprog.program.entry
        if (
            contexts
            and not is_entry_proc
            and contexts == {tl.dominant_type}
            and all(
                other.dominant_type == tl.dominant_type
                for other in candidate_by_proc.get(tl.loop.proc, [])
            )
        ):
            continue  # Redundant: callers already established this type.
        result.append(tl)
    return result
