"""k-means clustering (MacQueen), implemented from scratch.

The paper cites MacQueen's 1967 k-means for grouping blocks in the 2-D
feature space.  This implementation is deliberately small and fully
deterministic: k-means++ seeding driven by an explicit ``random.Random``,
Lloyd iterations to convergence, and empty clusters re-seeded from the
point farthest from its centroid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes:
        labels: cluster index of each input point.
        centroids: cluster centers, shape (k, dims).
        inertia: sum of squared distances of points to their centroids.
        iterations: Lloyd iterations executed.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int


def _seed_plusplus(points: np.ndarray, k: int, rng: random.Random) -> np.ndarray:
    """k-means++ initial centroids."""
    n = len(points)
    first = rng.randrange(n)
    centroids = [points[first]]
    for _ in range(1, k):
        dists = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = float(dists.sum())
        if total <= 0.0:
            # All remaining points coincide with a centroid; pick any.
            centroids.append(points[rng.randrange(n)])
            continue
        threshold = rng.random() * total
        cumulative = np.cumsum(dists)
        idx = int(np.searchsorted(cumulative, threshold))
        centroids.append(points[min(idx, n - 1)])
    return np.array(centroids, dtype=float)


def kmeans(
    points,
    k: int,
    seed: int = 0,
    max_iterations: int = 100,
) -> KMeansResult:
    """Cluster *points* into *k* groups.

    Args:
        points: array-like of shape (n, dims).
        k: number of clusters; must satisfy ``1 <= k <= n``.
        seed: seed for the deterministic k-means++ initialisation.
        max_iterations: Lloyd iteration cap.

    Raises:
        AnalysisError: if *k* is out of range or *points* is empty.
    """
    data = np.asarray(points, dtype=float)
    if data.ndim == 1:
        data = data.reshape(-1, 1)
    n = len(data)
    if n == 0:
        raise AnalysisError("kmeans: no points to cluster")
    if not 1 <= k <= n:
        raise AnalysisError(f"kmeans: k={k} out of range for {n} points")

    rng = random.Random(seed)
    centroids = _seed_plusplus(data, k, rng)
    labels = np.zeros(n, dtype=int)

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # One broadcast (n, k, dims) difference tensor instead of a
        # Python loop per centroid.  Reducing the last axis applies the
        # same add order as the per-centroid ``np.sum(..., axis=1)``
        # did, so the distances are bit-identical to the loop's.
        diff = data[:, None, :] - centroids[None, :, :]
        distances = (diff * diff).sum(axis=2)
        new_labels = np.argmin(distances, axis=1)

        # Re-seed empty clusters from the worst-fit points.  Each empty
        # cluster takes a *distinct* point (otherwise two empty clusters
        # could claim the same point and one would stay empty).
        counts = np.bincount(new_labels, minlength=k)
        if not counts.all():
            # Moving a worst-fit point can itself empty its old cluster,
            # so keep counts live rather than snapshotting the empties.
            own_distance = distances[np.arange(n), new_labels].copy()
            for cluster in range(k):
                if counts[cluster] == 0:
                    worst = int(np.argmax(own_distance))
                    counts[new_labels[worst]] -= 1
                    new_labels[worst] = cluster
                    counts[cluster] += 1
                    own_distance[worst] = -np.inf

        moved = bool(np.any(new_labels != labels)) or iterations == 1
        labels = new_labels
        # Group points by cluster with one stable sort; each slice holds
        # a cluster's rows in original order — exactly the rows (and
        # order) a boolean mask would select — so ``mean`` reproduces
        # the masked version bit for bit while touching the data once.
        order = np.argsort(labels, kind="stable")
        bounds = np.concatenate(([0], np.cumsum(counts)))
        new_centroids = np.array(
            [
                data[order[bounds[cluster] : bounds[cluster + 1]]].mean(axis=0)
                if counts[cluster]
                else centroids[cluster]
                for cluster in range(k)
            ]
        )
        converged = np.allclose(new_centroids, centroids) and not moved
        centroids = new_centroids
        if converged:
            break

    inertia = float(
        np.sum((data - centroids[labels]) ** 2)
    )
    return KMeansResult(labels, centroids, inertia, iterations)
