"""Static phase-transition analysis (Section II-A of the paper).

The pipeline:

1. :mod:`features` / :mod:`reuse_distance` — place every basic block in a
   two-dimensional space: an instruction-type combination score and a
   rough cache-behaviour estimate based on reuse distances (Beyls &
   D'Hollander), exactly the proof-of-concept typer of Section II-A3.
2. :mod:`kmeans` / :mod:`block_typing` — group blocks with k-means
   (MacQueen) into phase types Π; alternatively type blocks from an
   execution profile per core type (the paper's evaluation setup), and
   optionally inject controlled clustering error (Figure 7).
3. :mod:`annotate` — attributed CFGs ``B̄ ⊆ B × Π``.
4. :mod:`interval_summary` — dominant type of each interval by weighted
   depth-first traversal ignoring backward edges.
5. :mod:`loop_summary` — Algorithm 1: inter-procedural, bottom-up over
   the call graph, nesting-weighted breadth-first traversal, type
   strength σ, and the nested/disjoint-loop elimination rules.
6. :mod:`transitions` — phase-transition points for the basic-block,
   interval, and loop techniques, with minimum-size and lookahead
   filtering.
"""

from repro.analysis.features import BlockFeatures, block_features, COMPUTE_WEIGHTS
from repro.analysis.reuse_distance import (
    NominalCache,
    block_reuse_profile,
    miss_probability,
)
from repro.analysis.kmeans import KMeansResult, kmeans
from repro.analysis.liveness import LivenessResult, compute_liveness, def_use
from repro.analysis.block_typing import (
    BlockTyping,
    StaticBlockTyper,
    ProfileBlockTyper,
    inject_clustering_error,
)
from repro.analysis.annotate import AttributedCFG, AttributedProgram, annotate_program
from repro.analysis.interval_summary import IntervalSummary, summarize_intervals
from repro.analysis.loop_summary import (
    LoopSummary,
    ProcedureSummary,
    summarize_loops,
)
from repro.analysis.transitions import (
    TransitionPoint,
    basic_block_transitions,
    interval_transitions,
    loop_transitions,
)

__all__ = [
    "BlockFeatures",
    "block_features",
    "COMPUTE_WEIGHTS",
    "NominalCache",
    "block_reuse_profile",
    "miss_probability",
    "KMeansResult",
    "kmeans",
    "LivenessResult",
    "compute_liveness",
    "def_use",
    "BlockTyping",
    "StaticBlockTyper",
    "ProfileBlockTyper",
    "inject_clustering_error",
    "AttributedCFG",
    "AttributedProgram",
    "annotate_program",
    "IntervalSummary",
    "summarize_intervals",
    "LoopSummary",
    "ProcedureSummary",
    "summarize_loops",
    "TransitionPoint",
    "basic_block_transitions",
    "interval_transitions",
    "loop_transitions",
]
