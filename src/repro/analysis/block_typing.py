"""Assigning phase types Π to basic blocks.

Two typers, both from the paper:

* :class:`StaticBlockTyper` — the proof-of-concept analysis of Section
  II-A3: place each block in the 2-D (instruction mix × cache estimate)
  space and group with k-means.
* :class:`ProfileBlockTyper` — the evaluation-grade typer of Section
  IV-A1: "to determine basic block types for our static analysis with
  little to no error, we use an execution profile from each core.  Using
  the observed IPC, we assign types to basic blocks.  The difference in
  IPC between the core types is compared to an IPC threshold."

Plus :func:`inject_clustering_error`, the Figure 7 mechanism: "after
determining the clustering of blocks, a percentage of blocks were
randomly selected and placed into the opposite cluster."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AnalysisError
from repro.program.basic_block import BasicBlock, NodeKind
from repro.program.cfg import CFG, cached_cfg
from repro.program.module import Program
import numpy as np

from repro.analysis.features import block_features
from repro.analysis.kmeans import kmeans
from repro.analysis.reuse_distance import DEFAULT_NOMINAL_CACHE, NominalCache


@dataclass
class BlockTyping:
    """A phase-type assignment for the blocks of one program.

    Attributes:
        types: map from block uid (``"proc#index"``) to type id in
            ``range(num_types)``.  Blocks absent from the map are
            untyped (too small, special nodes, unknown targets).
        num_types: |Π|.
    """

    types: dict[str, int]
    num_types: int

    def type_of(self, block: BasicBlock) -> Optional[int]:
        """The type of *block*, or ``None`` if untyped."""
        return self.types.get(block.uid)

    def __len__(self) -> int:
        return len(self.types)


def _typable_blocks(program: Program, cfgs: dict[str, CFG]) -> list[BasicBlock]:
    """Ordinary blocks eligible for typing, program-wide."""
    blocks = []
    for proc in program:
        for block in cfgs[proc.name]:
            if block.kind is NodeKind.BLOCK and len(block) > 0:
                blocks.append(block)
    return blocks


def build_all_cfgs(program: Program) -> dict[str, CFG]:
    """Build (or fetch) the CFG of every procedure."""
    return {proc.name: cached_cfg(proc) for proc in program}


@dataclass
class StaticBlockTyper:
    """Section II-A3 static typer: 2-D features + k-means.

    Attributes:
        num_types: number of phase types (the paper uses one per core
            type; two for the evaluation machine).
        seed: k-means++ seed, for reproducibility.
        cache: nominal cache for the reuse-distance estimate.
    """

    num_types: int = 2
    seed: int = 0
    cache: NominalCache = field(default_factory=lambda: DEFAULT_NOMINAL_CACHE)

    def type_blocks(
        self, program: Program, cfgs: Optional[dict[str, CFG]] = None
    ) -> BlockTyping:
        """Cluster all ordinary blocks of *program* into phase types."""
        cfgs = cfgs or build_all_cfgs(program)
        blocks = _typable_blocks(program, cfgs)
        if not blocks:
            raise AnalysisError(f"program {program.name!r} has no typable blocks")

        points = np.asarray(
            [block_features(b, program, self.cache).as_tuple() for b in blocks],
            dtype=float,
        )
        k = min(self.num_types, len(points))
        result = kmeans(points, k, seed=self.seed)

        # Normalise cluster ids so type 0 is the most memory-bound
        # cluster (highest centroid along the stall axis).  This gives
        # the ids a stable meaning across programs, which the
        # error-injection and reporting code relies on.
        order = sorted(
            range(k), key=lambda c: -float(result.centroids[c][1])
        )
        remap = {old: new for new, old in enumerate(order)}
        types = {
            b.uid: remap[int(label)] for b, label in zip(blocks, result.labels)
        }
        return BlockTyping(types, self.num_types)


@dataclass
class ProfileBlockTyper:
    """Section IV-A1 profile typer: per-core-type IPC deltas.

    Runs every block through the machine's cost model once per core type
    (the simulator analogue of profiling on each core) and compares the
    IPC difference against ``ipc_threshold``: blocks whose IPC improves
    on a slower core type by more than the threshold are memory-bound
    (type 0); the rest are compute-bound (type 1).

    Attributes:
        machine: the AMP description (only its core *types* are used).
        ipc_threshold: minimum IPC delta to classify as memory-bound.
    """

    machine: "object"  # repro.sim.machine.MachineConfig; lazy to avoid cycle.
    ipc_threshold: float = 0.1

    def type_blocks(
        self, program: Program, cfgs: Optional[dict[str, CFG]] = None
    ) -> BlockTyping:
        from repro.sim.cost_model import CostModel  # Local: avoid import cycle.

        cfgs = cfgs or build_all_cfgs(program)
        blocks = _typable_blocks(program, cfgs)
        if not blocks:
            raise AnalysisError(f"program {program.name!r} has no typable blocks")

        model = CostModel(self.machine)
        core_types = self.machine.core_types()
        if len(core_types) < 2:
            raise AnalysisError("profile typing needs at least two core types")
        # Order core types fastest first.
        core_types = sorted(core_types, key=lambda ct: -ct.freq_ghz)
        fast, slow = core_types[0], core_types[-1]

        types: dict[str, int] = {}
        for block in blocks:
            ipc_fast = model.block_ipc(block, fast, program)
            ipc_slow = model.block_ipc(block, slow, program)
            memory_bound = (ipc_slow - ipc_fast) > self.ipc_threshold
            types[block.uid] = 0 if memory_bound else 1
        return BlockTyping(types, 2)


def inject_clustering_error(
    typing: BlockTyping, error_fraction: float, seed: int = 0
) -> BlockTyping:
    """Return a copy of *typing* with a fraction of blocks misclassified.

    Figure 7's protocol: randomly select ``error_fraction`` of the typed
    blocks and move each to the opposite cluster (for two types) or to a
    uniformly random *different* cluster otherwise.

    Raises:
        AnalysisError: if *error_fraction* is outside [0, 1].
    """
    if not 0.0 <= error_fraction <= 1.0:
        raise AnalysisError(f"error fraction {error_fraction} outside [0, 1]")
    rng = random.Random(seed)
    uids = sorted(typing.types)
    flip_count = round(len(uids) * error_fraction)
    flipped = set(rng.sample(uids, flip_count)) if flip_count else set()

    new_types = dict(typing.types)
    for uid in flipped:
        current = new_types[uid]
        if typing.num_types == 2:
            new_types[uid] = 1 - current
        else:
            choices = [t for t in range(typing.num_types) if t != current]
            new_types[uid] = rng.choice(choices)
    return BlockTyping(new_types, typing.num_types)
