"""Live-register analysis.

Section III credits the instrumentation framework's low overhead to
"code specialization, live register analysis, and instruction motion":
a phase mark need only save the registers it clobbers that are *live*
at its insertion point.  This module provides the classic backward
may-liveness dataflow over a CFG, and the per-edge query the rewriter
uses to shrink trampolines.

Conservatism: at procedure exits every register in ``live_at_exit`` is
assumed live (callers may read anything unless a calling convention says
otherwise); calls are assumed to use and define every register (callees
are opaque at this level); indirect jumps leak everything.  With the
default ``live_at_exit="all"`` the analysis is sound for arbitrary
callers, which the interpreter-based semantic-preservation tests verify
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import FPR, GPR, SP, Register
from repro.program.cfg import CFG

#: Pseudo-register modelling the comparison flags.
FLAGS = "flags"

#: Every architectural location the analysis tracks.
ALL_LOCATIONS = frozenset(
    [r.name for r in GPR] + [r.name for r in FPR] + [SP.name, FLAGS]
)


def def_use(instr: Instruction) -> tuple:
    """Return (defs, uses) register-name sets of one instruction."""
    opcode = instr.opcode
    regs = [op for op in instr.operands if isinstance(op, Register)]

    if opcode in (
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SHL, Opcode.SHR, Opcode.MUL, Opcode.DIV,
        Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    ):
        defs = {regs[0].name}
        uses = {r.name for r in regs[1:]}
    elif opcode in (Opcode.MOV, Opcode.MOVI, Opcode.FMOV):
        defs = {regs[0].name}
        uses = {r.name for r in regs[1:]}
    elif opcode is Opcode.CMP:
        defs = {FLAGS}
        uses = {r.name for r in regs}
    elif opcode is Opcode.LOAD:
        defs = {regs[0].name}
        uses = set()
    elif opcode is Opcode.STORE:
        defs = set()
        uses = {regs[0].name}
    elif opcode is Opcode.PUSH:
        defs = {SP.name}
        uses = {regs[0].name, SP.name}
    elif opcode is Opcode.POP:
        defs = {regs[0].name, SP.name}
        uses = {SP.name}
    elif opcode is Opcode.BR:
        defs = set()
        uses = {FLAGS}
    elif opcode in (Opcode.JMPI, Opcode.CALLI):
        defs = set(ALL_LOCATIONS)  # Opaque target: clobber everything.
        uses = set(ALL_LOCATIONS)
    elif opcode is Opcode.CALL:
        defs = set(ALL_LOCATIONS)  # Callee is opaque at this level.
        uses = set(ALL_LOCATIONS)
    elif opcode is Opcode.SYS:
        # The syscall ABI clobbers the scratch registers r0-r2.
        defs = {GPR[0].name, GPR[1].name, GPR[2].name}
        uses = {GPR[0].name, GPR[1].name}
    else:  # RET, JMP, NOP
        defs = set()
        uses = set()

    if instr.mem is not None and instr.mem.index is not None:
        uses.add(instr.mem.index.name)
    return defs, uses


@dataclass
class LivenessResult:
    """Block-boundary liveness of one procedure.

    Attributes:
        live_in: register-name set live at each block's entry.
        live_out: register-name set live at each block's exit.
    """

    live_in: list
    live_out: list

    def live_at_block_entry(self, block_index: int) -> frozenset:
        return frozenset(self.live_in[block_index])


def compute_liveness(cfg: CFG, live_at_exit="all") -> LivenessResult:
    """Backward may-liveness over *cfg*.

    Args:
        live_at_exit: registers assumed live when the procedure returns:
            ``"all"`` (sound for arbitrary callers) or an iterable of
            register names (a calling convention).
    """
    if live_at_exit == "all":
        exit_live = set(ALL_LOCATIONS)
    else:
        exit_live = set(live_at_exit)

    n = len(cfg)
    gen = [set() for _ in range(n)]
    kill = [set() for _ in range(n)]
    for block in cfg:
        seen_defs: set = set()
        for instr in block.instrs:
            defs, uses = def_use(instr)
            gen[block.index] |= uses - seen_defs
            seen_defs |= defs
        kill[block.index] = seen_defs

    live_in = [set() for _ in range(n)]
    live_out = [set() for _ in range(n)]
    is_exit = [
        not cfg.succs(b) for b in range(n)
    ]

    changed = True
    while changed:
        changed = False
        for b in reversed(range(n)):
            out = set(exit_live) if is_exit[b] else set()
            for succ in cfg.succs(b):
                out |= live_in[succ]
            new_in = gen[b] | (out - kill[b])
            if out != live_out[b] or new_in != live_in[b]:
                live_out[b] = out
                live_in[b] = new_in
                changed = True

    return LivenessResult(live_in, live_out)
