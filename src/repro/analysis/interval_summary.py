"""Interval summarization (Section II-A1b).

"For each interval we compute its dominant type by doing a depth-first
traversal of the interval starting with the entry node, while ignoring
backward control-flow edges.  Throughout this traversal, a value is
computed for each type.  Each node has a weight associated with it (those
within cycles are given a higher weight)."

The node weight here is its instruction count; nodes inside a cycle of
the interval (detected via the CFG's loop structure) are boosted by
``cycle_weight``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from repro.program.intervals import Interval
from repro.program.loops import block_nesting_levels, find_loops
from repro.analysis.annotate import AttributedCFG


@dataclass(frozen=True)
class TypedInterval:
    """An interval with its dominant type.

    Attributes:
        interval: the underlying interval (block indices).
        dominant_type: the type with the highest accumulated value, or
            ``None`` when no member block is typed.
        strength: dominant value over the sum of all values (σ), 0 when
            untyped.
        size_instrs: total static instruction count of member blocks.
    """

    interval: Interval
    dominant_type: Optional[int]
    strength: float
    size_instrs: int

    @property
    def header(self) -> int:
        return self.interval.header


@dataclass(frozen=True)
class IntervalSummary:
    """All typed intervals of one procedure plus the membership map."""

    proc_name: str
    intervals: list[TypedInterval]
    owner: dict  # block index -> interval position in ``intervals``

    def interval_of(self, block_index: int) -> Optional[int]:
        return self.owner.get(block_index)


def summarize_intervals(
    acfg: AttributedCFG, cycle_weight: float = 10.0
) -> IntervalSummary:
    """Compute the dominant type of every interval of *acfg*.

    Args:
        cycle_weight: multiplier applied to the weight of nodes that lie
            inside a cycle (loop) contained in the interval.
    """
    cfg = acfg.cfg
    loops = find_loops(cfg)
    nesting = block_nesting_levels(cfg, loops)

    summaries: list[TypedInterval] = []
    owner: dict = {}
    for position, interval in enumerate(acfg.intervals):
        members = set(interval.nodes)
        for block in interval.nodes:
            owner[block] = position

        values: dict[int, float] = defaultdict(float)
        size = 0
        # Depth-first traversal from the header, forward edges only,
        # restricted to the interval.
        visited = {interval.header}
        stack = [interval.header]
        while stack:
            node = stack.pop()
            block = cfg.blocks[node]
            size += len(block)
            node_type = acfg.type_of(node)
            if node_type is not None:
                weight = float(len(block))
                if nesting[node] > 0:
                    # The node sits inside a cycle captured by the
                    # interval (interval headers dominate their loops).
                    weight *= cycle_weight
                values[node_type] += weight
            for succ in cfg.succs(node, ignore_back=True):
                if succ in members and succ not in visited:
                    visited.add(succ)
                    stack.append(succ)

        if values:
            dominant = min(
                (t for t in values),
                key=lambda t: (-values[t], t),
            )
            total = sum(values.values())
            strength = values[dominant] / total if total > 0 else 0.0
        else:
            dominant = None
            strength = 0.0
        summaries.append(TypedInterval(interval, dominant, strength, size))

    return IntervalSummary(cfg.proc_name, summaries, owner)
