"""Per-block feature vectors for static phase typing.

Section II-A3: "This analysis involves looking at a combination of
instruction types as well as a rough estimate of cache behavior ...
Information describing these two components are used to place blocks in a
two dimensional space."

Dimension 1 — *compute intensity*: arithmetic work per instruction,
weighting each instruction class by its nominal latency so a divide-heavy
block scores far above a move-heavy one.

Dimension 2 — *memory boundedness*: expected nominal stall cycles per
instruction — the reuse-distance miss estimate of
:mod:`repro.analysis.reuse_distance` weighted by a nominal miss penalty,
so both dimensions are in cycles-per-instruction and commensurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import InstrClass
from repro.program.basic_block import BasicBlock
from repro.program.module import Program
from repro.analysis.reuse_distance import (
    DEFAULT_NOMINAL_CACHE,
    NominalCache,
    block_reuse_profile,
)

#: Nominal arithmetic weight of each instruction class, used for the
#: compute-intensity feature.  Proportional to typical issue latencies.
COMPUTE_WEIGHTS: dict[InstrClass, float] = {
    InstrClass.IALU: 1.0,
    InstrClass.IMUL: 3.0,
    InstrClass.IDIV: 20.0,
    InstrClass.FALU: 3.0,
    InstrClass.FMUL: 5.0,
    InstrClass.FDIV: 30.0,
    InstrClass.LOAD: 0.0,
    InstrClass.STORE: 0.0,
    InstrClass.STACK: 0.0,
    InstrClass.BRANCH: 0.5,
    InstrClass.JUMP: 0.0,
    InstrClass.IJUMP: 0.0,
    InstrClass.CALL: 0.0,
    InstrClass.ICALL: 0.0,
    InstrClass.RET: 0.0,
    InstrClass.SYSCALL: 0.0,
    InstrClass.NOP: 0.0,
}


#: Nominal cycles one nominal-cache miss stalls the pipeline.  Both
#: feature dimensions are cycles-per-instruction; the penalty is set
#: high (a DRAM round trip plus queueing under load) so that any
#: appreciable miss rate moves a block decisively toward the
#: memory-bound cluster — calibrated against the profile typer, where it
#: brings the loop-level misclassification rate near the paper's ~15%.
NOMINAL_MISS_PENALTY = 400.0


@dataclass(frozen=True)
class BlockFeatures:
    """The 2-D feature point of one basic block.

    Attributes:
        compute_intensity: nominal arithmetic cycles per instruction.
        memory_boundedness: expected nominal stall cycles per instruction.
    """

    compute_intensity: float
    memory_boundedness: float

    def as_tuple(self) -> tuple[float, float]:
        return (self.compute_intensity, self.memory_boundedness)


def block_features(
    block: BasicBlock,
    program: Program,
    cache: NominalCache = DEFAULT_NOMINAL_CACHE,
) -> BlockFeatures:
    """Compute the feature point of *block*."""
    instrs = max(1, len(block.instrs))
    compute = sum(
        COMPUTE_WEIGHTS[iclass] * count for iclass, count in block.class_counts.items()
    )
    profile = block_reuse_profile(block, program, cache)
    return BlockFeatures(
        compute / instrs, profile.miss_fraction * NOMINAL_MISS_PENALTY
    )
