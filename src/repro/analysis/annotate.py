"""Attributed control-flow graphs: ``B̄ ⊆ B × Π``.

An :class:`AttributedCFG` bundles one procedure's CFG with the phase type
of each node; an :class:`AttributedProgram` holds one per procedure plus
the shared :class:`~repro.analysis.block_typing.BlockTyping`, the call
graph, and lazily computed intervals and loops — everything downstream
passes (summarization, transition marking, instrumentation) need.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

from repro.program.basic_block import BasicBlock
from repro.program.callgraph import CallGraph, build_callgraph
from repro.program.cfg import CFG
from repro.program.intervals import Interval, partition_intervals
from repro.program.loops import Loop, find_loops
from repro.program.module import Program
from repro.analysis.block_typing import BlockTyping, build_all_cfgs


@dataclass
class AttributedCFG:
    """One procedure's CFG together with node phase types."""

    cfg: CFG
    typing: BlockTyping

    def type_of(self, block_index: int) -> Optional[int]:
        """Phase type of block *block_index*, or ``None`` if untyped."""
        return self.typing.type_of(self.cfg.blocks[block_index])

    def __iter__(self):
        return iter(self.cfg)

    def __len__(self) -> int:
        return len(self.cfg)

    @cached_property
    def intervals(self) -> list[Interval]:
        return partition_intervals(self.cfg)

    @cached_property
    def loops(self) -> list[Loop]:
        return find_loops(self.cfg)


class AttributedProgram:
    """The whole-program view the static analysis pipeline operates on."""

    def __init__(
        self,
        program: Program,
        typing: BlockTyping,
        cfgs: Optional[dict[str, CFG]] = None,
    ):
        self.program = program
        self.typing = typing
        self.cfgs = cfgs or build_all_cfgs(program)
        self.attributed = {
            name: AttributedCFG(cfg, typing) for name, cfg in self.cfgs.items()
        }

    def __getitem__(self, proc_name: str) -> AttributedCFG:
        return self.attributed[proc_name]

    def __iter__(self):
        return iter(self.attributed.values())

    @cached_property
    def callgraph(self) -> CallGraph:
        return build_callgraph(self.program, self.cfgs)

    def block(self, uid: str) -> BasicBlock:
        """Resolve a block uid (``"proc#index"``) to its block."""
        proc, _, index = uid.partition("#")
        return self.cfgs[proc].blocks[int(index)]


def annotate_program(
    program: Program,
    typing: BlockTyping,
    cfgs: Optional[dict[str, CFG]] = None,
) -> AttributedProgram:
    """Convenience constructor for :class:`AttributedProgram`."""
    return AttributedProgram(program, typing, cfgs)
