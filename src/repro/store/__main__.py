"""Command-line front door for the artifact store.

::

    python -m repro.store serve --dir STORE [--host H] [--port P]
                                [--token T] [--readonly]
    python -m repro.store push  --dir STORE --url REMOTE [--prefix P]
    python -m repro.store pull  --dir STORE --url REMOTE [--prefix P]
    python -m repro.store gc    --dir STORE [--broker-dir DIR]
                                [--url REMOTE] [--max-age S] [--max-bytes N]
    python -m repro.store stats --dir STORE [--url REMOTE]

``push``/``pull`` synchronise refs (and the objects they point at)
between a local store directory and one or more remote tiers; ``gc``
drops unreferenced objects and, with ``--broker-dir``, the per-key
checkpoint directories of broker tasks that already completed.  With
``--max-age``/``--max-bytes`` it becomes an age/LRU *prune* — refs
idle past the age (or least-recently-touched while over the byte
budget) are dropped first, then unreferenced objects collected — and
with ``--url`` the prune runs on remote tiers (auth applies: export
``REPRO_AUTH_TOKEN`` for a token-protected server).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ReproError, StoreCorruptionError
from repro.store import STORE_URL_ENV, LocalStore, parse_store_url
from repro.store.server import serve


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Serve, sync, and maintain content-addressed "
        "artifact stores.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    sp = sub.add_parser("serve", help="serve a store directory over HTTP")
    sp.add_argument("--dir", required=True, help="store directory to serve")
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=8750,
                    help="port to bind (0 = ephemeral)")
    sp.add_argument("--verbose", action="store_true",
                    help="log each request")
    sp.add_argument("--token", default=None,
                    help="require this bearer token on every request "
                    "(default: $REPRO_AUTH_TOKEN; unset = open)")
    sp.add_argument("--readonly", action="store_true",
                    help="reject mutating requests with 403")

    for verb, text in (("push", "upload local refs/objects to remotes"),
                       ("pull", "download remote refs/objects locally")):
        sp = sub.add_parser(verb, help=text)
        sp.add_argument("--dir", required=True, help="local store directory")
        sp.add_argument("--url", default=None,
                        help=f"remote tiers (default: ${STORE_URL_ENV})")
        sp.add_argument("--prefix", default="",
                        help="only refs under this prefix")

    sp = sub.add_parser("gc", help="drop unreferenced objects / done "
                                   "broker checkpoints / prune by age-LRU")
    sp.add_argument("--dir", default=None, help="store directory to collect")
    sp.add_argument("--broker-dir", default=None,
                    help="also prune ckpt/ dirs of done broker tasks")
    sp.add_argument("--url", default=None,
                    help="prune remote tiers instead of (or as well as) "
                    f"--dir (default when set: ${STORE_URL_ENV})")
    sp.add_argument("--max-age", type=float, default=None, metavar="S",
                    help="drop refs not touched for S seconds")
    sp.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="LRU-drop refs while referenced bytes exceed N")

    sp = sub.add_parser("stats", help="print tier statistics as JSON")
    sp.add_argument("--dir", default=None, help="local store directory")
    sp.add_argument("--url", default=None,
                    help=f"remote tiers (default: ${STORE_URL_ENV})")

    return parser.parse_args(argv)


def _remotes(url: Optional[str]) -> list:
    import os

    text = url if url is not None else os.environ.get(STORE_URL_ENV, "")
    tiers = parse_store_url(text)
    if not tiers:
        raise SystemExit(
            f"no remote tiers: pass --url or set {STORE_URL_ENV}"
        )
    return tiers


def _sync(source, targets, prefix: str) -> tuple:
    """Copy every ref under *prefix* (and its object) from *source*
    into each of *targets*; returns (refs copied, bytes copied)."""
    copied = 0
    moved_bytes = 0
    for name, digest in sorted(source.refs(prefix).items()):
        try:
            data = source.get(digest)
        except StoreCorruptionError:
            print(f"skipping corrupt object for {name}", file=sys.stderr)
            continue
        if data is None:
            continue
        fresh = False
        for target in targets:
            if target.has(digest) and target.get_ref(name) == digest:
                continue
            # Object first, then the ref — file-before-index.
            if target.put(data, digest) is None:
                continue
            target.set_ref(name, digest)
            fresh = True
        if fresh:
            copied += 1
            moved_bytes += len(data)
    return copied, moved_bytes


def _cmd_push(args) -> int:
    local = LocalStore(args.dir)
    copied, moved = _sync(local, _remotes(args.url), args.prefix)
    print(f"pushed {copied} refs ({moved} bytes)")
    return 0


def _cmd_pull(args) -> int:
    local = LocalStore(args.dir)
    copied = 0
    moved = 0
    for remote in _remotes(args.url):
        got, size = _sync(remote, [local], args.prefix)
        copied += got
        moved += size
    print(f"pulled {copied} refs ({moved} bytes)")
    return 0


def _cmd_gc(args) -> int:
    if not args.dir and not args.broker_dir and not args.url:
        raise SystemExit("gc needs --dir, --broker-dir, and/or --url")
    pruning = args.max_age is not None or args.max_bytes is not None
    if args.dir:
        local = LocalStore(args.dir)
        if pruning:
            dropped, removed, freed = local.prune(
                max_age=args.max_age, max_bytes=args.max_bytes
            )
            print(
                f"prune {args.dir}: dropped {dropped} refs, removed "
                f"{removed} objects ({freed} bytes)"
            )
        else:
            removed, freed = local.gc()
            print(
                f"gc {args.dir}: removed {removed} objects ({freed} bytes)"
            )
    if args.url:
        for remote in _remotes(args.url):
            if isinstance(remote, LocalStore):
                dropped, removed, freed = remote.prune(
                    max_age=args.max_age, max_bytes=args.max_bytes
                )
                out = {"refs_dropped": dropped, "objects_removed": removed,
                       "bytes_freed": freed}
            else:
                out = remote.prune(
                    max_age=args.max_age, max_bytes=args.max_bytes
                )
            if out is None:
                print(f"prune {remote.name}: unavailable", file=sys.stderr)
                continue
            print(
                f"prune {remote.name}: dropped {out['refs_dropped']} refs, "
                f"removed {out['objects_removed']} objects "
                f"({out['bytes_freed']} bytes)"
            )
    if args.broker_dir:
        from repro.experiments.broker import Broker

        broker = Broker(args.broker_dir)
        dirs, freed = broker.gc_checkpoints()
        print(
            f"gc {args.broker_dir}: removed {dirs} done-task checkpoint "
            f"dirs ({freed} bytes)"
        )
    return 0


def _cmd_stats(args) -> int:
    tiers = {}
    if args.dir:
        local = LocalStore(args.dir)
        tiers[local.name] = local.stats_dict()
    for remote in _remotes(args.url) if (args.url or not args.dir) else []:
        if isinstance(remote, LocalStore):
            tiers[remote.name] = remote.stats_dict()
        else:
            tiers[remote.name] = {
                "refs": len(remote.refs()),
                "tripped": remote.tripped,
            }
    print(json.dumps({"tiers": tiers}, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    try:
        if args.verb == "serve":
            serve(args.dir, host=args.host, port=args.port,
                  verbose=args.verbose, token=args.token,
                  readonly=args.readonly)
            return 0
        return {
            "push": _cmd_push,
            "pull": _cmd_pull,
            "gc": _cmd_gc,
            "stats": _cmd_stats,
        }[args.verb](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
