"""Shared content-addressed artifact store (see :mod:`repro.store.cas`).

Configuration is two environment variables, mirrored by CLI flags:

``REPRO_STORE_DIR`` (``--store-dir``)
    A local CAS directory used as the process-wide persistent tier for
    consumers that have no directory of their own (broker results,
    checkpoint snapshots).  The pipeline cache's ``--cache-dir`` *is*
    already a store directory and does not need this.

``REPRO_STORE_URL`` (``--store-url``)
    Comma-separated remote tiers, consulted in order on a local miss:
    ``http(s)://`` servers (run one with ``python -m repro.store
    serve``) and/or plain filesystem paths (an rsync-able directory).

:func:`default_store` builds one process-wide :class:`TieredStore` from
those variables, re-built automatically if they change (the CLI writes
flags into the environment so spawned workers inherit them).  It
returns ``None`` when neither is set — consumers skip store plumbing
entirely and behave exactly as before.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.store.cas import (
    DEFAULT_COOLDOWN,
    DEFAULT_TIMEOUT,
    HTTPStore,
    LocalStore,
    TieredStore,
    atomic_publish,
    object_digest,
    parse_store_url,
)

__all__ = [
    "DEFAULT_COOLDOWN",
    "DEFAULT_TIMEOUT",
    "HTTPStore",
    "LocalStore",
    "STORE_DIR_ENV",
    "STORE_URL_ENV",
    "TieredStore",
    "atomic_publish",
    "default_store",
    "object_digest",
    "parse_store_url",
    "remote_tiers",
]

STORE_URL_ENV = "REPRO_STORE_URL"
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: ``((dir, url), TieredStore | None)`` — rebuilt when the env changes.
_cached_store = (None, None)
#: ``(url, [tiers])`` — shared remote tier objects, so breaker/cooldown
#: state is process-wide rather than per-consumer.
_cached_remotes = (None, [])


def remote_tiers() -> List:
    """The remote tiers configured via :data:`STORE_URL_ENV` (shared
    instances: every consumer sees the same breaker state)."""
    global _cached_remotes
    url = os.environ.get(STORE_URL_ENV, "").strip()
    if url != _cached_remotes[0]:
        _cached_remotes = (url, parse_store_url(url))
    return _cached_remotes[1]


def default_store() -> Optional[TieredStore]:
    """The process-wide store, or ``None`` when nothing is configured.

    Writes are pushed to remote tiers too (best-effort — a dead or
    read-only tier degrades silently), so one worker's compute warms
    the whole fleet.
    """
    global _cached_store
    key = (
        os.environ.get(STORE_DIR_ENV, "").strip(),
        os.environ.get(STORE_URL_ENV, "").strip(),
    )
    if key != _cached_store[0]:
        directory, url = key
        if not directory and not url:
            store = None
        else:
            store = TieredStore(
                local=LocalStore(directory) if directory else None,
                remotes=remote_tiers(),
                push_remotes=True,
            )
        _cached_store = (key, store)
    return _cached_store[1]
