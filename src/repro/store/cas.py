"""Content-addressed artifact store with tiered read-through caching.

Every cache tier the repo grew so far was an island: the pipeline
cache's disk tier, per-run checkpoint directories, digest-named broker
result files.  This module gives them one shared substrate — a
**content-addressed store** (CAS) keyed by the sha256 fingerprints the
repo already computes everywhere — so CI matrix jobs, developer
machines, and broker workers on other hosts can share one warm store
instead of each paying the full cold-start recompute.

Layout of one store directory (a :class:`LocalStore`)::

    objects/<aa>/<sha256>     immutable blobs, named by their own digest
    refs/<namespace>/<name>   mutable pointers: one hex digest per file
    quarantine/               objects that failed verification on read

The invariants every tier honors:

object immutability
    An object file's name *is* the sha256 of its bytes.  Two writers
    racing to publish the same digest are by definition writing the
    same bytes, so publication is a temp file + :func:`os.replace` and
    any interleaving yields one canonical object.

verification on read
    Every object read from disk or from a remote tier is re-hashed and
    compared against its name **before** it is used or promoted into a
    faster tier.  A mismatch quarantines the local file (or
    negative-caches the remote entry) and raises
    :class:`~repro.errors.StoreCorruptionError`; callers treat that as
    a miss and fall through — to the next tier, or to recompute.

file before index
    A ref is only ever written after the object it points to has been
    published (the broker's file-before-row rule).  A crash between the
    two leaves at worst an orphaned object for ``gc``, never a ref
    pointing at missing bytes.

graceful degradation
    Remote tiers (:class:`HTTPStore`, or a :class:`LocalStore` over an
    rsync-able directory) can die mid-run.  Transport errors are never
    raised: a failing HTTP tier trips a cooldown breaker and every
    operation degrades to an instant miss until it elapses, so a dead
    store costs a bounded timeout once — not once per lookup — and the
    run falls back to local compute, byte-identically.

:class:`TieredStore` chains tiers fastest-first (in-process dict →
local CAS directory → remotes) with read-through promotion: a remote
hit is verified, then written into the local directory and the memory
tier so the next lookup never leaves the process.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import StoreCorruptionError, StoreError
from repro.net import CooldownBreaker, bearer_headers, resolve_token
from repro.telemetry.context import current_recorder

__all__ = [
    "DEFAULT_COOLDOWN",
    "DEFAULT_TIMEOUT",
    "HTTPStore",
    "LocalStore",
    "TieredStore",
    "atomic_publish",
    "object_digest",
    "parse_store_url",
]

#: Seconds an HTTP-tier request may take before the tier is declared
#: slow and tripped into its cooldown (``REPRO_STORE_TIMEOUT``).
DEFAULT_TIMEOUT = 2.0

#: Seconds a failed remote tier stays tripped — every operation is an
#: instant miss — before it is probed again (``REPRO_STORE_COOLDOWN``).
#: Negative results (a digest or ref the tier did not have) are cached
#: for the same window, so a cold remote is not re-asked per lookup.
DEFAULT_COOLDOWN = 30.0

STORE_TIMEOUT_ENV = "REPRO_STORE_TIMEOUT"
STORE_COOLDOWN_ENV = "REPRO_STORE_COOLDOWN"

_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")
_REF_PART_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def object_digest(data: bytes) -> str:
    """The store address of *data*: its sha256 hex digest."""
    return hashlib.sha256(data).hexdigest()


def _check_digest(digest: str) -> str:
    if not _DIGEST_RE.match(digest or ""):
        raise StoreError(f"not a sha256 hex digest: {digest!r}")
    return digest


def _check_ref(name: str) -> str:
    """Validate a ref name: slash-separated path-safe segments."""
    parts = (name or "").split("/")
    if not parts or not all(
        _REF_PART_RE.match(part) and part not in (".", "..")
        for part in parts
    ):
        raise StoreError(f"invalid ref name {name!r}")
    return name


def atomic_publish(path, data: bytes, fsync: bool = False) -> None:
    """Write *data* to *path* via a unique temp file + ``os.replace``.

    The pid+thread-qualified temp name means two racing writers can
    never tear each other's bytes; the replace publishes all-or-nothing.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _incr(name: str, delta: float = 1.0) -> None:
    rec = current_recorder()
    if rec.enabled and rec.wants("store"):
        rec.incr(name, delta)


class _TierStats:
    """Hit/miss/byte counters one tier keeps for the stats surfaces."""

    __slots__ = ("hits", "misses", "fetched_bytes", "errors", "corruptions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fetched_bytes = 0
        self.errors = 0
        self.corruptions = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fetched_bytes": self.fetched_bytes,
            "errors": self.errors,
            "corruptions": self.corruptions,
        }


class LocalStore:
    """One CAS directory: the local tier, and the rsync-able remote tier.

    The same class serves both roles — a directory published over NFS
    or synced with rsync *is* a remote tier, read through the identical
    verification path as an HTTP one.

    Args:
        root: the store directory (created lazily on first write, so a
            read-only consumer never needs write permission).
        fsync: fsync object files before publishing (durability for
            broker-grade writers; off by default).
    """

    def __init__(self, root, fsync: bool = False) -> None:
        self.root = Path(root)
        self.fsync = bool(fsync)
        self.stats = _TierStats()

    @property
    def name(self) -> str:
        return f"dir:{self.root}"

    # -- objects ------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / digest

    def has(self, digest: str) -> bool:
        return self._object_path(_check_digest(digest)).is_file()

    def put(self, data: bytes, digest: Optional[str] = None) -> str:
        """Publish *data*; returns its digest.  Idempotent: an existing
        object with the same digest is left untouched (same digest,
        same bytes)."""
        actual = object_digest(data)
        if digest is not None and _check_digest(digest) != actual:
            raise StoreError(
                f"digest mismatch on put: claimed {digest[:12]}, "
                f"bytes hash to {actual[:12]}"
            )
        path = self._object_path(actual)
        if not path.exists():
            atomic_publish(path, data, fsync=self.fsync)
        return actual

    def get(self, digest: str) -> Optional[bytes]:
        """The verified bytes of *digest*, or ``None`` if absent.

        Raises:
            StoreCorruptionError: the stored bytes do not hash to their
                name.  The damaged file is moved into ``quarantine/``
                first (best-effort), so the next fetch re-resolves from
                a slower tier or recomputes instead of re-tripping.
        """
        path = self._object_path(_check_digest(digest))
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        if object_digest(data) != digest:
            self.stats.corruptions += 1
            self.quarantine(digest)
            raise StoreCorruptionError(
                f"object {digest[:12]} in {self.root} failed verification "
                f"(quarantined)"
            )
        self.stats.hits += 1
        self.stats.fetched_bytes += len(data)
        return data

    def object_size(self, digest: str) -> int:
        try:
            return self._object_path(digest).stat().st_size
        except OSError:
            return 0

    def quarantine(self, digest: str) -> None:
        """Move a damaged object out of the addressable layout."""
        path = self._object_path(digest)
        target = (
            self.root / "quarantine" / f"{digest}.{os.getpid()}.bad"
        )
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            # A read-only remote directory cannot be cleaned from here;
            # the corruption error alone keeps the object unused.
            pass

    def delete(self, digest: str) -> int:
        """Remove one object; returns the bytes freed."""
        path = self._object_path(_check_digest(digest))
        try:
            size = path.stat().st_size
            path.unlink()
            return size
        except OSError:
            return 0

    def objects(self) -> List[str]:
        """Every stored object digest (sorted)."""
        root = self.root / "objects"
        if not root.is_dir():
            return []
        out = []
        for shard in sorted(root.iterdir()):
            if not shard.is_dir():
                continue
            out.extend(
                entry.name
                for entry in sorted(shard.iterdir())
                if _DIGEST_RE.match(entry.name)
            )
        return out

    def size_bytes(self) -> int:
        return sum(self.object_size(digest) for digest in self.objects())

    # -- refs ---------------------------------------------------------------

    def _ref_path(self, name: str) -> Path:
        return self.root / "refs" / Path(*_check_ref(name).split("/"))

    def set_ref(self, name: str, digest: str) -> None:
        """Point *name* at *digest* (write the object FIRST — refs are
        the index half of the file-before-index rule)."""
        atomic_publish(
            self._ref_path(name),
            (_check_digest(digest) + "\n").encode("ascii"),
            fsync=self.fsync,
        )

    def get_ref(self, name: str) -> Optional[str]:
        try:
            text = self._ref_path(name).read_text(encoding="ascii").strip()
        except (OSError, UnicodeDecodeError):
            return None
        if not _DIGEST_RE.match(text):
            # A torn or scribbled ref is dropped, not trusted.
            self.delete_ref(name)
            self.stats.corruptions += 1
            return None
        return text

    def delete_ref(self, name: str) -> bool:
        try:
            self._ref_path(name).unlink()
            return True
        except OSError:
            return False

    def refs(self, prefix: str = "") -> Dict[str, str]:
        """``{name: digest}`` for every valid ref under *prefix*."""
        root = self.root / "refs"
        if prefix:
            _check_ref(prefix)
            root = root / Path(*prefix.split("/"))
        if not root.is_dir():
            return {}
        out: Dict[str, str] = {}
        base = self.root / "refs"
        for path in sorted(root.rglob("*")):
            if not path.is_file() or path.name.endswith(".tmp"):
                continue
            name = "/".join(path.relative_to(base).parts)
            try:
                text = path.read_text(encoding="ascii").strip()
            except (OSError, UnicodeDecodeError):
                continue
            if _DIGEST_RE.match(text):
                out[name] = text
        return out

    def ref_mtimes(self, prefix: str = "") -> List[Tuple[float, str, str]]:
        """``(mtime, name, digest)`` per ref — the eviction ordering."""
        out = []
        for name, digest in self.refs(prefix).items():
            try:
                mtime = self._ref_path(name).stat().st_mtime
            except OSError:
                continue
            out.append((mtime, name, digest))
        return out

    # -- maintenance --------------------------------------------------------

    def prune(
        self,
        max_age: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Tuple[int, int, int]:
        """Age/LRU eviction: drop refs, then gc unreferenced objects.

        Two independent policies compose (either may be ``None``):

        * *max_age*: refs not touched for more than this many seconds
          are dropped.
        * *max_bytes*: while referenced bytes exceed this budget, drop
          the least-recently-touched surviving refs (object sizes are
          counted once however many refs share a digest).

        Only *refs* are evicted directly; objects leave through the
        ordinary ref-reachability :meth:`gc`, so a digest still named
        by any surviving ref keeps its bytes.  A pruned object is not
        special afterwards — re-fetching it from another tier runs the
        same digest verification as any cold read.

        Returns ``(refs dropped, objects removed, bytes freed)``.
        """
        if now is None:
            now = time.time()
        entries = sorted(self.ref_mtimes())  # oldest first
        dropped = 0
        if max_age is not None:
            cutoff = now - float(max_age)
            keep = []
            for mtime, name, digest in entries:
                if mtime < cutoff:
                    dropped += self.delete_ref(name)
                else:
                    keep.append((mtime, name, digest))
            entries = keep
        if max_bytes is not None:
            sizes = {
                digest: self.object_size(digest)
                for _mtime, _name, digest in entries
            }
            live: Dict[str, int] = {}
            for _mtime, _name, digest in entries:
                live[digest] = live.get(digest, 0) + 1
            total = sum(sizes.values())
            for _mtime, name, digest in entries:
                if total <= int(max_bytes):
                    break
                dropped += self.delete_ref(name)
                live[digest] -= 1
                if live[digest] == 0:
                    total -= sizes[digest]
        removed, freed = self.gc()
        return dropped, removed, freed

    def gc(self, keep: Iterable[str] = ()) -> Tuple[int, int]:
        """Delete objects referenced by no ref (and not in *keep*).

        Returns ``(objects removed, bytes freed)``.  Also sweeps stale
        ``*.tmp`` files left by crashed writers.
        """
        live = set(self.refs().values()) | set(keep)
        removed = 0
        freed = 0
        for digest in self.objects():
            if digest not in live:
                freed += self.delete(digest)
                removed += 1
        for sub in ("objects", "refs"):
            root = self.root / sub
            if not root.is_dir():
                continue
            for tmp in root.rglob("*.tmp"):
                try:
                    tmp.unlink()
                except OSError:
                    pass
        return removed, freed

    def stats_dict(self) -> dict:
        counts = self.stats.as_dict()
        counts.update(
            objects=len(self.objects()),
            refs=len(self.refs()),
            bytes=self.size_bytes(),
        )
        return counts


class HTTPStore:
    """Client for one remote store served by :mod:`repro.store.server`.

    All transport failures are swallowed into misses; the first failure
    trips a cooldown breaker (the tier answers "miss" instantly, no
    network) until *cooldown* elapses, so a dead server costs one
    bounded *timeout*, not one per lookup.  Negative results — a digest
    or ref the server answered 404 for — are remembered for the same
    window.
    """

    def __init__(
        self,
        url: str,
        timeout: Optional[float] = None,
        cooldown: Optional[float] = None,
        token: Optional[str] = None,
    ) -> None:
        if not url.startswith(("http://", "https://")):
            raise StoreError(f"not an http(s) store URL: {url!r}")
        self.url = url.rstrip("/")
        if timeout is None:
            timeout = _env_float(STORE_TIMEOUT_ENV, DEFAULT_TIMEOUT)
        if cooldown is None:
            cooldown = _env_float(STORE_COOLDOWN_ENV, DEFAULT_COOLDOWN)
        self.timeout = float(timeout)
        self.cooldown = float(cooldown)
        self.stats = _TierStats()
        self._breaker = CooldownBreaker(self.cooldown)
        self._headers = bearer_headers(resolve_token(token))

    @property
    def name(self) -> str:
        return self.url

    # -- breaker (shared implementation in :mod:`repro.net`) ----------------

    def _unavailable(self, key: str) -> bool:
        return self._breaker.unavailable(key)

    def _trip(self) -> None:
        self.stats.errors += 1
        self._breaker.trip()

    def _remember_miss(self, key: str) -> None:
        self._breaker.remember_miss(key)

    @property
    def tripped(self) -> bool:
        return self._breaker.tripped

    def _request(self, method: str, path: str, data: Optional[bytes] = None):
        req = urllib.request.Request(
            f"{self.url}{path}", data=data, method=method
        )
        for name, value in self._headers.items():
            req.add_header(name, value)
        return urllib.request.urlopen(req, timeout=self.timeout)

    def _fetch(self, kind: str, path: str, key: str) -> Optional[bytes]:
        if self._unavailable(key):
            self.stats.misses += 1
            return None
        try:
            with self._request("GET", path) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            exc.close()
            if exc.code == 404:
                self._remember_miss(key)
            else:
                self._trip()
            self.stats.misses += 1
            return None
        except (OSError, urllib.error.URLError, TimeoutError):
            self._trip()
            self.stats.misses += 1
            return None

    # -- store interface ----------------------------------------------------

    def get(self, digest: str) -> Optional[bytes]:
        data = self._fetch("obj", f"/obj/{_check_digest(digest)}", digest)
        if data is None:
            return None
        if object_digest(data) != digest:
            # The server shipped damaged bytes; never trust them, and
            # never re-ask within the cooldown.
            self.stats.corruptions += 1
            self._remember_miss(digest)
            raise StoreCorruptionError(
                f"object {digest[:12]} from {self.url} failed verification"
            )
        self.stats.hits += 1
        self.stats.fetched_bytes += len(data)
        return data

    def get_ref(self, name: str) -> Optional[str]:
        data = self._fetch("ref", f"/ref/{_check_ref(name)}", f"ref:{name}")
        if data is None:
            return None
        text = data.decode("ascii", "replace").strip()
        if not _DIGEST_RE.match(text):
            self.stats.corruptions += 1
            return None
        return text

    def has(self, digest: str) -> bool:
        if self._unavailable(digest):
            return False
        try:
            with self._request("HEAD", f"/obj/{_check_digest(digest)}"):
                return True
        except urllib.error.HTTPError as exc:
            exc.close()
            if exc.code == 404:
                self._remember_miss(digest)
            else:
                self._trip()
            return False
        except (OSError, urllib.error.URLError, TimeoutError):
            self._trip()
            return False

    def put(self, data: bytes, digest: Optional[str] = None) -> Optional[str]:
        """Best-effort push; returns the digest, or ``None`` if the tier
        is unavailable (never raises for transport failures)."""
        actual = object_digest(data)
        if digest is not None and _check_digest(digest) != actual:
            raise StoreError(
                f"digest mismatch on put: claimed {digest[:12]}, "
                f"bytes hash to {actual[:12]}"
            )
        # Writes respect the breaker only, never the negative cache: a
        # put is exactly how a remembered miss becomes a hit.
        if self.tripped:
            return None
        try:
            with self._request("PUT", f"/obj/{actual}", data=data):
                pass
        except urllib.error.HTTPError as exc:
            exc.close()
            self._trip()
            return None
        except (OSError, urllib.error.URLError, TimeoutError):
            self._trip()
            return None
        self._breaker.forget(actual)
        return actual

    def set_ref(self, name: str, digest: str) -> bool:
        if self.tripped:
            return False
        try:
            with self._request(
                "PUT",
                f"/ref/{_check_ref(name)}",
                data=_check_digest(digest).encode("ascii"),
            ):
                pass
        except urllib.error.HTTPError as exc:
            exc.close()
            self._trip()
            return False
        except (OSError, urllib.error.URLError, TimeoutError):
            self._trip()
            return False
        self._breaker.forget(f"ref:{name}")
        return True

    def refs(self, prefix: str = "") -> Dict[str, str]:
        if prefix:
            _check_ref(prefix)
        data = self._fetch(
            "refs", f"/refs/{prefix}".rstrip("/"), f"refs:{prefix}"
        )
        if data is None:
            return {}
        try:
            parsed = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self.stats.corruptions += 1
            return {}
        if not isinstance(parsed, dict):
            return {}
        return {
            name: digest
            for name, digest in parsed.items()
            if isinstance(digest, str) and _DIGEST_RE.match(digest)
        }

    def prune(
        self,
        max_age: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> Optional[dict]:
        """Ask the server to run :meth:`LocalStore.prune` (a mutating
        request — rejected on readonly servers, and requires the bearer
        token when one is configured).  Returns the server's summary
        ``{"refs_dropped", "objects_removed", "bytes_freed"}``, or
        ``None`` if the tier is unavailable.

        Raises:
            StoreError: the server refused the request (401/403/400) —
                a policy failure, not a transport one, so it is NOT
                swallowed into a miss.
        """
        if self.tripped:
            return None
        body = json.dumps({
            "max_age": max_age, "max_bytes": max_bytes,
        }).encode("utf-8")
        try:
            with self._request("POST", "/gc", data=body) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            code = exc.code
            exc.close()
            if code in (400, 401, 403):
                raise StoreError(
                    f"store {self.url} refused gc: HTTP {code}"
                ) from None
            self._trip()
            return None
        except (OSError, urllib.error.URLError, TimeoutError,
                UnicodeDecodeError, ValueError):
            self._trip()
            return None

    def stats_dict(self) -> dict:
        counts = self.stats.as_dict()
        counts["tripped"] = self.tripped
        return counts


def _env_float(name: str, fallback: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return float(raw)
    except ValueError:
        raise StoreError(f"{name} must be a number, got {raw!r}") from None


def parse_store_url(text: str) -> list:
    """Tier objects for a ``REPRO_STORE_URL`` value.

    Comma-separated entries, each either an ``http(s)://`` server or a
    filesystem path (the rsync-able directory tier); listed order is
    consulted order.
    """
    tiers: list = []
    for part in (text or "").split(","):
        part = part.strip()
        if not part:
            continue
        if part.startswith(("http://", "https://")):
            tiers.append(HTTPStore(part))
        else:
            tiers.append(LocalStore(part))
    return tiers


class TieredStore:
    """A read-through chain of store tiers, fastest first.

    ``memory → local CAS directory → remotes``, with digest-verified
    promotion: a hit in a slow tier is written into every faster tier
    before it is returned, so repeat lookups never leave the process.

    Args:
        local: optional :class:`LocalStore` persistent tier.
        remotes: remote tiers (:class:`HTTPStore` / :class:`LocalStore`)
            in consulted order.
        push_remotes: also publish writes to the remote tiers
            (best-effort; a dead remote never fails a publish).
    """

    def __init__(
        self, local: Optional[LocalStore] = None, remotes=(),
        push_remotes: bool = False,
    ) -> None:
        self.local = local
        self.remotes = list(remotes)
        self.push_remotes = bool(push_remotes)
        self._mem_objects: Dict[str, bytes] = {}
        self._mem_refs: Dict[str, str] = {}
        self.memory_hits = 0

    # -- objects ------------------------------------------------------------

    def get_object(self, digest: str) -> Optional[bytes]:
        """Verified bytes of *digest* from the fastest tier holding it."""
        _check_digest(digest)
        data = self._mem_objects.get(digest)
        if data is not None:
            self.memory_hits += 1
            _incr("store.memory.hit")
            return data
        for tier in self._tiers():
            try:
                data = tier.get(digest)
            except StoreCorruptionError:
                _incr("store.corrupt")
                continue
            if data is None:
                _incr(f"store.{_label(tier)}.miss")
                continue
            _incr(f"store.{_label(tier)}.hit")
            _incr(f"store.{_label(tier)}.fetched_bytes", len(data))
            self._promote(digest, data, tier)
            return data
        return None

    def put_object(self, data: bytes) -> str:
        """Publish *data* to every writable tier; returns its digest."""
        digest = object_digest(data)
        self._mem_objects[digest] = data
        if self.local is not None:
            try:
                self.local.put(data, digest)
            except OSError:
                pass
        if self.push_remotes:
            for tier in self.remotes:
                try:
                    tier.put(data, digest)
                except (OSError, StoreError):
                    pass
        return digest

    # -- refs ---------------------------------------------------------------

    def fetch(self, name: str) -> Optional[bytes]:
        """Resolve ref *name* and return its object's verified bytes."""
        _check_ref(name)
        digest = self._mem_refs.get(name)
        if digest is not None:
            data = self._mem_objects.get(digest)
            if data is not None:
                self.memory_hits += 1
                _incr("store.memory.hit")
                return data
        for tier in self._tiers():
            digest = tier.get_ref(name)
            if digest is None:
                _incr(f"store.{_label(tier)}.miss")
                continue
            data = self.get_object(digest)
            if data is None:
                continue
            self._mem_refs[name] = digest
            if self.local is not None and self.local.get_ref(name) != digest:
                try:
                    # Object was promoted by get_object already:
                    # file before index.
                    self.local.set_ref(name, digest)
                except OSError:
                    pass
            return data
        return None

    def publish(self, name: str, data: bytes) -> str:
        """Publish *data* and point ref *name* at it, object first."""
        _check_ref(name)
        digest = self.put_object(data)
        self._mem_refs[name] = digest
        if self.local is not None:
            try:
                self.local.set_ref(name, digest)
            except OSError:
                pass
        if self.push_remotes:
            for tier in self.remotes:
                try:
                    tier.set_ref(name, digest)
                except (OSError, StoreError):
                    pass
        return digest

    def list_refs(self, prefix: str = "") -> Dict[str, str]:
        """Merged ``{name: digest}`` across tiers; faster tiers win."""
        out: Dict[str, str] = {}
        for tier in reversed(self.remotes):
            try:
                out.update(tier.refs(prefix))
            except StoreError:
                continue
        if self.local is not None:
            out.update(self.local.refs(prefix))
        for name, digest in self._mem_refs.items():
            if not prefix or name.startswith(prefix.rstrip("/") + "/"):
                out[name] = digest
        return out

    # -- plumbing -----------------------------------------------------------

    def _tiers(self) -> list:
        tiers: list = []
        if self.local is not None:
            tiers.append(self.local)
        tiers.extend(self.remotes)
        return tiers

    def _promote(self, digest: str, data: bytes, source) -> None:
        self._mem_objects[digest] = data
        if self.local is not None and source is not self.local:
            try:
                self.local.put(data, digest)
            except OSError:
                pass

    def configured(self) -> bool:
        """Whether any persistent/remote tier exists (the memory tier
        alone is not worth routing through)."""
        return self.local is not None or bool(self.remotes)

    def stats(self) -> dict:
        tiers = {"memory": {"hits": self.memory_hits,
                            "objects": len(self._mem_objects)}}
        if self.local is not None:
            tiers[self.local.name] = self.local.stats_dict()
        for tier in self.remotes:
            tiers[tier.name] = tier.stats_dict()
        return {"tiers": tiers}


def _label(tier) -> str:
    return "local" if isinstance(tier, LocalStore) else "remote"
