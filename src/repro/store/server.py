"""Stdlib HTTP front-end for one :class:`~repro.store.cas.LocalStore`.

``python -m repro.store serve --dir STORE`` runs this server; any
machine that can reach it adds ``http://host:port`` to
``REPRO_STORE_URL`` and reads through it with :class:`HTTPStore`.

Routes::

    GET/HEAD /obj/<digest>   object bytes (404 if absent)
    PUT      /obj/<digest>   publish an object; the body is re-hashed
                             and must match <digest> (400 otherwise),
                             so a client can never poison the store
    GET      /ref/<name>     the digest a ref points at (text)
    PUT      /ref/<name>     point a ref; the target object must
                             already exist (409 otherwise), enforcing
                             file-before-index across the wire
    GET      /refs[/prefix]  JSON {name: digest} listing
    GET      /stats          JSON tier counters

The server is deliberately dumb: all verification and atomicity lives
in :class:`LocalStore`, so a plain rsync of the served directory is an
equally valid tier.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import StoreCorruptionError, StoreError
from repro.store.cas import LocalStore

__all__ = ["StoreRequestHandler", "make_server", "serve"]

_OBJ_RE = re.compile(r"^/obj/([0-9a-f]{64})$")
_REF_RE = re.compile(r"^/ref/([A-Za-z0-9._/-]+)$")
_REFS_RE = re.compile(r"^/refs(?:/([A-Za-z0-9._/-]+))?/?$")

#: Refuse request bodies above this size (defense against a confused
#: client streaming junk at the store; real artifacts are far smaller).
MAX_BODY = 256 * 1024 * 1024


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Maps the route table above onto one ``LocalStore`` instance
    (``self.server.store``)."""

    protocol_version = "HTTP/1.1"
    #: Quiet by default; ``serve(verbose=True)`` restores request logs.
    verbose = False

    def log_message(self, fmt, *args):  # noqa: D102 - stdlib override
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    @property
    def store(self) -> LocalStore:
        return self.server.store

    # -- plumbing -----------------------------------------------------------

    def _reply(self, code: int, body: bytes = b"",
               content_type: str = "application/octet-stream") -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _reply_json(self, code: int, payload) -> None:
        self._reply(
            code,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            content_type="application/json",
        )

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > MAX_BODY:
            raise StoreError(f"request body of {length} bytes refused")
        return self.rfile.read(length)

    # -- verbs --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        match = _OBJ_RE.match(self.path)
        if match:
            try:
                data = self.store.get(match.group(1))
            except StoreCorruptionError:
                # The damaged file is already quarantined; to the
                # client this object simply does not exist here.
                self._reply(404)
                return
            if data is None:
                self._reply(404)
            else:
                self._reply(200, data)
            return
        match = _REF_RE.match(self.path)
        if match:
            try:
                digest = self.store.get_ref(match.group(1))
            except StoreError:
                self._reply(400)
                return
            if digest is None:
                self._reply(404)
            else:
                self._reply(200, digest.encode("ascii"),
                            content_type="text/plain")
            return
        match = _REFS_RE.match(self.path)
        if match:
            try:
                refs = self.store.refs(match.group(1) or "")
            except StoreError:
                self._reply(400)
                return
            self._reply_json(200, refs)
            return
        if self.path == "/stats":
            self._reply_json(200, self.store.stats_dict())
            return
        self._reply(404)

    do_HEAD = do_GET  # noqa: N815 - stdlib naming

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        match = _OBJ_RE.match(self.path)
        if match:
            digest = match.group(1)
            try:
                body = self._read_body()
                self.store.put(body, digest)
            except StoreError:
                self._reply(400)
                return
            except OSError:
                self._reply(507)
                return
            self._reply(201)
            return
        match = _REF_RE.match(self.path)
        if match:
            name = match.group(1)
            try:
                body = self._read_body()
                digest = body.decode("ascii", "replace").strip()
                if not self.store.has(digest):
                    # Never index an object the store does not hold.
                    self._reply(409)
                    return
                self.store.set_ref(name, digest)
            except StoreError:
                self._reply(400)
                return
            except OSError:
                self._reply(507)
                return
            self._reply(201)
            return
        self._reply(404)


def make_server(directory, host: str = "127.0.0.1", port: int = 0,
                verbose: bool = False) -> ThreadingHTTPServer:
    """A ready-to-run threading server over the store at *directory*.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — what the tests and the warm-store CI
    job use.
    """
    handler = type(
        "BoundStoreRequestHandler", (StoreRequestHandler,),
        {"verbose": verbose},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.store = LocalStore(directory)
    return server


def serve(directory, host: str = "127.0.0.1", port: int = 8750,
          verbose: bool = False) -> None:
    """Serve *directory* until interrupted (the ``store serve`` verb)."""
    server = make_server(directory, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving store {directory} on http://{bound_host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
