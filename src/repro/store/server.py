"""Stdlib HTTP front-end for one :class:`~repro.store.cas.LocalStore`.

``python -m repro.store serve --dir STORE`` runs this server; any
machine that can reach it adds ``http://host:port`` to
``REPRO_STORE_URL`` and reads through it with :class:`HTTPStore`.

Routes::

    GET/HEAD /obj/<digest>   object bytes (404 if absent)
    PUT      /obj/<digest>   publish an object; the body is re-hashed
                             and must match <digest> (400 otherwise),
                             so a client can never poison the store
    GET      /ref/<name>     the digest a ref points at (text)
    PUT      /ref/<name>     point a ref; the target object must
                             already exist (409 otherwise), enforcing
                             file-before-index across the wire
    GET      /refs[/prefix]  JSON {name: digest} listing
    GET      /stats          JSON tier counters
    POST     /gc             age/LRU prune (JSON {max_age, max_bytes})

The server is deliberately dumb: all verification and atomicity lives
in :class:`LocalStore`, so a plain rsync of the served directory is an
equally valid tier.

Auth: ``serve(token=...)`` (or ``REPRO_AUTH_TOKEN``) requires
``Authorization: Bearer <token>`` on every request — unauthenticated
requests get 401; ``serve(readonly=True)`` rejects every mutating verb
(PUT, POST) with 403.  Both are enforced through the same
:class:`~repro.net.AuthPolicy` as the networked broker server.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import StoreCorruptionError, StoreError
from repro.net import AuthPolicy, resolve_token
from repro.store.cas import LocalStore

__all__ = ["StoreRequestHandler", "make_server", "serve"]

_OBJ_RE = re.compile(r"^/obj/([0-9a-f]{64})$")
_REF_RE = re.compile(r"^/ref/([A-Za-z0-9._/-]+)$")
_REFS_RE = re.compile(r"^/refs(?:/([A-Za-z0-9._/-]+))?/?$")

#: Refuse request bodies above this size (defense against a confused
#: client streaming junk at the store; real artifacts are far smaller).
MAX_BODY = 256 * 1024 * 1024


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Maps the route table above onto one ``LocalStore`` instance
    (``self.server.store``)."""

    protocol_version = "HTTP/1.1"
    #: Quiet by default; ``serve(verbose=True)`` restores request logs.
    verbose = False

    def log_message(self, fmt, *args):  # noqa: D102 - stdlib override
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    @property
    def store(self) -> LocalStore:
        return self.server.store

    @property
    def auth(self) -> AuthPolicy:
        return self.server.auth

    # -- plumbing -----------------------------------------------------------

    def _guard(self, mutating: bool) -> bool:
        """Enforce bearer-token auth and readonly mode; replies and
        returns ``False`` when the request must not proceed."""
        verdict = self.auth.check(
            self.headers.get("Authorization"), mutating
        )
        if verdict is None:
            return True
        code, why = verdict
        self._reply_json(code, {"error": why})
        return False

    def _reply(self, code: int, body: bytes = b"",
               content_type: str = "application/octet-stream") -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _reply_json(self, code: int, payload) -> None:
        self._reply(
            code,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            content_type="application/json",
        )

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > MAX_BODY:
            raise StoreError(f"request body of {length} bytes refused")
        return self.rfile.read(length)

    # -- verbs --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if not self._guard(mutating=False):
            return
        match = _OBJ_RE.match(self.path)
        if match:
            try:
                data = self.store.get(match.group(1))
            except StoreCorruptionError:
                # The damaged file is already quarantined; to the
                # client this object simply does not exist here.
                self._reply(404)
                return
            if data is None:
                self._reply(404)
            else:
                self._reply(200, data)
            return
        match = _REF_RE.match(self.path)
        if match:
            try:
                digest = self.store.get_ref(match.group(1))
            except StoreError:
                self._reply(400)
                return
            if digest is None:
                self._reply(404)
            else:
                self._reply(200, digest.encode("ascii"),
                            content_type="text/plain")
            return
        match = _REFS_RE.match(self.path)
        if match:
            try:
                refs = self.store.refs(match.group(1) or "")
            except StoreError:
                self._reply(400)
                return
            self._reply_json(200, refs)
            return
        if self.path == "/stats":
            self._reply_json(200, self.store.stats_dict())
            return
        self._reply(404)

    do_HEAD = do_GET  # noqa: N815 - stdlib naming

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        if not self._guard(mutating=True):
            return
        match = _OBJ_RE.match(self.path)
        if match:
            digest = match.group(1)
            try:
                body = self._read_body()
                self.store.put(body, digest)
            except StoreError:
                self._reply(400)
                return
            except OSError:
                self._reply(507)
                return
            self._reply(201)
            return
        match = _REF_RE.match(self.path)
        if match:
            name = match.group(1)
            try:
                body = self._read_body()
                digest = body.decode("ascii", "replace").strip()
                if not self.store.has(digest):
                    # Never index an object the store does not hold.
                    self._reply(409)
                    return
                self.store.set_ref(name, digest)
            except StoreError:
                self._reply(400)
                return
            except OSError:
                self._reply(507)
                return
            self._reply(201)
            return
        self._reply(404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if not self._guard(mutating=True):
            return
        if self.path.rstrip("/") != "/gc":
            self._reply(404)
            return
        try:
            body = self._read_body()
            params = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(params, dict):
                raise ValueError("not an object")
            max_age = params.get("max_age")
            max_bytes = params.get("max_bytes")
            dropped, removed, freed = self.store.prune(
                max_age=None if max_age is None else float(max_age),
                max_bytes=None if max_bytes is None else int(max_bytes),
            )
        except (StoreError, UnicodeDecodeError, ValueError, TypeError):
            self._reply(400)
            return
        except OSError:
            self._reply(507)
            return
        self._reply_json(200, {
            "refs_dropped": dropped,
            "objects_removed": removed,
            "bytes_freed": freed,
        })


def make_server(directory, host: str = "127.0.0.1", port: int = 0,
                verbose: bool = False, token=None,
                readonly: bool = False) -> ThreadingHTTPServer:
    """A ready-to-run threading server over the store at *directory*.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — what the tests and the warm-store CI
    job use.  *token* defaults to ``REPRO_AUTH_TOKEN`` (``None`` leaves
    the server open); *readonly* rejects mutating verbs with 403.
    """
    handler = type(
        "BoundStoreRequestHandler", (StoreRequestHandler,),
        {"verbose": verbose},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.store = LocalStore(directory)
    server.auth = AuthPolicy(token=resolve_token(token), readonly=readonly)
    return server


def serve(directory, host: str = "127.0.0.1", port: int = 8750,
          verbose: bool = False, token=None,
          readonly: bool = False) -> None:
    """Serve *directory* until interrupted (the ``store serve`` verb)."""
    server = make_server(directory, host=host, port=port, verbose=verbose,
                         token=token, readonly=readonly)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"serving store {directory} on http://{bound_host}:{bound_port}"
        + (" (readonly)" if readonly else ""),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
