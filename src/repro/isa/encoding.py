"""Byte-size encoding model.

Space overhead (Figure 3 of the paper) is measured in bytes of inserted
code over the original binary size.  We therefore need a defensible byte
size for every instruction.  The sizes below follow a compact RISC-style
variable-length encoding: one opcode byte, packed register nibbles,
32-bit immediates and displacements.

The exact values matter less than their being fixed and consistent: the
paper's headline numbers (phase marks of at most 78 bytes, < 4% space
overhead for the loop technique) are reproduced relative to this model.
"""

from __future__ import annotations

from typing import Iterable

from repro.isa.instructions import Instruction, Opcode

#: Bytes occupied by each opcode's encoding.
_SIZES: dict[Opcode, int] = {
    # reg-reg ALU: opcode + 2 packed register bytes.
    Opcode.ADD: 3,
    Opcode.SUB: 3,
    Opcode.AND: 3,
    Opcode.OR: 3,
    Opcode.XOR: 3,
    Opcode.SHL: 3,
    Opcode.SHR: 3,
    Opcode.CMP: 3,
    Opcode.MOV: 3,
    # opcode + reg + imm32.
    Opcode.MOVI: 6,
    Opcode.MUL: 3,
    Opcode.DIV: 3,
    Opcode.FADD: 3,
    Opcode.FSUB: 3,
    Opcode.FMOV: 3,
    Opcode.FMUL: 3,
    Opcode.FDIV: 3,
    # opcode + reg + region-id byte + disp32.
    Opcode.LOAD: 7,
    Opcode.STORE: 7,
    Opcode.PUSH: 2,
    Opcode.POP: 2,
    # opcode + cond byte + disp32.
    Opcode.BR: 6,
    # opcode + disp32.
    Opcode.JMP: 5,
    Opcode.JMPI: 2,
    Opcode.CALL: 5,
    Opcode.CALLI: 2,
    Opcode.RET: 1,
    # opcode + syscall-number byte.
    Opcode.SYS: 2,
    Opcode.NOP: 1,
}


def instruction_size(instr: Instruction) -> int:
    """Return the encoded size of *instr* in bytes."""
    return _SIZES[instr.opcode]


def code_size(instrs: Iterable[Instruction]) -> int:
    """Return the total encoded size of an instruction sequence in bytes."""
    return sum(_SIZES[i.opcode] for i in instrs)
