"""Textual assembler for the synthetic ISA.

Grammar (one statement per line, ``;`` starts a comment)::

    .program NAME                ; optional, names the binary
    .region NAME SIZE [hot=F]    ; declare a data region (bytes)
    .entry NAME                  ; optional, default "main"
    .proc NAME
    label:
        add   r1, r2, r3         ; dst, src, src  (src may be a literal)
        movi  r1, 42
        load  r3, A[r1]:8        ; dst, region[index]:stride
        load  r4, G@16           ; scalar slot at offset 16 (stride 0)
        store A[r1]:8, r3        ; region, src
        push  r1
        br    lt, label
        jmp   label
        call  helper
        sys   1
        ret
    .endproc

Memory operands name a declared region; ``[rN]:S`` gives the index
register and byte stride, ``@OFF`` names a scalar slot.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import AssemblyError
from repro.isa.instructions import (
    CondCode,
    Instruction,
    MemAccess,
    Opcode,
)
from repro.isa.registers import Register
from repro.program.module import MemoryRegion, Procedure, Program

_MEM_RE = re.compile(
    r"^(?P<region>[A-Za-z_][\w.]*)"
    r"(?:\[(?P<index>\w+)\])?"
    r"(?:@(?P<offset>\d+))?"
    r"(?::(?P<stride>\d+))?$"
)

_LABEL_RE = re.compile(r"^(\.?[A-Za-z_][\w.]*):$")

#: Opcodes whose operands are ``dst, src, src``.
_THREE_OP = {
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SHL, Opcode.SHR, Opcode.MUL, Opcode.DIV,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
}
_TWO_REG = {Opcode.CMP, Opcode.MOV, Opcode.FMOV}


def _parse_mem(text: str, line: int) -> MemAccess:
    match = _MEM_RE.match(text)
    if match is None:
        raise AssemblyError(f"malformed memory operand {text!r}", line)
    index_name = match.group("index")
    index: Optional[Register] = None
    if index_name is not None:
        if not Register.exists(index_name):
            raise AssemblyError(f"unknown index register {index_name!r}", line)
        index = Register.get(index_name)
    stride = int(match.group("stride") or 0)
    offset = int(match.group("offset") or 0)
    return MemAccess(match.group("region"), stride, index, offset)


def _parse_value(text: str, line: int):
    """Parse a register or an integer literal."""
    if Register.exists(text):
        return Register.get(text)
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(f"expected register or literal, got {text!r}", line)


def _parse_reg(text: str, line: int) -> Register:
    if not Register.exists(text):
        raise AssemblyError(f"expected register, got {text!r}", line)
    return Register.get(text)


def _split_operands(rest: str) -> list[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def _parse_instruction(mnemonic: str, rest: str, line: int) -> Instruction:
    try:
        opcode = Opcode(mnemonic)
    except ValueError:
        raise AssemblyError(f"unknown opcode {mnemonic!r}", line)

    ops = _split_operands(rest)

    def arity(expected: int) -> None:
        if len(ops) != expected:
            raise AssemblyError(
                f"{mnemonic} expects {expected} operand(s), got {len(ops)}", line
            )

    if opcode in _THREE_OP:
        arity(3)
        return Instruction(
            opcode,
            (
                _parse_reg(ops[0], line),
                _parse_value(ops[1], line),
                _parse_value(ops[2], line),
            ),
        )
    if opcode in _TWO_REG:
        arity(2)
        return Instruction(
            opcode, (_parse_reg(ops[0], line), _parse_value(ops[1], line))
        )
    if opcode is Opcode.MOVI:
        arity(2)
        try:
            imm = int(ops[1], 0)
        except ValueError:
            raise AssemblyError(f"movi needs an integer, got {ops[1]!r}", line)
        return Instruction(opcode, (_parse_reg(ops[0], line), imm))
    if opcode is Opcode.LOAD:
        arity(2)
        mem = _parse_mem(ops[1], line)
        return Instruction(opcode, (_parse_reg(ops[0], line),), mem=mem)
    if opcode is Opcode.STORE:
        arity(2)
        mem = _parse_mem(ops[0], line)
        return Instruction(opcode, (_parse_reg(ops[1], line),), mem=mem)
    if opcode in (Opcode.PUSH, Opcode.POP):
        arity(1)
        return Instruction(opcode, (_parse_reg(ops[0], line),))
    if opcode is Opcode.BR:
        arity(2)
        try:
            cond = CondCode(ops[0])
        except ValueError:
            raise AssemblyError(f"unknown condition code {ops[0]!r}", line)
        return Instruction(opcode, (cond, ops[1]))
    if opcode is Opcode.JMP:
        arity(1)
        return Instruction(opcode, (ops[0],))
    if opcode in (Opcode.JMPI, Opcode.CALLI):
        arity(1)
        return Instruction(opcode, (_parse_reg(ops[0], line),))
    if opcode is Opcode.CALL:
        arity(1)
        return Instruction(opcode, (ops[0],))
    if opcode is Opcode.RET:
        arity(0)
        return Instruction(opcode)
    if opcode is Opcode.SYS:
        arity(1)
        try:
            num = int(ops[0], 0)
        except ValueError:
            raise AssemblyError(f"sys needs an integer, got {ops[0]!r}", line)
        return Instruction(opcode, (num,))
    if opcode is Opcode.NOP:
        arity(0)
        return Instruction(opcode)
    raise AssemblyError(f"unhandled opcode {mnemonic!r}", line)  # pragma: no cover


def assemble(source: str, name: str = "a.out") -> Program:
    """Assemble *source* text into a :class:`Program`.

    Raises:
        AssemblyError: on any syntax or structural problem, with the
            offending line number.
    """
    procedures: dict[str, Procedure] = {}
    regions: dict[str, MemoryRegion] = {}
    entry = "main"
    program_name = name

    current_proc: Optional[str] = None
    code: list[Instruction] = []
    labels: dict[str, int] = {}

    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].strip()
        if not text:
            continue

        label_match = _LABEL_RE.match(text)
        if label_match:
            if current_proc is None:
                raise AssemblyError("label outside a procedure", lineno)
            label = label_match.group(1)
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", lineno)
            labels[label] = len(code)
            continue

        if text.startswith("."):
            parts = text.split()
            directive = parts[0]
            if directive == ".program":
                if len(parts) != 2:
                    raise AssemblyError(".program expects a name", lineno)
                program_name = parts[1]
            elif directive == ".region":
                if len(parts) not in (3, 4):
                    raise AssemblyError(".region expects NAME SIZE [hot=F]", lineno)
                hot = 1.0
                if len(parts) == 4:
                    if not parts[3].startswith("hot="):
                        raise AssemblyError(
                            f"unknown region option {parts[3]!r}", lineno
                        )
                    hot = float(parts[3][4:])
                try:
                    size = int(parts[2], 0)
                except ValueError:
                    raise AssemblyError(f"bad region size {parts[2]!r}", lineno)
                regions[parts[1]] = MemoryRegion(parts[1], size, hot)
            elif directive == ".entry":
                if len(parts) != 2:
                    raise AssemblyError(".entry expects a name", lineno)
                entry = parts[1]
            elif directive == ".proc":
                if current_proc is not None:
                    raise AssemblyError(
                        f"nested .proc (still inside {current_proc!r})", lineno
                    )
                if len(parts) != 2:
                    raise AssemblyError(".proc expects a name", lineno)
                current_proc = parts[1]
                code = []
                labels = {}
            elif directive == ".endproc":
                if current_proc is None:
                    raise AssemblyError(".endproc outside a procedure", lineno)
                if not code:
                    raise AssemblyError(
                        f"procedure {current_proc!r} is empty", lineno
                    )
                procedures[current_proc] = Procedure(current_proc, code, labels)
                current_proc = None
            else:
                raise AssemblyError(f"unknown directive {directive!r}", lineno)
            continue

        if current_proc is None:
            raise AssemblyError("instruction outside a procedure", lineno)
        head, _, rest = text.partition(" ")
        code.append(_parse_instruction(head, rest, lineno))

    if current_proc is not None:
        raise AssemblyError(f"unterminated procedure {current_proc!r}")
    if not procedures:
        raise AssemblyError("no procedures defined")
    if entry not in procedures:
        raise AssemblyError(f"entry procedure {entry!r} not defined")

    return Program(procedures, entry=entry, regions=regions, name=program_name)
