"""Synthetic RISC-like instruction set.

The paper operates on x86 binaries of SPEC CPU benchmarks.  Real x86
binaries are unavailable here, so this package defines a small, explicit
instruction set with everything phase-based tuning actually consumes:

* instruction *classes* (integer ALU, multiply/divide, floating point,
  loads/stores, branches, calls, ...) that drive both the static
  instruction-mix features (Section II-A3) and the per-core cycle cost
  model,
* symbolic *memory accesses* (named region + stride) from which static
  reuse distances and dynamic cache miss rates are derived, and
* a byte-size *encoding* model so binary rewriting can account space
  overhead exactly (Figure 3).

The package provides a textual assembler/disassembler and a programmatic
builder; programs assemble into :class:`repro.program.Program` objects.
"""

from repro.isa.instructions import (
    CondCode,
    Instruction,
    InstrClass,
    MemAccess,
    Opcode,
    OPCODE_CLASS,
)
from repro.isa.registers import Register, GPR, FPR, SP
from repro.isa.encoding import instruction_size, code_size
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.builder import ProcedureBuilder, ProgramBuilder
from repro.isa.interpreter import InterpreterError, MachineState, run_program

__all__ = [
    "CondCode",
    "Instruction",
    "InstrClass",
    "MemAccess",
    "Opcode",
    "OPCODE_CLASS",
    "Register",
    "GPR",
    "FPR",
    "SP",
    "instruction_size",
    "code_size",
    "assemble",
    "disassemble",
    "ProcedureBuilder",
    "ProgramBuilder",
    "InterpreterError",
    "MachineState",
    "run_program",
]
