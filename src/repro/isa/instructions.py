"""Instructions of the synthetic ISA.

An :class:`Instruction` is immutable.  Its :class:`Opcode` determines its
:class:`InstrClass`, which is what the static analysis (instruction-mix
features), the cost model (base cycles) and the encoder (byte size) key on.

Memory-touching instructions carry a :class:`MemAccess` describing *which*
named memory region they touch and with what stride.  This symbolic view is
what makes static reuse-distance estimation (Section II-A3 of the paper,
after Beyls & D'Hollander) and the analytic cache-miss model possible
without concrete addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.isa.registers import Register


class InstrClass(enum.Enum):
    """Coarse behavioural class of an instruction.

    These classes are the axes of the instruction-mix feature vector used
    for static block typing and the keys of the per-core cycle cost table.
    """

    IALU = "ialu"          # integer add/sub/logic/shift/compare/move
    IMUL = "imul"          # integer multiply
    IDIV = "idiv"          # integer divide
    FALU = "falu"          # fp add/sub/move
    FMUL = "fmul"          # fp multiply
    FDIV = "fdiv"          # fp divide
    LOAD = "load"          # memory read
    STORE = "store"        # memory write
    STACK = "stack"        # push/pop
    BRANCH = "branch"      # conditional branch
    JUMP = "jump"          # unconditional direct jump
    IJUMP = "ijump"        # indirect jump (unknown static target)
    CALL = "call"          # direct call
    ICALL = "icall"        # indirect call
    RET = "ret"            # return
    SYSCALL = "syscall"    # system call
    NOP = "nop"            # no-op


class Opcode(enum.Enum):
    """Concrete opcodes.  Each maps to exactly one :class:`InstrClass`."""

    # Integer ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    CMP = "cmp"
    MOV = "mov"
    MOVI = "movi"
    # Integer multiply / divide.
    MUL = "mul"
    DIV = "div"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMOV = "fmov"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Memory.
    LOAD = "load"
    STORE = "store"
    PUSH = "push"
    POP = "pop"
    # Control flow.
    BR = "br"
    JMP = "jmp"
    JMPI = "jmpi"
    CALL = "call"
    CALLI = "calli"
    RET = "ret"
    # Misc.
    SYS = "sys"
    NOP = "nop"


#: Opcode -> instruction class.
OPCODE_CLASS: dict[Opcode, InstrClass] = {
    Opcode.ADD: InstrClass.IALU,
    Opcode.SUB: InstrClass.IALU,
    Opcode.AND: InstrClass.IALU,
    Opcode.OR: InstrClass.IALU,
    Opcode.XOR: InstrClass.IALU,
    Opcode.SHL: InstrClass.IALU,
    Opcode.SHR: InstrClass.IALU,
    Opcode.CMP: InstrClass.IALU,
    Opcode.MOV: InstrClass.IALU,
    Opcode.MOVI: InstrClass.IALU,
    Opcode.MUL: InstrClass.IMUL,
    Opcode.DIV: InstrClass.IDIV,
    Opcode.FADD: InstrClass.FALU,
    Opcode.FSUB: InstrClass.FALU,
    Opcode.FMOV: InstrClass.FALU,
    Opcode.FMUL: InstrClass.FMUL,
    Opcode.FDIV: InstrClass.FDIV,
    Opcode.LOAD: InstrClass.LOAD,
    Opcode.STORE: InstrClass.STORE,
    Opcode.PUSH: InstrClass.STACK,
    Opcode.POP: InstrClass.STACK,
    Opcode.BR: InstrClass.BRANCH,
    Opcode.JMP: InstrClass.JUMP,
    Opcode.JMPI: InstrClass.IJUMP,
    Opcode.CALL: InstrClass.CALL,
    Opcode.CALLI: InstrClass.ICALL,
    Opcode.RET: InstrClass.RET,
    Opcode.SYS: InstrClass.SYSCALL,
    Opcode.NOP: InstrClass.NOP,
}


class CondCode(enum.Enum):
    """Condition codes for conditional branches."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


@dataclass(frozen=True)
class MemAccess:
    """Symbolic description of one memory access.

    Attributes:
        region: name of the memory region declared in the program
            (``.region`` directive); region sizes live on the program.
        stride: byte distance between successive dynamic accesses made by
            this instruction (0 means the same address every time, e.g. a
            scalar; a value >= the cache line size means every access may
            touch a new line).
        index: optional register used as the index expression, for display
            and liveness purposes only.
        offset: constant byte offset into the region; together with
            ``stride == 0`` this identifies a scalar slot, which the static
            reuse-distance estimator treats as a distinct location.
    """

    region: str
    stride: int = 0
    index: Optional[Register] = None
    offset: int = 0

    def __str__(self) -> str:
        idx = f"+{self.index}" if self.index is not None else ""
        off = f"@{self.offset}" if self.offset else ""
        return f"{self.region}{idx}{off}:{self.stride}"


Operand = Union[Register, int, CondCode, MemAccess, str]


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    Attributes:
        opcode: the concrete opcode.
        operands: opcode-specific operand tuple.  Branch/jump/call targets
            are label or procedure-name strings; indirect control flow
            takes a register.
        mem: the symbolic memory access for LOAD/STORE (``None`` elsewhere;
            PUSH/POP implicitly access the stack region).
    """

    opcode: Opcode
    operands: tuple[Operand, ...] = ()
    mem: Optional[MemAccess] = field(default=None)

    @property
    def iclass(self) -> InstrClass:
        """The behavioural class of this instruction."""
        return OPCODE_CLASS[self.opcode]

    # -- control-flow predicates ------------------------------------------

    @property
    def is_cond_branch(self) -> bool:
        return self.opcode is Opcode.BR

    @property
    def is_jump(self) -> bool:
        return self.opcode in (Opcode.JMP, Opcode.JMPI)

    @property
    def is_call(self) -> bool:
        return self.opcode in (Opcode.CALL, Opcode.CALLI)

    @property
    def is_ret(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_terminator(self) -> bool:
        """True if control cannot fall through past this instruction.

        Conditional branches are *not* terminators in this sense (they
        have a fall-through edge); they still end a basic block.
        """
        return self.opcode in (Opcode.JMP, Opcode.JMPI, Opcode.RET)

    @property
    def ends_block(self) -> bool:
        """True if this instruction must be the last one in a basic block."""
        return self.opcode in (
            Opcode.BR,
            Opcode.JMP,
            Opcode.JMPI,
            Opcode.RET,
        )

    @property
    def label_target(self) -> Optional[str]:
        """The static label target of a direct branch/jump, else ``None``."""
        if self.opcode is Opcode.JMP:
            return self.operands[0]  # type: ignore[return-value]
        if self.opcode is Opcode.BR:
            return self.operands[1]  # type: ignore[return-value]
        return None

    @property
    def call_target(self) -> Optional[str]:
        """The procedure name targeted by a direct call, else ``None``."""
        if self.opcode is Opcode.CALL:
            return self.operands[0]  # type: ignore[return-value]
        return None

    @property
    def touches_memory(self) -> bool:
        return self.iclass in (InstrClass.LOAD, InstrClass.STORE, InstrClass.STACK)

    def __str__(self) -> str:
        parts = [self.opcode.value]
        rendered = []
        for op in self.operands:
            if isinstance(op, CondCode):
                rendered.append(op.value)
            else:
                rendered.append(str(op))
        if self.mem is not None:
            rendered.append(str(self.mem))
        if rendered:
            parts.append(", ".join(rendered))
        return " ".join(parts)
