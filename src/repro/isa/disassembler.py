"""Disassembler: render a :class:`~repro.program.module.Program` back to
the textual assembly accepted by :func:`repro.isa.assembler.assemble`.

``assemble(disassemble(p))`` round-trips: the result is structurally
identical to ``p`` (same procedures, labels at the same indices, same
instruction streams and regions).
"""

from __future__ import annotations

from repro.isa.instructions import CondCode, Instruction, MemAccess, Opcode
from repro.isa.registers import Register
from repro.program.module import STACK_REGION, Program


def _render_mem(mem: MemAccess) -> str:
    text = mem.region
    if mem.index is not None:
        text += f"[{mem.index.name}]"
    if mem.offset:
        text += f"@{mem.offset}"
    if mem.stride:
        text += f":{mem.stride}"
    return text


def _render_operand(op) -> str:
    if isinstance(op, Register):
        return op.name
    if isinstance(op, CondCode):
        return op.value
    return str(op)


def render_instruction(instr: Instruction) -> str:
    """Render one instruction in assembler syntax."""
    ops = [_render_operand(op) for op in instr.operands]
    if instr.opcode is Opcode.LOAD:
        ops.append(_render_mem(instr.mem))
    elif instr.opcode is Opcode.STORE:
        ops.insert(0, _render_mem(instr.mem))
    body = instr.opcode.value
    if ops:
        body += " " + ", ".join(ops)
    return body


def disassemble(program: Program) -> str:
    """Render *program* as assembler text."""
    lines = [f".program {program.name}"]
    for region in program.regions.values():
        if region.name == STACK_REGION:
            continue
        hot = f" hot={region.hot_fraction}" if region.hot_fraction != 1.0 else ""
        lines.append(f".region {region.name} {region.size}{hot}")
    lines.append(f".entry {program.entry}")

    for proc in program:
        lines.append(f".proc {proc.name}")
        labels_at: dict[int, list[str]] = {}
        for label, idx in sorted(proc.labels.items()):
            labels_at.setdefault(idx, []).append(label)
        for i, instr in enumerate(proc.code):
            for label in labels_at.get(i, ()):
                lines.append(f"{label}:")
            lines.append(f"    {render_instruction(instr)}")
        for label in labels_at.get(len(proc.code), ()):
            lines.append(f"{label}:")
        lines.append(".endproc")

    return "\n".join(lines) + "\n"
