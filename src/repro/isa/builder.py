"""Programmatic program construction.

The workload generators build hundreds of synthetic procedures; writing
textual assembly for them would be slow and error prone.
:class:`ProcedureBuilder` offers one fluent method per opcode plus label
management; :class:`ProgramBuilder` collects procedures and regions.

Example::

    pb = ProgramBuilder("kernel")
    pb.region("A", 1 << 20)
    with pb.proc("main") as b:
        b.movi("r1", 0)
        b.movi("r2", 1000)
        b.label("loop")
        b.load("r3", "A", index="r1", stride=8)
        b.add("r4", "r4", "r3")
        b.add("r1", "r1", 1)
        b.cmp("r1", "r2")
        b.br("lt", "loop")
        b.ret()
    program = pb.build()
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import ProgramStructureError
from repro.isa.instructions import (
    CondCode,
    Instruction,
    MemAccess,
    Opcode,
)
from repro.isa.registers import Register
from repro.program.module import MemoryRegion, Procedure, Program

RegLike = Union[Register, str]
ValueLike = Union[Register, str, int]


def _reg(value: RegLike) -> Register:
    if isinstance(value, Register):
        return value
    return Register.get(value)


def _value(value: ValueLike):
    if isinstance(value, int):
        return value
    return _reg(value)


class ProcedureBuilder:
    """Fluent builder for one procedure.  All emitters return ``self``."""

    def __init__(self, name: str):
        self.name = name
        self._code: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._fresh = 0

    # -- structure ---------------------------------------------------------

    def label(self, name: str) -> "ProcedureBuilder":
        """Place *name* at the current position."""
        if name in self._labels:
            raise ProgramStructureError(
                f"duplicate label {name!r} in procedure {self.name!r}"
            )
        self._labels[name] = len(self._code)
        return self

    def fresh_label(self, prefix: str = "L") -> str:
        """Return a label name unused so far (does not place it)."""
        while True:
            name = f".{prefix}{self._fresh}"
            self._fresh += 1
            if name not in self._labels:
                return name

    def emit(self, instr: Instruction) -> "ProcedureBuilder":
        """Append a pre-built instruction."""
        self._code.append(instr)
        return self

    @property
    def position(self) -> int:
        """Index the next instruction will occupy."""
        return len(self._code)

    # -- integer ALU -------------------------------------------------------

    def _alu3(self, opcode: Opcode, dst: RegLike, a: ValueLike, b: ValueLike):
        self._code.append(Instruction(opcode, (_reg(dst), _value(a), _value(b))))
        return self

    def add(self, dst, a, b):
        return self._alu3(Opcode.ADD, dst, a, b)

    def sub(self, dst, a, b):
        return self._alu3(Opcode.SUB, dst, a, b)

    def and_(self, dst, a, b):
        return self._alu3(Opcode.AND, dst, a, b)

    def or_(self, dst, a, b):
        return self._alu3(Opcode.OR, dst, a, b)

    def xor(self, dst, a, b):
        return self._alu3(Opcode.XOR, dst, a, b)

    def shl(self, dst, a, b):
        return self._alu3(Opcode.SHL, dst, a, b)

    def shr(self, dst, a, b):
        return self._alu3(Opcode.SHR, dst, a, b)

    def mul(self, dst, a, b):
        return self._alu3(Opcode.MUL, dst, a, b)

    def div(self, dst, a, b):
        return self._alu3(Opcode.DIV, dst, a, b)

    def cmp(self, a: RegLike, b: ValueLike):
        self._code.append(Instruction(Opcode.CMP, (_reg(a), _value(b))))
        return self

    def mov(self, dst: RegLike, src: ValueLike):
        self._code.append(Instruction(Opcode.MOV, (_reg(dst), _value(src))))
        return self

    def movi(self, dst: RegLike, imm: int):
        self._code.append(Instruction(Opcode.MOVI, (_reg(dst), imm)))
        return self

    # -- floating point ----------------------------------------------------

    def fadd(self, dst, a, b):
        return self._alu3(Opcode.FADD, dst, a, b)

    def fsub(self, dst, a, b):
        return self._alu3(Opcode.FSUB, dst, a, b)

    def fmul(self, dst, a, b):
        return self._alu3(Opcode.FMUL, dst, a, b)

    def fdiv(self, dst, a, b):
        return self._alu3(Opcode.FDIV, dst, a, b)

    def fmov(self, dst: RegLike, src: ValueLike):
        self._code.append(Instruction(Opcode.FMOV, (_reg(dst), _value(src))))
        return self

    # -- memory ------------------------------------------------------------

    def load(
        self,
        dst: RegLike,
        region: str,
        index: Optional[RegLike] = None,
        stride: int = 0,
        offset: int = 0,
    ):
        mem = MemAccess(
            region, stride, _reg(index) if index is not None else None, offset
        )
        self._code.append(Instruction(Opcode.LOAD, (_reg(dst),), mem=mem))
        return self

    def store(
        self,
        region: str,
        src: RegLike,
        index: Optional[RegLike] = None,
        stride: int = 0,
        offset: int = 0,
    ):
        mem = MemAccess(
            region, stride, _reg(index) if index is not None else None, offset
        )
        self._code.append(Instruction(Opcode.STORE, (_reg(src),), mem=mem))
        return self

    def push(self, src: RegLike):
        self._code.append(Instruction(Opcode.PUSH, (_reg(src),)))
        return self

    def pop(self, dst: RegLike):
        self._code.append(Instruction(Opcode.POP, (_reg(dst),)))
        return self

    # -- control flow ------------------------------------------------------

    def br(self, cond: Union[CondCode, str], target: str):
        if isinstance(cond, str):
            cond = CondCode(cond)
        self._code.append(Instruction(Opcode.BR, (cond, target)))
        return self

    def jmp(self, target: str):
        self._code.append(Instruction(Opcode.JMP, (target,)))
        return self

    def jmpi(self, reg: RegLike):
        self._code.append(Instruction(Opcode.JMPI, (_reg(reg),)))
        return self

    def call(self, proc_name: str):
        self._code.append(Instruction(Opcode.CALL, (proc_name,)))
        return self

    def calli(self, reg: RegLike):
        self._code.append(Instruction(Opcode.CALLI, (_reg(reg),)))
        return self

    def ret(self):
        self._code.append(Instruction(Opcode.RET))
        return self

    def sys(self, number: int):
        self._code.append(Instruction(Opcode.SYS, (number,)))
        return self

    def nop(self):
        self._code.append(Instruction(Opcode.NOP))
        return self

    def build(self) -> Procedure:
        """Finish and return the procedure."""
        return Procedure(self.name, self._code, self._labels)


class ProgramBuilder:
    """Collects procedures and regions into a :class:`Program`."""

    def __init__(self, name: str = "a.out", entry: str = "main"):
        self.name = name
        self.entry = entry
        self._procedures: dict[str, Procedure] = {}
        self._regions: dict[str, MemoryRegion] = {}
        self._open: Optional[ProcedureBuilder] = None

    def region(
        self, name: str, size: int, hot_fraction: float = 1.0
    ) -> "ProgramBuilder":
        """Declare a memory region of *size* bytes."""
        self._regions[name] = MemoryRegion(name, size, hot_fraction)
        return self

    def proc(self, name: str) -> "_ProcContext":
        """Open a procedure; usable as a context manager."""
        if name in self._procedures:
            raise ProgramStructureError(f"duplicate procedure {name!r}")
        return _ProcContext(self, name)

    def add_procedure(self, proc: Procedure) -> "ProgramBuilder":
        """Add an already-built procedure."""
        if proc.name in self._procedures:
            raise ProgramStructureError(f"duplicate procedure {proc.name!r}")
        self._procedures[proc.name] = proc
        return self

    def build(self) -> Program:
        """Finish and return the program."""
        return Program(
            self._procedures, entry=self.entry, regions=self._regions, name=self.name
        )


class _ProcContext:
    """Context manager that registers the built procedure on exit."""

    def __init__(self, program_builder: ProgramBuilder, name: str):
        self._pb = program_builder
        self._builder = ProcedureBuilder(name)

    def __enter__(self) -> ProcedureBuilder:
        return self._builder

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._pb.add_procedure(self._builder.build())
