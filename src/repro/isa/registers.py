"""Register file of the synthetic ISA.

Sixteen general-purpose integer registers (``r0``-``r15``), sixteen
floating-point registers (``f0``-``f15``) and a stack pointer (``sp``).
Registers are interned: two registers with the same name are the same
object, so identity comparison is safe and cheap.
"""

from __future__ import annotations


class Register:
    """A named machine register.

    Instances are interned via :meth:`get`; the module-level tables
    :data:`GPR`, :data:`FPR` and :data:`SP` cover the whole register file.
    """

    __slots__ = ("name", "is_float")

    _interned: dict[str, "Register"] = {}

    def __init__(self, name: str, is_float: bool = False):
        self.name = name
        self.is_float = is_float

    @classmethod
    def get(cls, name: str) -> "Register":
        """Return the interned register called *name*.

        Raises:
            KeyError: if *name* does not denote a register.
        """
        return cls._interned[name]

    @classmethod
    def exists(cls, name: str) -> bool:
        """Return True if *name* denotes a register."""
        return name in cls._interned

    def __repr__(self) -> str:
        return f"Register({self.name!r})"

    def __str__(self) -> str:
        return self.name


def _intern(name: str, is_float: bool = False) -> Register:
    reg = Register(name, is_float)
    Register._interned[name] = reg
    return reg


#: General-purpose integer registers r0..r15.
GPR: tuple[Register, ...] = tuple(_intern(f"r{i}") for i in range(16))

#: Floating-point registers f0..f15.
FPR: tuple[Register, ...] = tuple(_intern(f"f{i}", is_float=True) for i in range(16))

#: The stack pointer.
SP: Register = _intern("sp")
