"""A reference interpreter for the synthetic ISA.

The simulator never executes instructions — it consumes precomputed
block costs — so this interpreter exists as the *semantic ground truth*:

* the binary rewriter's output must be observationally equivalent to its
  input (same final registers and memory, same non-mark syscall
  sequence) — phase marks may only add ``SYS_PHASE_MARK`` events;
* the trace generator's expected execution frequencies can be validated
  against real dynamic block counts.

Semantics: 64-bit two's-complement integer registers, IEEE floats,
a flags register written by ``cmp``, a value stack for ``push``/``pop``,
and sparse per-region memory where uninitialised cells read a
deterministic hash of their address (so runs are reproducible without
modelling loaders).  Indirect jumps/calls are rejected — the synthetic
programs under test never need them, and refusing is safer than guessing
a target.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.isa.instructions import CondCode, Instruction, Opcode
from repro.isa.registers import GPR, Register
from repro.program.cfg import build_cfg
from repro.program.module import Program

_MASK = (1 << 64) - 1


class InterpreterError(ReproError):
    """Raised on invalid execution (bad target, div by zero, limits)."""


def _to_signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 64) if value >> 63 else value


@dataclass
class MachineState:
    """Architectural state plus observation records."""

    iregs: dict = field(default_factory=dict)
    fregs: dict = field(default_factory=dict)
    flags: int = 0  # Sign of (a - b) from the last cmp.
    stack: list = field(default_factory=list)
    memory: dict = field(default_factory=dict)  # (region, offset) -> int
    syscalls: list = field(default_factory=list)  # (number, r0, r1)
    steps: int = 0
    block_counts: Counter = field(default_factory=Counter)

    def read_int(self, reg: Register) -> int:
        return self.iregs.get(reg.name, 0)

    def read_int_by_name(self, name: str) -> int:
        """Convenience accessor for tests and tools."""
        return self.iregs.get(name, 0)

    def write_int(self, reg: Register, value: int) -> None:
        self.iregs[reg.name] = value & _MASK

    def read_float(self, reg: Register) -> float:
        return self.fregs.get(reg.name, 1.0)

    def write_float(self, reg: Register, value: float) -> None:
        self.fregs[reg.name] = float(value)

    def observable(self) -> dict:
        """The state used for equivalence checks.

        Phase marks are push/pop balanced and restore every register
        they touch, so *all* architectural state must agree; only the
        SYS_PHASE_MARK syscall events are filtered out.
        """
        from repro.instrument.phase_mark import SYS_PHASE_MARK

        return {
            "iregs": {k: v for k, v in self.iregs.items() if v != 0},
            "fregs": dict(self.fregs),
            "flags": self.flags,
            "stack": list(self.stack),
            "memory": {k: v for k, v in self.memory.items() if v != 0},
            "syscalls": [
                s for s in self.syscalls if s[0] != SYS_PHASE_MARK
            ],
        }


def _default_cell(region: str, offset: int) -> int:
    """Deterministic content of an uninitialised memory cell."""
    return zlib.crc32(f"{region}:{offset}".encode()) & 0xFF


def _value_of(state: MachineState, operand) -> int:
    if isinstance(operand, Register):
        return state.read_int(operand)
    return int(operand)


def _fvalue_of(state: MachineState, operand) -> float:
    if isinstance(operand, Register):
        return state.read_float(operand)
    return float(operand)


def _effective_offset(state: MachineState, instr: Instruction, region_size: int) -> int:
    mem = instr.mem
    index = state.read_int(mem.index) if mem.index is not None else 0
    return (mem.offset + index * mem.stride) % max(1, region_size)


_COND = {
    CondCode.EQ: lambda s: s == 0,
    CondCode.NE: lambda s: s != 0,
    CondCode.LT: lambda s: s < 0,
    CondCode.LE: lambda s: s <= 0,
    CondCode.GT: lambda s: s > 0,
    CondCode.GE: lambda s: s >= 0,
}

_IALU = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 63),
    Opcode.SHR: lambda a, b: (a & _MASK) >> (b & 63),
    Opcode.MUL: lambda a, b: a * b,
}

_FALU = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
}


def run_program(
    program: Program,
    max_steps: int = 2_000_000,
    state: MachineState = None,
) -> MachineState:
    """Execute *program* from its entry procedure to completion.

    Args:
        max_steps: instruction budget; exceeding it raises.
        state: optional pre-initialised machine state.

    Raises:
        InterpreterError: on indirect control flow, division by zero,
            stack underflow, call-depth overflow, or step exhaustion.
    """
    state = state or MachineState()
    call_stack: list = []  # (proc_name, return_pc)
    # Static block leaders per procedure, so dynamic block counts line
    # up with the CFG's basic blocks (fall-through boundaries included).
    leaders = {
        p.name: {b.start for b in build_cfg(p).blocks} for p in program
    }
    proc = program[program.entry]
    pc = 0

    while True:
        if pc >= len(proc.code):
            raise InterpreterError(
                f"fell off the end of {proc.name!r} at pc={pc}"
            )
        if state.steps >= max_steps:
            raise InterpreterError(f"step budget {max_steps} exhausted")
        state.steps += 1
        if pc in leaders[proc.name]:
            state.block_counts[(proc.name, pc)] += 1

        instr = proc.code[pc]
        opcode = instr.opcode

        if opcode in _IALU:
            a = _value_of(state, instr.operands[1])
            b = _value_of(state, instr.operands[2])
            state.write_int(instr.operands[0], _IALU[opcode](a, b))
        elif opcode is Opcode.DIV:
            a = _value_of(state, instr.operands[1])
            b = _value_of(state, instr.operands[2])
            if b == 0:
                raise InterpreterError(
                    f"division by zero in {proc.name!r} at pc={pc}"
                )
            state.write_int(instr.operands[0], a // b)
        elif opcode is Opcode.CMP:
            a = _to_signed(_value_of(state, instr.operands[0]))
            b = _to_signed(_value_of(state, instr.operands[1]))
            state.flags = (a > b) - (a < b)
        elif opcode in (Opcode.MOV, Opcode.MOVI):
            state.write_int(instr.operands[0], _value_of(state, instr.operands[1]))
        elif opcode in _FALU:
            a = _fvalue_of(state, instr.operands[1])
            b = _fvalue_of(state, instr.operands[2])
            state.write_float(instr.operands[0], _FALU[opcode](a, b))
        elif opcode is Opcode.FDIV:
            a = _fvalue_of(state, instr.operands[1])
            b = _fvalue_of(state, instr.operands[2])
            state.write_float(instr.operands[0], a / b if b else 0.0)
        elif opcode is Opcode.FMOV:
            state.write_float(instr.operands[0], _fvalue_of(state, instr.operands[1]))
        elif opcode is Opcode.LOAD:
            region = program.region(instr.mem.region)
            offset = _effective_offset(state, instr, region.size)
            key = (region.name, offset)
            value = state.memory.get(key)
            if value is None:
                value = _default_cell(region.name, offset)
            state.write_int(instr.operands[0], value)
        elif opcode is Opcode.STORE:
            region = program.region(instr.mem.region)
            offset = _effective_offset(state, instr, region.size)
            state.memory[(region.name, offset)] = state.read_int(
                instr.operands[0]
            )
        elif opcode is Opcode.PUSH:
            state.stack.append(state.read_int(instr.operands[0]))
        elif opcode is Opcode.POP:
            if not state.stack:
                raise InterpreterError(
                    f"stack underflow in {proc.name!r} at pc={pc}"
                )
            state.write_int(instr.operands[0], state.stack.pop())
        elif opcode is Opcode.BR:
            cond, target = instr.operands
            if _COND[cond](state.flags):
                pc = proc.resolve(target)
                continue
        elif opcode is Opcode.JMP:
            pc = proc.resolve(instr.operands[0])
            continue
        elif opcode in (Opcode.JMPI, Opcode.CALLI):
            raise InterpreterError(
                f"indirect control flow ({opcode.value}) is not "
                f"interpretable ({proc.name!r} pc={pc})"
            )
        elif opcode is Opcode.CALL:
            callee = instr.operands[0]
            if callee not in program:
                raise InterpreterError(f"call to undefined {callee!r}")
            if len(call_stack) >= 512:
                raise InterpreterError("call depth exceeded")
            call_stack.append((proc.name, pc + 1))
            proc = program[callee]
            pc = 0
            continue
        elif opcode is Opcode.RET:
            if not call_stack:
                return state  # Entry procedure returned: done.
            caller, return_pc = call_stack.pop()
            proc = program[caller]
            pc = return_pc
            continue
        elif opcode is Opcode.SYS:
            number = instr.operands[0]
            state.syscalls.append(
                (number, state.read_int(GPR[0]), state.read_int(GPR[1]))
            )
            # The syscall ABI clobbers the scratch registers r0-r2
            # (deterministically, so liveness bugs surface as state
            # divergence in the equivalence tests).
            state.write_int(GPR[0], 0)
            state.write_int(GPR[1], 0)
            state.write_int(GPR[2], 0)
        elif opcode is Opcode.NOP:
            pass
        else:  # pragma: no cover - exhaustive over Opcode
            raise InterpreterError(f"unhandled opcode {opcode}")

        pc += 1
