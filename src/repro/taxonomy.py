"""One taxonomy of terminal job states.

Three subsystems retire jobs for reasons other than success, and before
this module each invented its own prose: the sweep broker reclaimed
expired leases and quarantined poison tasks, the harness blamed tasks
for worker-pool deaths and demoted them to serial execution, and the
open-system engine cancels simulated jobs while they wait or run.  The
strings land in durable places — the broker's ``events`` audit table,
``RunJournal`` records, telemetry args — so drift between them makes
post-mortems needlessly hard ("lease expired" vs "worker died" vs
"blamed").

Every terminal reason is now ``"<state>: <detail>"`` where ``<state>``
is one of the :data:`TERMINAL_STATES` below, and every emitter builds
the string through the helpers here.  :func:`state_of` recovers the
state from a stored reason, so audits can bucket historic rows without
parsing prose.
"""

from __future__ import annotations

__all__ = [
    "BROKER_DOWN",
    "CANCELLED",
    "FAILED",
    "LEASE_EXPIRED",
    "POOL_DEATH",
    "TERMINAL_STATES",
    "broker_down_reason",
    "cancelled_reason",
    "demotion_reason",
    "failed_reason",
    "lease_expired_reason",
    "pool_death_reason",
    "state_of",
]

#: A networked broker server stayed unreachable past the transport's
#: retry budget and grace window; the operation was abandoned (and the
#: sweep degraded), never left hanging.
BROKER_DOWN = "broker-down"

#: A job was cancelled by an external request (open-system departures).
CANCELLED = "cancelled"

#: A task attempt raised; it may be retried up to its attempt limit.
FAILED = "failed"

#: A worker's lease on a task expired — the worker died or hung and the
#: broker reclaimed the task for re-offer (or quarantine).
LEASE_EXPIRED = "lease-expired"

#: A worker pool died underneath a task; the harness blames the tasks
#: that were in flight and may demote them to serial execution.
POOL_DEATH = "pool-death"

#: Every terminal state a reason string may carry.
TERMINAL_STATES = frozenset(
    {BROKER_DOWN, CANCELLED, FAILED, LEASE_EXPIRED, POOL_DEATH}
)


def broker_down_reason(target: str, detail: str) -> str:
    """Reason for an operation abandoned because the broker at
    *target* (URL or directory) stayed unreachable."""
    return f"{BROKER_DOWN}: broker {target} unreachable ({detail})"


def lease_expired_reason(attempts: int, limit: int, owner: str) -> str:
    """Reason for a broker task reclaimed from a dead or hung worker."""
    return (
        f"{LEASE_EXPIRED}: attempt {attempts}/{limit} "
        f"(worker {owner} died or hung)"
    )


def failed_reason(attempts: int, limit: int, detail: str) -> str:
    """Reason for a broker task attempt that raised."""
    return f"{FAILED}: attempt {attempts}/{limit}: {detail}"


def cancelled_reason(scope: str) -> str:
    """Reason for an open-system job cancellation.

    *scope* says where the cancellation landed: ``"queued"`` (removed
    from a runqueue before completion) or ``"missed"`` (the job
    completed, never arrived, or could not be removed before the
    cancellation fired).
    """
    return f"{CANCELLED}: {scope}"


def pool_death_reason(blamed) -> str:
    """Reason logged when a worker pool dies with tasks in flight."""
    names = ", ".join(str(label) for label in blamed)
    return f"{POOL_DEATH}: worker pool died; blaming task(s): {names}"


def demotion_reason(label, crashes: int) -> str:
    """Reason logged when a repeatedly-blamed task is demoted to serial
    execution."""
    return (
        f"{POOL_DEATH}: task {label} blamed for {crashes} pool death(s); "
        f"demoting to serial execution"
    )


def state_of(reason: str) -> str:
    """The terminal state a reason string was built with, or ``""``
    for strings predating (or outside) the taxonomy."""
    state, sep, _ = (reason or "").partition(":")
    if sep and state in TERMINAL_STATES:
        return state
    return ""
