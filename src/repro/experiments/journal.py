"""Durable sweep journals: crash-safe progress for ``run_tasks``.

A :class:`RunJournal` owns one directory per sweep::

    journal.jsonl            append-only progress records
    results/task-NNNNN.pkl   pickled task results (atomic write-rename)
    ckpt/task-NNNNN/         per-task simulation checkpoints

Each completed task appends a ``result`` record carrying the result
file's SHA-256 digest; each worker-pool death appends a ``crash``
record blaming the tasks that were running.  Records are written as
one ``O_APPEND`` ``os.write`` each — POSIX appends the whole buffer
atomically at the current end of file, so two processes journaling
into the same directory (a broker worker and a rescuing parent, say)
can never interleave *within* a record — with per-record fsync by
default, so the journal survives SIGKILL at any instant:

* a journal line that fails to decode (torn by a crash mid-append, or
  half-flushed by a dying concurrent writer) is skipped — that record
  is lost, which only means its task re-runs;
* a result file that is missing, truncated, or fails its digest check
  is treated as absent — the task re-runs rather than returning
  silently wrong bytes;
* everything else replays, so ``run_tasks`` (and the ``resume`` CLI
  verb) recompute only what never finished.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

__all__ = ["RunJournal"]


def _salvage(record_line: str):
    """Recover an intact record from a line that fails to decode.

    Each append is a single atomic write, so when a torn fragment (no
    trailing newline) and a later good record share a line, the good
    record is an unbroken JSON suffix.  Try each ``{`` as its start;
    return the first suffix that parses, or None."""
    pos = record_line.find("{", 1)
    while pos != -1:
        try:
            return json.loads(record_line[pos:])
        except ValueError:
            pos = record_line.find("{", pos + 1)
    return None

#: Pool deaths blamed on one task before the watchdog demotes it to
#: serial-in-parent execution (with checkpoints, so even the demoted
#: run resumes rather than restarts).
MAX_TASK_CRASHES = 2


class RunJournal:
    """Crash-safe progress journal of one ``run_tasks`` sweep.

    *fsync* controls whether every appended record is flushed to disk
    before :meth:`record` returns.  The default (True) is what makes
    the journal survive power loss; pass False only for tests or
    throwaway sweeps where losing the last few records on a crash is
    acceptable in exchange for cheaper appends.
    """

    def __init__(self, directory, fsync: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        (self.directory / "results").mkdir(exist_ok=True)
        self.journal_path = self.directory / "journal.jsonl"
        self.fsync = bool(fsync)

    # -- reading ------------------------------------------------------------

    def _records(self) -> list:
        try:
            raw = self.journal_path.read_text(encoding="utf-8")
        except OSError:
            return []
        records = []
        for line in raw.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # Torn record: a crash mid-append, or a concurrent
                # writer that died half-flushed.  The fragment lost its
                # newline, so the *next* (atomically appended, intact)
                # record may share this line — salvage it rather than
                # let the fragment shadow it.  A record lost anyway
                # only costs one task re-run; results are
                # digest-verified on replay, so a bad skip can never
                # surface as a wrong result.
                record = _salvage(line)
                if record is None:
                    continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def completed_results(self, traced: bool = False) -> dict:
        """``{task_index: value}`` for every journaled, verified result.

        *traced* selects the result shape: pool workers under a live
        recorder journal ``(value, telemetry_blob)`` wrappers, plain
        runs journal bare values.  Records of the other shape are
        skipped (the task re-runs) so a sweep resumed under different
        tracing never returns the wrong type.
        """
        out = {}
        for record in self._records():
            if record.get("kind") != "result":
                continue
            index = record.get("index")
            if not isinstance(index, int):
                continue
            if bool(record.get("traced")) != bool(traced):
                continue
            path = self.directory / "results" / str(record.get("file"))
            try:
                payload = path.read_bytes()
            except OSError:
                continue
            if hashlib.sha256(payload).hexdigest() != record.get("sha256"):
                # Bit rot or a torn write under the published name:
                # recompute rather than trust it.
                continue
            try:
                out[index] = pickle.loads(payload)
            except Exception:
                continue
        return out

    def crash_counts(self) -> dict:
        """``{task_index: pool deaths blamed on it}`` so far."""
        counts: dict = {}
        for record in self._records():
            index = record.get("index")
            if record.get("kind") == "crash" and isinstance(index, int):
                counts[index] = counts.get(index, 0) + 1
        return counts

    # -- writing ------------------------------------------------------------

    def record(self, index: int, label, value, traced: bool = False) -> None:
        """Durably journal *value* as task *index*'s result."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        name = f"task-{index:05d}.pkl"
        path = self.directory / "results" / name
        tmp = path.with_name(name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._append(
            {
                "kind": "result",
                "index": index,
                "label": str(label),
                "file": name,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "traced": bool(traced),
            }
        )

    def note_crash(self, index: int, label="") -> None:
        """Blame one worker-pool death on task *index*."""
        self._append({"kind": "crash", "index": index, "label": str(label)})

    def checkpoint_dir(self, index: int) -> str:
        """Where task *index*'s simulation checkpoints live."""
        return str(self.directory / "ckpt" / f"task-{index:05d}")

    def _append(self, record: dict) -> None:
        # One O_APPEND os.write per record: the kernel appends the
        # whole buffer at end-of-file atomically, so records from
        # concurrent writers land whole, never interleaved.  (A
        # buffered "a"-mode write can flush in chunks and tear.)
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        fd = os.open(
            self.journal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
            if self.fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
