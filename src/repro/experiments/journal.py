"""Durable sweep journals: crash-safe progress for ``run_tasks``.

A :class:`RunJournal` owns one directory per sweep::

    journal.jsonl            append-only progress records
    results/task-NNNNN.pkl   pickled task results (atomic write-rename)
    ckpt/task-NNNNN/         per-task simulation checkpoints

Each completed task appends a ``result`` record carrying the result
file's SHA-256 digest; each worker-pool death appends a ``crash``
record blaming the tasks that were running.  Everything is written
append-only with per-record fsync, so the journal survives SIGKILL at
any instant:

* a journal line torn mid-append (the final line fails to decode) is
  ignored — that task simply re-runs;
* a result file that is missing, truncated, or fails its digest check
  is treated as absent — the task re-runs rather than returning
  silently wrong bytes;
* everything else replays, so ``run_tasks`` (and the ``resume`` CLI
  verb) recompute only what never finished.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from repro.errors import ExperimentError

__all__ = ["RunJournal"]

#: Pool deaths blamed on one task before the watchdog demotes it to
#: serial-in-parent execution (with checkpoints, so even the demoted
#: run resumes rather than restarts).
MAX_TASK_CRASHES = 2


class RunJournal:
    """Crash-safe progress journal of one ``run_tasks`` sweep."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        (self.directory / "results").mkdir(exist_ok=True)
        self.journal_path = self.directory / "journal.jsonl"

    # -- reading ------------------------------------------------------------

    def _records(self) -> list:
        try:
            raw = self.journal_path.read_text(encoding="utf-8")
        except OSError:
            return []
        lines = raw.split("\n")
        content = [i for i, line in enumerate(lines) if line.strip()]
        records = []
        for lineno in content:
            line = lines[lineno]
            try:
                record = json.loads(line)
            except ValueError:
                if lineno == content[-1]:
                    # Torn tail: the process died mid-append.  The
                    # record is lost, which only means its task re-runs.
                    break
                raise ExperimentError(
                    f"{self.journal_path}: corrupt journal line {lineno + 1} "
                    f"(not at the tail — refusing to guess what completed)"
                )
            if isinstance(record, dict):
                records.append(record)
        return records

    def completed_results(self, traced: bool = False) -> dict:
        """``{task_index: value}`` for every journaled, verified result.

        *traced* selects the result shape: pool workers under a live
        recorder journal ``(value, telemetry_blob)`` wrappers, plain
        runs journal bare values.  Records of the other shape are
        skipped (the task re-runs) so a sweep resumed under different
        tracing never returns the wrong type.
        """
        out = {}
        for record in self._records():
            if record.get("kind") != "result":
                continue
            index = record.get("index")
            if not isinstance(index, int):
                continue
            if bool(record.get("traced")) != bool(traced):
                continue
            path = self.directory / "results" / str(record.get("file"))
            try:
                payload = path.read_bytes()
            except OSError:
                continue
            if hashlib.sha256(payload).hexdigest() != record.get("sha256"):
                # Bit rot or a torn write under the published name:
                # recompute rather than trust it.
                continue
            try:
                out[index] = pickle.loads(payload)
            except Exception:
                continue
        return out

    def crash_counts(self) -> dict:
        """``{task_index: pool deaths blamed on it}`` so far."""
        counts: dict = {}
        for record in self._records():
            index = record.get("index")
            if record.get("kind") == "crash" and isinstance(index, int):
                counts[index] = counts.get(index, 0) + 1
        return counts

    # -- writing ------------------------------------------------------------

    def record(self, index: int, label, value, traced: bool = False) -> None:
        """Durably journal *value* as task *index*'s result."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        name = f"task-{index:05d}.pkl"
        path = self.directory / "results" / name
        tmp = path.with_name(name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._append(
            {
                "kind": "result",
                "index": index,
                "label": str(label),
                "file": name,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "traced": bool(traced),
            }
        )

    def note_crash(self, index: int, label="") -> None:
        """Blame one worker-pool death on task *index*."""
        self._append({"kind": "crash", "index": index, "label": str(label)})

    def checkpoint_dir(self, index: int) -> str:
        """Where task *index*'s simulation checkpoints live."""
        return str(self.directory / "ckpt" / f"task-{index:05d}")

    def _append(self, record: dict) -> None:
        with open(self.journal_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
