"""Figure 6: throughput vs the IPC threshold δ.

"Figure 6 shows how different threshold values affect throughput when
all other variables are fixed (basic block strategy, min. block size 15,
lookahead depth 0) ... Extreme thresholds may show a degradation in
throughput because the entire workload eventually migrates away from one
core type.  Between these extremes lies an optimal value."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.throughput import throughput_improvement
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_tasks
from repro.experiments.runner import (
    make_workload,
    run_baseline,
    run_technique_point,
)
from repro.experiments.report import format_series

#: δ values swept (the simulator's IPC scale; reference-cycle metric).
DEFAULT_DELTAS = (0.005, 0.02, 0.05, 0.08, 0.12, 0.18, 0.25, 0.35, 0.5)

#: Figure 6's fixed technique.
FIG6_STRATEGY = "BB[15,0]"


@dataclass
class Fig6Result:
    deltas: tuple
    improvements: list  # % throughput improvement per delta
    strategy: str
    config: ExperimentConfig


def run(
    config: ExperimentConfig = None,
    deltas=DEFAULT_DELTAS,
    strategy: str = FIG6_STRATEGY,
    jobs=None,
    log=None,
    faults=None,
) -> Fig6Result:
    config = config or ExperimentConfig.paper()
    workload = make_workload(config)
    baseline = run_baseline(config, workload, faults=faults)
    if faults is None:
        tasks = [(config, strategy, workload, delta) for delta in deltas]
    else:
        tasks = [
            (config, strategy, workload, delta, faults) for delta in deltas
        ]
    tuned_runs = run_tasks(
        run_technique_point,
        tasks,
        jobs=jobs,
        log=log,
        labels=[f"delta={delta}" for delta in deltas],
    )
    improvements = [
        throughput_improvement(baseline.result, tuned.result, config.interval)
        for tuned in tuned_runs
    ]
    return Fig6Result(tuple(deltas), improvements, strategy, config)


def format_result(result: Fig6Result) -> str:
    return format_series(
        result.deltas,
        result.improvements,
        "IPC threshold",
        "throughput improvement %",
        title=(
            f"Figure 6: throughput vs IPC threshold "
            f"({result.strategy}, slots={result.config.slots})"
        ),
    )


if __name__ == "__main__":
    print(format_result(run()))
