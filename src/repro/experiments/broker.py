"""Fault-tolerant sweep broker: a claim/lease task queue on SQLite.

The harness's :func:`~repro.experiments.harness.run_tasks` fans a sweep
out over a single-host process pool; this module promotes the same
sweep into *jobs anyone can submit*.  An **enqueue** step shreds the
sweep into content-keyed claimable tasks in a broker directory (shared
filesystem, one ``queue.db`` SQLite file — stdlib only, no new
dependencies); **workers** on any host claim tasks one at a time and
record results; the submitter (or anyone) replays the completed sweep
in task order.  Robustness is the headline — every failure mode has a
deterministic recovery path:

worker death
    A claim is a *lease* with a TTL.  Workers renew it from a
    heartbeat thread; a ``kill -9``'d worker stops heartbeating, its
    lease expires, and the task is re-offered to the next claimer
    (:meth:`Broker.reclaim_expired`, run automatically inside every
    claim).  Nothing is lost and nothing needs manual intervention.

poison tasks
    Every claim consumes one attempt from a bounded budget.  Re-offers
    back off exponentially (``backoff_base * 2**(attempt-1)``), and a
    task that exhausts its budget is **quarantined**: parked in a
    terminal state with its blamed error, visible in ``status``, while
    the rest of the sweep completes.  One crashing task cannot take a
    whole figure down.

lease races
    Near TTL expiry two workers can hold the "same" task — the lease
    system makes that safe rather than impossible.  Results are
    recorded **idempotently by content key**: the result file is named
    by its own digest (two writers can never tear each other's bytes)
    and a single ``INSERT OR IGNORE`` decides the canonical completion.
    Duplicate completions dedupe deterministically; any interleaving of
    completions yields one canonical result set.

tasks themselves crash-safe
    Each task runs with its checkpoint directory exported
    (``ckpt/<key>/`` under the broker root, via
    :func:`~repro.sim.checkpoint.task_checkpoint_dir`), so
    checkpoint-aware point functions resume mid-simulation even when
    their task is reclaimed by another worker.

Content keys hash the point function's reference plus the pickled task
payload, so identical work enqueued twice — a resubmitted sweep, or
the same parameter point appearing in two places — maps to the same
key and is computed once.  Sweep ids are derived from the content keys
too, making :meth:`Broker.enqueue` idempotent end to end: re-running
an interrupted submission re-offers only what never finished.

Worker hosts honor *their own* core budgets: nothing about worker
counts is ever written into the queue, and :func:`worker_loop` /
the ``work`` CLI verb resolve ``REPRO_JOBS`` from the worker host's
environment at claim time, not the enqueuing host's.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import socket
import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import BrokerError, BrokerUnavailableError, LeaseLostError
from repro.sim.checkpoint import task_checkpoint_dir
from repro.taxonomy import failed_reason, lease_expired_reason
from repro.store import atomic_publish, default_store
from repro.telemetry.context import current_recorder

__all__ = [
    "BACKOFF_BASE_ENV",
    "BROKER_DIR_ENV",
    "BROKER_GRACE_ENV",
    "BROKER_URL_ENV",
    "Broker",
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_DOWN_GRACE",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "LEASE_TTL_ENV",
    "Lease",
    "PRIORITY_ENV",
    "connect",
    "prepare_enqueue",
    "resolve_down_grace",
    "task_key",
    "worker_loop",
]

#: Environment variable naming the broker directory; ``run_tasks``
#: routes sweeps through it when set (see ``backend="broker"``).
BROKER_DIR_ENV = "REPRO_BROKER_DIR"

#: Environment variable naming a networked broker server
#: (``http(s)://host:port``); same routing as ``REPRO_BROKER_DIR`` but
#: over the HTTP transport of :mod:`repro.experiments.broker_net`.
BROKER_URL_ENV = "REPRO_BROKER_URL"

#: Environment variable giving enqueued sweeps a default priority
#: (``--priority``); higher claims first, 0 when unset.
PRIORITY_ENV = "REPRO_SWEEP_PRIORITY"

#: Environment variable bounding how long a worker or submitter keeps
#: polling a hard-down networked broker before abandoning the wait.
BROKER_GRACE_ENV = "REPRO_BROKER_GRACE"

#: Default grace window (seconds) for ``REPRO_BROKER_GRACE``.
DEFAULT_DOWN_GRACE = 60.0

#: Environment variable overriding the retry backoff base (seconds).
BACKOFF_BASE_ENV = "REPRO_BACKOFF_BASE"

#: Environment variable overriding the lease TTL (seconds).  Read on
#: each host independently; enqueuers and workers sharing a broker
#: directory should agree on it (a worker renews at a third of its own
#: TTL, so a modestly shorter enqueuer TTL only reclaims faster).
LEASE_TTL_ENV = "REPRO_LEASE_TTL"

#: Seconds a lease lives between heartbeats.  Workers renew at a third
#: of this, so a healthy worker never comes near expiry while a dead
#: one is reclaimed within one TTL.
DEFAULT_LEASE_TTL = 30.0

#: Claims allowed per task before quarantine (first attempt included).
DEFAULT_MAX_ATTEMPTS = 3

#: Default exponential-backoff base between re-offers of a failed task.
DEFAULT_BACKOFF_BASE = 0.5

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sweeps (
    sweep   TEXT PRIMARY KEY,
    fn      TEXT NOT NULL,
    total   INTEGER NOT NULL,
    traced  INTEGER NOT NULL DEFAULT 0,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks (
    sweep      TEXT NOT NULL,
    idx        INTEGER NOT NULL,
    key        TEXT NOT NULL,
    label      TEXT NOT NULL,
    payload    BLOB NOT NULL,
    state      TEXT NOT NULL DEFAULT 'pending',
    attempts   INTEGER NOT NULL DEFAULT 0,
    not_before REAL NOT NULL DEFAULT 0,
    lease_owner    TEXT,
    lease_deadline REAL,
    quarantine_reason TEXT,
    PRIMARY KEY (sweep, idx)
);
CREATE INDEX IF NOT EXISTS tasks_by_state ON tasks (state, not_before);
CREATE TABLE IF NOT EXISTS results (
    sweep    TEXT NOT NULL,
    key      TEXT NOT NULL,
    label    TEXT NOT NULL,
    file     TEXT NOT NULL,
    sha256   TEXT NOT NULL,
    traced   INTEGER NOT NULL DEFAULT 0,
    worker   TEXT,
    recorded REAL NOT NULL,
    PRIMARY KEY (sweep, key)
);
CREATE TABLE IF NOT EXISTS events (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    ts     REAL NOT NULL,
    kind   TEXT NOT NULL,
    sweep  TEXT,
    idx    INTEGER,
    worker TEXT,
    detail TEXT
);
CREATE TABLE IF NOT EXISTS idempotency (
    key      TEXT PRIMARY KEY,
    response TEXT NOT NULL,
    ts       REAL NOT NULL
);
"""

#: Seconds a served idempotency-key response stays replayable.  Long
#: enough to cover any client retry schedule, short enough that the
#: table never grows past one sweep's worth of mutations.
IDEMPOTENCY_TTL = 3600.0


def resolve_down_grace(down_grace: Optional[float] = None) -> float:
    """The effective grace window for polling an unreachable broker:
    the explicit argument, else ``REPRO_BROKER_GRACE``, else 60 s."""
    if down_grace is not None:
        return float(down_grace)
    raw = os.environ.get(BROKER_GRACE_ENV, "").strip()
    if raw:
        try:
            return float(raw)
        except ValueError:
            raise BrokerError(
                f"{BROKER_GRACE_ENV} must be a number, got {raw!r}"
            ) from None
    return DEFAULT_DOWN_GRACE


def _resolve_priority(priority: Optional[int]) -> int:
    if priority is not None:
        return int(priority)
    raw = os.environ.get(PRIORITY_ENV, "").strip()
    if not raw:
        return 0
    try:
        return int(raw)
    except ValueError:
        raise BrokerError(
            f"{PRIORITY_ENV} must be an integer, got {raw!r}"
        ) from None


def prepare_enqueue(
    fn: Callable,
    tasks: Sequence,
    labels: Optional[Sequence[str]] = None,
    traced: bool = False,
) -> tuple:
    """Shred a sweep into its wire form: ``(ref, sweep, items)`` where
    *items* is ``[(key, label, payload), ...]``.

    The pure half of :meth:`Broker.enqueue`, shared with the HTTP
    transport so a sweep enqueued over the network derives the exact
    same content keys and sweep id as a filesystem enqueue — the
    foundation of cross-backend byte-identity.
    """
    tasks = list(tasks)
    if labels is None:
        labels = [repr(task) for task in tasks]
    elif len(labels) != len(tasks):
        raise BrokerError(
            f"got {len(labels)} labels for {len(tasks)} tasks"
        )
    ref = (
        f"{getattr(fn, '__module__', '?')}."
        f"{getattr(fn, '__qualname__', repr(fn))}"
    )
    items = [
        (
            task_key(fn, task),
            str(label),
            pickle.dumps((fn, task), protocol=pickle.HIGHEST_PROTOCOL),
        )
        for task, label in zip(tasks, labels)
    ]
    # Traced sweeps record (value, telemetry blob) wrappers — a
    # different result shape, so a different sweep identity.  The
    # priority is deliberately NOT part of the identity: re-submitting
    # the same work at a new priority re-ranks it, never forks it.
    h = hashlib.sha256(ref.encode("utf-8"))
    if traced:
        h.update(b"\x01traced")
    for key, _label, _payload in items:
        h.update(b"\x00")
        h.update(key.encode("ascii"))
    sweep = f"sweep-{h.hexdigest()[:12]}"
    return ref, sweep, items


def task_key(fn: Callable, task) -> str:
    """Content key of one task: the point function's reference hashed
    with the pickled task payload.

    Identical work maps to the same key whatever sweep, index, or host
    it is enqueued from — the unit of idempotent result recording.
    """
    ref = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    h = hashlib.sha256()
    h.update(ref.encode("utf-8"))
    h.update(b"\x00")
    h.update(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
    return h.hexdigest()[:32]


def default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


class Lease:
    """One worker's claim on one task, valid until ``deadline``."""

    __slots__ = (
        "sweep", "index", "key", "label", "payload",
        "attempt", "deadline", "worker",
    )

    def __init__(self, sweep, index, key, label, payload, attempt, deadline,
                 worker):
        self.sweep = sweep
        self.index = index
        self.key = key
        self.label = label
        self.payload = payload
        self.attempt = attempt
        self.deadline = deadline
        self.worker = worker

    def load(self) -> tuple:
        """Unpickle ``(fn, task)`` from the claimed payload."""
        return pickle.loads(self.payload)

    def __repr__(self):
        return (
            f"Lease({self.sweep}[{self.index}] {self.label!r} "
            f"attempt={self.attempt} worker={self.worker})"
        )


class Broker:
    """A claim/lease task queue over one broker directory.

    Layout::

        queue.db                       tasks / results / events (SQLite)
        results/<key>-<digest>.pkl     pickled result payloads
        ckpt/<key>/                    per-task simulation checkpoints

    Every instance opens its own SQLite connections (one per thread —
    heartbeat threads renew through their own handle), so any number of
    worker processes on any number of hosts can share the directory.
    All state transitions run inside ``BEGIN IMMEDIATE`` transactions:
    claims are atomic, and two workers can never claim the same live
    lease.

    Args:
        directory: the broker root (created unless ``create=False``).
        lease_ttl: seconds a claim stays valid without a heartbeat.
        max_attempts: claims allowed per task before quarantine.
        backoff_base: exponential-backoff base (seconds) between
            re-offers; the ``REPRO_BACKOFF_BASE`` environment variable
            when ``None``, falling back to 0.5 s.
        fsync: fsync result files before publishing them (disable only
            in tests, where losing a result to power loss is fine).

    Raises:
        BrokerError: the directory (or its database) cannot be
            created/opened — callers degrade to the pool backend.
    """

    def __init__(
        self,
        directory,
        lease_ttl: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: Optional[float] = None,
        fsync: bool = True,
    ):
        if lease_ttl is None:
            raw = os.environ.get(LEASE_TTL_ENV, "").strip()
            try:
                lease_ttl = float(raw) if raw else DEFAULT_LEASE_TTL
            except ValueError:
                raise BrokerError(
                    f"{LEASE_TTL_ENV} must be a number, got {raw!r}"
                ) from None
        if lease_ttl <= 0:
            raise BrokerError(f"lease_ttl must be positive, got {lease_ttl}")
        if max_attempts < 1:
            raise BrokerError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if backoff_base is None:
            raw = os.environ.get(BACKOFF_BASE_ENV, "").strip()
            try:
                backoff_base = float(raw) if raw else DEFAULT_BACKOFF_BASE
            except ValueError:
                raise BrokerError(
                    f"{BACKOFF_BASE_ENV} must be a number, got {raw!r}"
                ) from None
        if backoff_base < 0:
            raise BrokerError(
                f"backoff_base must be >= 0, got {backoff_base}"
            )
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.fsync = bool(fsync)
        self.directory = Path(directory)
        self.db_path = self.directory / "queue.db"
        self.results_dir = self.directory / "results"
        self._local = threading.local()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.results_dir.mkdir(exist_ok=True)
            # executescript commits on its own; keep it out of _txn.
            self._conn().executescript(_SCHEMA)
            try:
                # Migration for queues created before sweep priorities:
                # CREATE TABLE IF NOT EXISTS never adds columns.
                self._conn().execute(
                    "ALTER TABLE tasks "
                    "ADD COLUMN priority INTEGER NOT NULL DEFAULT 0"
                )
            except sqlite3.OperationalError:
                pass  # column already present
        except (OSError, sqlite3.Error) as exc:
            raise BrokerError(
                f"cannot open broker directory {directory}: {exc}"
            ) from exc

    @property
    def target(self) -> str:
        """The string another process would :func:`connect` to."""
        return str(self.directory)

    # -- plumbing -----------------------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                str(self.db_path), timeout=30.0, isolation_level=None
            )
            conn.execute("PRAGMA busy_timeout = 30000")
            try:
                conn.execute("PRAGMA journal_mode = WAL")
            except sqlite3.Error:
                pass  # WAL unsupported on this filesystem; default is fine
            self._local.conn = conn
        return conn

    class _Txn:
        def __init__(self, conn):
            self.conn = conn

        def __enter__(self):
            self.conn.execute("BEGIN IMMEDIATE")
            return self.conn.cursor()

        def __exit__(self, exc_type, exc, tb):
            if exc_type is None:
                self.conn.execute("COMMIT")
            else:
                self.conn.execute("ROLLBACK")
            return False

    def _txn(self) -> "_Txn":
        return self._Txn(self._conn())

    def _event(self, cur, kind, sweep=None, idx=None, worker=None,
               detail=None, now=None) -> None:
        cur.execute(
            "INSERT INTO events (ts, kind, sweep, idx, worker, detail) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (now if now is not None else time.time(),
             kind, sweep, idx, worker, detail),
        )
        rec = current_recorder()
        if rec.enabled:
            rec.incr(f"broker.{kind}")
            if rec.wants("broker"):
                run = getattr(self._local, "telemetry_run", None)
                if run is None:
                    run = rec.begin_run(
                        f"broker:{worker or default_worker_id()}", clock="wall"
                    )
                    self._local.telemetry_run = run
                rec.instant(
                    "broker", kind, time.perf_counter(), run=run,
                    args={"sweep": sweep, "idx": idx, "detail": detail},
                )

    # -- enqueue ------------------------------------------------------------

    def enqueue(
        self,
        fn: Callable,
        tasks: Sequence,
        labels: Optional[Sequence[str]] = None,
        sweep: Optional[str] = None,
        traced: bool = False,
        priority: Optional[int] = None,
    ) -> str:
        """Shred a sweep into claimable tasks; returns the sweep id.

        Idempotent: the sweep id is derived from the content keys, so
        re-enqueueing the same work is a no-op that leaves existing
        progress (done/quarantined states, recorded results) intact —
        except the *priority* (``REPRO_SWEEP_PRIORITY`` when ``None``),
        which re-ranks the sweep's still-pending tasks.
        """
        ref, derived, items = prepare_enqueue(
            fn, tasks, labels=labels, traced=traced
        )
        return self.enqueue_raw(
            ref, items, sweep=sweep or derived, traced=traced,
            priority=_resolve_priority(priority),
        )

    def enqueue_raw(
        self,
        ref: str,
        items: Sequence,
        sweep: str,
        traced: bool = False,
        priority: int = 0,
    ) -> str:
        """Enqueue pre-shredded ``(key, label, payload)`` *items* under
        *sweep* — the transaction half of :meth:`enqueue`, called
        directly by the HTTP server with items shredded client-side."""
        priority = int(priority)
        now = time.time()
        with self._txn() as cur:
            fresh = cur.execute(
                "INSERT OR IGNORE INTO sweeps "
                "(sweep, fn, total, traced, created) VALUES (?, ?, ?, ?, ?)",
                (sweep, ref, len(items), int(bool(traced)), now),
            ).rowcount
            for idx, (key, label, payload) in enumerate(items):
                cur.execute(
                    "INSERT OR IGNORE INTO tasks "
                    "(sweep, idx, key, label, payload, priority) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (sweep, idx, key, str(label), payload, priority),
                )
            if not fresh:
                # Re-submission at a new priority re-ranks whatever has
                # not been claimed yet; settled rows keep their state.
                cur.execute(
                    "UPDATE tasks SET priority = ? "
                    "WHERE sweep = ? AND priority != ?",
                    (priority, sweep, priority),
                )
            if fresh:
                self._event(
                    cur, "enqueue", sweep=sweep,
                    detail=f"{len(items)} task(s) fn={ref}"
                    + (f" priority={priority}" if priority else ""),
                    now=now,
                )
        return sweep

    # -- claim / lease ------------------------------------------------------

    def claim(
        self, worker: Optional[str] = None, now: Optional[float] = None
    ) -> Optional[Lease]:
        """Atomically claim one runnable task, or ``None`` if none is
        currently offerable (queue drained, every offer backing off, or
        everything leased out).

        Expired leases are reclaimed first, inside the same
        transaction, so a claim right after a worker death re-offers
        the dead worker's task immediately.
        """
        worker = worker or default_worker_id()
        now = time.time() if now is None else now
        with self._txn() as cur:
            self._reclaim_locked(cur, now)
            # Highest priority band first; FIFO within a band (rowid is
            # insertion order, which re-offers keep — a retried task
            # never loses its place in line).
            row = cur.execute(
                "SELECT sweep, idx, key, label, payload, attempts "
                "FROM tasks WHERE state = 'pending' AND not_before <= ? "
                "ORDER BY priority DESC, rowid LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            sweep, idx, key, label, payload, attempts = row
            deadline = now + self.lease_ttl
            cur.execute(
                "UPDATE tasks SET state = 'leased', attempts = ?, "
                "lease_owner = ?, lease_deadline = ? "
                "WHERE sweep = ? AND idx = ?",
                (attempts + 1, worker, deadline, sweep, idx),
            )
            self._event(
                cur, "claim", sweep=sweep, idx=idx, worker=worker,
                detail=f"attempt {attempts + 1}/{self.max_attempts}", now=now,
            )
        return Lease(
            sweep, idx, key, label, payload, attempts + 1, deadline, worker
        )

    def heartbeat(self, lease: Lease, now: Optional[float] = None) -> float:
        """Renew *lease*, returning the new deadline.

        Raises:
            LeaseLostError: the lease expired and was reclaimed (or the
                task was completed/quarantined) — the worker should
                abandon the attempt; a late completion is still safe to
                record and will simply dedupe.
        """
        now = time.time() if now is None else now
        deadline = now + self.lease_ttl
        with self._txn() as cur:
            changed = cur.execute(
                "UPDATE tasks SET lease_deadline = ? "
                "WHERE sweep = ? AND idx = ? AND state = 'leased' "
                "AND lease_owner = ?",
                (deadline, lease.sweep, lease.index, lease.worker),
            ).rowcount
        if not changed:
            raise LeaseLostError(
                f"lease on {lease.sweep}[{lease.index}] ({lease.label}) "
                f"lost by {lease.worker}"
            )
        lease.deadline = deadline
        return deadline

    def reclaim_expired(self, now: Optional[float] = None) -> list:
        """Re-offer every task whose lease deadline has passed.

        Returns ``(sweep, idx, label, new_state)`` tuples for the
        reclaimed tasks (``new_state`` is ``pending`` or
        ``quarantined``).  Also run automatically inside every claim.
        """
        now = time.time() if now is None else now
        with self._txn() as cur:
            return self._reclaim_locked(cur, now)

    def _reclaim_locked(self, cur, now: float) -> list:
        rows = cur.execute(
            "SELECT sweep, idx, label, attempts, lease_owner FROM tasks "
            "WHERE state = 'leased' AND lease_deadline <= ?",
            (now,),
        ).fetchall()
        out = []
        for sweep, idx, label, attempts, owner in rows:
            if attempts >= self.max_attempts:
                reason = lease_expired_reason(
                    attempts, self.max_attempts, owner
                )
                cur.execute(
                    "UPDATE tasks SET state = 'quarantined', "
                    "lease_owner = NULL, lease_deadline = NULL, "
                    "quarantine_reason = ? WHERE sweep = ? AND idx = ?",
                    (reason, sweep, idx),
                )
                self._event(
                    cur, "quarantine", sweep=sweep, idx=idx, worker=owner,
                    detail=reason, now=now,
                )
                out.append((sweep, idx, label, "quarantined"))
            else:
                not_before = now + self.backoff_base * (2 ** (attempts - 1))
                cur.execute(
                    "UPDATE tasks SET state = 'pending', lease_owner = NULL, "
                    "lease_deadline = NULL, not_before = ? "
                    "WHERE sweep = ? AND idx = ?",
                    (not_before, sweep, idx),
                )
                self._event(
                    cur, "reclaim", sweep=sweep, idx=idx, worker=owner,
                    detail=f"lease expired after attempt {attempts}", now=now,
                )
                out.append((sweep, idx, label, "pending"))
        return out

    # -- completion ---------------------------------------------------------

    def complete(
        self,
        lease: Lease,
        value,
        traced: bool = False,
        now: Optional[float] = None,
    ) -> bool:
        """Record *value* as the result of the leased task.

        Idempotent by content key: the first completion for a key wins
        and later ones dedupe (returning ``False``) — safe to call even
        after the lease was lost to another worker.  The result file is
        published under a digest-qualified name *before* the database
        row, so a crash between the two leaves at worst an orphaned
        file, never a recorded result with missing bytes; and two
        racing writers can never corrupt each other (same digest means
        same bytes, different digests mean different files).
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return self.complete_raw(
            lease.sweep, lease.index, lease.key, lease.label, lease.worker,
            payload, traced=traced, now=now,
        )

    def complete_raw(
        self,
        sweep: str,
        index: int,
        key: str,
        label: str,
        worker: Optional[str],
        payload: bytes,
        traced: bool = False,
        now: Optional[float] = None,
    ) -> bool:
        """Record already-pickled result *payload* — the durable half
        of :meth:`complete`, called directly by the HTTP server with
        bytes pickled client-side (the digest discipline is identical,
        so retried network completions converge the same way racing
        local ones always have)."""
        now = time.time() if now is None else now
        digest = hashlib.sha256(payload).hexdigest()
        name = f"{key}-{digest[:12]}.pkl"
        path = self.results_dir / name
        if not path.exists():
            tmp = path.with_name(
                f"{name}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            with open(tmp, "wb") as fh:
                fh.write(payload)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        # Mirror the result into the shared artifact store (if one is
        # configured) so replays on other hosts can fetch it by digest.
        # Best-effort: a dead store tier never fails a completion.
        store = default_store()
        if store is not None:
            store.put_object(payload)
        with self._txn() as cur:
            recorded = cur.execute(
                "INSERT OR IGNORE INTO results "
                "(sweep, key, label, file, sha256, traced, worker, recorded) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (sweep, key, label, name, digest,
                 int(bool(traced)), worker, now),
            ).rowcount == 1
            # Settle every task row sharing the key (duplicate content
            # within a sweep is computed once).
            cur.execute(
                "UPDATE tasks SET state = 'done', lease_owner = NULL, "
                "lease_deadline = NULL, quarantine_reason = NULL "
                "WHERE sweep = ? AND key = ? AND state != 'done'",
                (sweep, key),
            )
            self._event(
                cur,
                "complete" if recorded else "dedupe",
                sweep=sweep, idx=index, worker=worker,
                detail=digest[:12], now=now,
            )
        return recorded

    # -- idempotency keys (served transport) --------------------------------

    def idempotent_response(self, key: str) -> Optional[str]:
        """The response previously served for idempotency key *key*, or
        ``None`` if this key has not been (durably) served yet."""
        row = self._conn().execute(
            "SELECT response FROM idempotency WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def store_idempotent(
        self, key: str, response: str, now: Optional[float] = None
    ) -> None:
        """Durably record *response* for *key* so a client retry of the
        same mutation (dropped response, torn connection) replays the
        original outcome instead of re-executing it.  Entries expire
        after :data:`IDEMPOTENCY_TTL` — far beyond any retry budget."""
        now = time.time() if now is None else now
        with self._txn() as cur:
            cur.execute(
                "INSERT OR REPLACE INTO idempotency (key, response, ts) "
                "VALUES (?, ?, ?)",
                (key, response, now),
            )
            cur.execute(
                "DELETE FROM idempotency WHERE ts < ?",
                (now - IDEMPOTENCY_TTL,),
            )

    def fail(
        self, lease: Lease, error, now: Optional[float] = None
    ) -> str:
        """Report a failed attempt; returns the task's new state
        (``pending`` for a backed-off re-offer, ``quarantined`` once
        the attempt budget is spent)."""
        now = time.time() if now is None else now
        detail = f"{type(error).__name__}: {error}" if isinstance(
            error, BaseException
        ) else str(error)
        with self._txn() as cur:
            row = cur.execute(
                "SELECT attempts, state, lease_owner FROM tasks "
                "WHERE sweep = ? AND idx = ?",
                (lease.sweep, lease.index),
            ).fetchone()
            if row is None:
                raise BrokerError(
                    f"no such task {lease.sweep}[{lease.index}]"
                )
            attempts, state, owner = row
            if state != "leased" or owner != lease.worker:
                # Reclaimed (and possibly re-leased to another worker)
                # while we were failing: that attempt was already
                # charged at reclaim time — never fail someone else's
                # live lease.
                return state
            if attempts >= self.max_attempts:
                reason = failed_reason(attempts, self.max_attempts, detail)
                cur.execute(
                    "UPDATE tasks SET state = 'quarantined', "
                    "lease_owner = NULL, lease_deadline = NULL, "
                    "quarantine_reason = ? WHERE sweep = ? AND idx = ?",
                    (reason, lease.sweep, lease.index),
                )
                self._event(
                    cur, "quarantine", sweep=lease.sweep, idx=lease.index,
                    worker=lease.worker, detail=reason, now=now,
                )
                return "quarantined"
            not_before = now + self.backoff_base * (2 ** (attempts - 1))
            cur.execute(
                "UPDATE tasks SET state = 'pending', lease_owner = NULL, "
                "lease_deadline = NULL, not_before = ? "
                "WHERE sweep = ? AND idx = ?",
                (not_before, lease.sweep, lease.index),
            )
            self._event(
                cur, "fail", sweep=lease.sweep, idx=lease.index,
                worker=lease.worker, detail=detail, now=now,
            )
            return "pending"

    # -- inspection / replay ------------------------------------------------

    def counts(self, sweep: Optional[str] = None) -> dict:
        """``{state: task count}``, for one sweep or the whole queue."""
        query = "SELECT state, COUNT(*) FROM tasks"
        args: tuple = ()
        if sweep is not None:
            query += " WHERE sweep = ?"
            args = (sweep,)
        rows = self._conn().execute(query + " GROUP BY state", args).fetchall()
        out = {"pending": 0, "leased": 0, "done": 0, "quarantined": 0}
        out.update(dict(rows))
        return out

    def sweeps(self) -> list:
        """``(sweep, fn, total, traced, created)`` rows, oldest first."""
        return self._conn().execute(
            "SELECT sweep, fn, total, traced, created FROM sweeps "
            "ORDER BY created"
        ).fetchall()

    def sweep_traced(self, sweep: str) -> bool:
        """Whether *sweep* records traced ``(value, blob)`` results."""
        row = self._conn().execute(
            "SELECT traced FROM sweeps WHERE sweep = ?", (sweep,)
        ).fetchone()
        return bool(row and row[0])

    def quarantined(self, sweep: Optional[str] = None) -> list:
        """``(sweep, idx, label, attempts, reason)`` for every
        quarantined task."""
        query = (
            "SELECT sweep, idx, label, attempts, quarantine_reason "
            "FROM tasks WHERE state = 'quarantined'"
        )
        args: tuple = ()
        if sweep is not None:
            query += " AND sweep = ?"
            args = (sweep,)
        return self._conn().execute(query + " ORDER BY sweep, idx", args).fetchall()

    def requeue_quarantined(self, sweep: Optional[str] = None) -> int:
        """Give every quarantined task a fresh attempt budget; returns
        how many were re-offered (operator escape hatch)."""
        with self._txn() as cur:
            query = (
                "UPDATE tasks SET state = 'pending', attempts = 0, "
                "not_before = 0, quarantine_reason = NULL "
                "WHERE state = 'quarantined'"
            )
            args: tuple = ()
            if sweep is not None:
                query += " AND sweep = ?"
                args = (sweep,)
            count = cur.execute(query, args).rowcount
            if count:
                self._event(
                    cur, "requeue", sweep=sweep, detail=f"{count} task(s)"
                )
        return count

    def settled(self, sweep: str) -> bool:
        """True when no task of *sweep* is runnable or running (every
        task is done or quarantined)."""
        c = self.counts(sweep)
        return c["pending"] == 0 and c["leased"] == 0

    def result_digests(self, sweep: str) -> dict:
        """``{label: result sha256}`` for the sweep's recorded results
        (the golden-baseline unit of comparison)."""
        rows = self._conn().execute(
            "SELECT label, sha256 FROM results WHERE sweep = ?", (sweep,)
        ).fetchall()
        return dict(rows)

    def result_rows(self, sweep: str) -> list:
        """``(label, key, sha256)`` per recorded result — what the
        results DB blesses into (and diffs against) the golden
        baseline."""
        return self._conn().execute(
            "SELECT label, key, sha256 FROM results WHERE sweep = ? "
            "ORDER BY label",
            (sweep,),
        ).fetchall()

    def replay_manifest(self, sweep: str) -> dict:
        """What a remote replayer needs before fetching payloads:
        ``{"rows": [(key, sha256, traced)], "index_keys": [(idx, key)]}``
        — served by the broker HTTP server so clients can verify every
        payload against its recorded digest."""
        rows = self._conn().execute(
            "SELECT key, sha256, traced FROM results WHERE sweep = ? "
            "ORDER BY key",
            (sweep,),
        ).fetchall()
        index_keys = self._conn().execute(
            "SELECT idx, key FROM tasks WHERE sweep = ? ORDER BY idx",
            (sweep,),
        ).fetchall()
        return {
            "rows": [list(row) for row in rows],
            "index_keys": [list(row) for row in index_keys],
        }

    def result_payload(self, sweep: str, key: str) -> Optional[bytes]:
        """The verified pickled result bytes for ``(sweep, key)``, or
        ``None`` — local file first (digest-checked), shared store as
        the fallback, exactly like :meth:`replay` resolves them."""
        row = self._conn().execute(
            "SELECT file, sha256 FROM results WHERE sweep = ? AND key = ?",
            (sweep, key),
        ).fetchone()
        if row is None:
            return None
        name, digest = row
        try:
            data = (self.results_dir / name).read_bytes()
        except OSError:
            data = None
        if data is not None and hashlib.sha256(data).hexdigest() != digest:
            data = None
        if data is None:
            store = default_store()
            if store is not None:
                data = store.get_object(digest)
        return data

    def replay(self, sweep: str, traced: bool = False) -> dict:
        """``{task index: value}`` for every verified recorded result.

        Mirrors the journal contract: a result whose file is missing,
        truncated, or fails its digest check is treated as absent (the
        task re-runs) rather than returning silently wrong bytes, and
        records of the other traced-ness are skipped.  A missing or
        damaged local file falls back to the shared artifact store
        (fetched by the row's digest, verified, and republished
        locally), so a second host can replay a sweep it never ran.
        """
        by_key = {}
        rows = self._conn().execute(
            "SELECT key, file, sha256, traced FROM results WHERE sweep = ?",
            (sweep,),
        ).fetchall()
        store = default_store()
        for key, name, digest, rec_traced in rows:
            if bool(rec_traced) != bool(traced):
                continue
            try:
                payload = (self.results_dir / name).read_bytes()
            except OSError:
                payload = None
            if payload is not None and (
                hashlib.sha256(payload).hexdigest() != digest
            ):
                payload = None
            if payload is None and store is not None:
                payload = store.get_object(digest)
                if payload is not None:
                    # Promote the fetched result next to the queue so
                    # later replays need no remote tier.
                    try:
                        atomic_publish(self.results_dir / name, payload,
                                       fsync=self.fsync)
                    except OSError:
                        pass
            if payload is None:
                continue
            try:
                by_key[key] = pickle.loads(payload)
            except Exception:
                continue
        out = {}
        for idx, key in self._conn().execute(
            "SELECT idx, key FROM tasks WHERE sweep = ?", (sweep,)
        ).fetchall():
            if key in by_key:
                out[idx] = by_key[key]
        return out

    def drop_results(self, sweep: str, traced: Optional[bool] = None) -> int:
        """Forget recorded results (and re-offer their tasks) so the
        sweep recomputes; returns how many records were dropped."""
        with self._txn() as cur:
            query = "SELECT key FROM results WHERE sweep = ?"
            args: list = [sweep]
            if traced is not None:
                query += " AND traced = ?"
                args.append(int(bool(traced)))
            keys = [row[0] for row in cur.execute(query, args).fetchall()]
            for key in keys:
                cur.execute(
                    "DELETE FROM results WHERE sweep = ? AND key = ?",
                    (sweep, key),
                )
                cur.execute(
                    "UPDATE tasks SET state = 'pending', attempts = 0, "
                    "not_before = 0 WHERE sweep = ? AND key = ?",
                    (sweep, key),
                )
        return len(keys)

    def events(self, sweep: Optional[str] = None, limit: int = 200) -> list:
        """The newest audit-trail rows, oldest first."""
        query = "SELECT ts, kind, sweep, idx, worker, detail FROM events"
        args: tuple = ()
        if sweep is not None:
            query += " WHERE sweep = ?"
            args = (sweep,)
        rows = self._conn().execute(
            query + " ORDER BY seq DESC LIMIT ?", args + (int(limit),)
        ).fetchall()
        return list(reversed(rows))

    def active_workers(self, now: Optional[float] = None) -> list:
        """Workers currently holding unexpired leases."""
        now = time.time() if now is None else now
        return [
            row[0]
            for row in self._conn().execute(
                "SELECT DISTINCT lease_owner FROM tasks "
                "WHERE state = 'leased' AND lease_deadline > ? "
                "ORDER BY lease_owner",
                (now,),
            ).fetchall()
        ]

    def checkpoint_dir(self, key: str) -> str:
        """Where the task with content key *key* checkpoints."""
        return str(self.directory / "ckpt" / key)

    def gc_checkpoints(self) -> tuple:
        """Remove ``ckpt/<key>`` dirs whose tasks all reached ``done``.

        Checkpoints exist to resume interrupted work; once every task
        row sharing a key is done, its directory is dead weight (it
        used to accumulate forever).  Returns ``(dirs removed, bytes
        freed)``.  Directories whose key is still pending, leased, or
        quarantined — or not in the queue at all (another queue's keys,
        a mid-write claim) — are left alone.
        """
        root = self.directory / "ckpt"
        if not root.is_dir():
            return 0, 0
        states = {}
        for key, state in self._conn().execute(
            "SELECT key, state FROM tasks"
        ).fetchall():
            states.setdefault(key, set()).add(state)
        removed = 0
        freed = 0
        for entry in sorted(root.iterdir()):
            if not entry.is_dir() or states.get(entry.name) != {"done"}:
                continue
            size = 0
            try:
                for path in sorted(entry.rglob("*"), reverse=True):
                    if path.is_file():
                        size += path.stat().st_size
                        path.unlink()
                    elif path.is_dir():
                        path.rmdir()
                entry.rmdir()
            except OSError:
                continue
            removed += 1
            freed += size
        if removed:
            with self._txn() as cur:
                self._event(
                    cur, "gc", detail=f"{removed} checkpoint dir(s), "
                    f"{freed} bytes",
                )
        return removed, freed

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None


# -- transport resolution ----------------------------------------------------


def connect(
    target,
    lease_ttl: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backoff_base: Optional[float] = None,
    fsync: bool = True,
):
    """The broker transport for *target*: an ``http(s)://`` URL returns
    an :class:`~repro.experiments.broker_net.HTTPBroker` client, any
    other string or path opens the filesystem :class:`Broker` directly.

    Both transports expose the same claim/lease surface, so callers —
    :func:`worker_loop`, the harness's broker backend, the CLI verbs —
    never branch on which one they got.
    """
    if isinstance(target, str) and target.startswith(
        ("http://", "https://")
    ):
        from repro.experiments.broker_net import HTTPBroker

        return HTTPBroker(
            target,
            lease_ttl=lease_ttl,
            max_attempts=max_attempts,
            backoff_base=backoff_base,
        )
    return Broker(
        target,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
        backoff_base=backoff_base,
        fsync=fsync,
    )


# -- worker loop ------------------------------------------------------------


class _Heartbeat(threading.Thread):
    """Renews one lease until stopped; optionally enforces a per-task
    wall budget by SIGKILLing its own process (the lease then expires
    and the task is re-offered elsewhere — the broker-backend analogue
    of the pool path's straggler SIGKILL)."""

    def __init__(self, broker, lease, task_timeout, timeout_kills):
        super().__init__(daemon=True)
        self.broker = broker
        self.lease = lease
        self.task_timeout = task_timeout
        self.timeout_kills = timeout_kills
        self.started_at = time.monotonic()
        self.lost = False
        self.timed_out = False
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=self.broker.lease_ttl)

    def run(self) -> None:
        interval = self.broker.lease_ttl / 3.0
        while not self._halt.wait(interval):
            if (
                self.task_timeout is not None
                and time.monotonic() - self.started_at >= self.task_timeout
            ):
                self.timed_out = True
                if self.timeout_kills:
                    os.kill(os.getpid(), signal.SIGKILL)
                return  # stop renewing; the lease expires and reclaims
            try:
                self.broker.heartbeat(self.lease)
            except LeaseLostError:
                self.lost = True
                return
            except Exception:
                # A transient DB hiccup: keep trying while the lease
                # may still be alive.
                continue


def worker_loop(
    directory,
    worker: Optional[str] = None,
    lease_ttl: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backoff_base: Optional[float] = None,
    task_timeout: Optional[float] = None,
    timeout_kills: bool = False,
    poll_interval: float = 0.2,
    drain: bool = True,
    max_tasks: Optional[int] = None,
    log: Optional[Callable] = None,
    down_grace: Optional[float] = None,
) -> int:
    """Claim and run tasks from the broker at *directory* (a path or an
    ``http(s)://`` broker-server URL).

    The core of the ``work`` CLI verb and of the local workers the
    harness's broker backend spawns.  Each claimed task runs under a
    heartbeat thread renewing the lease at a third of its TTL and with
    its checkpoint directory exported; an exception inside the point
    function reports :meth:`Broker.fail` (backed-off re-offer, then
    quarantine) instead of killing the loop.

    Over the HTTP transport the loop degrades instead of crashing: an
    unreachable server is polled (cheaply — the transport's breaker
    answers without touching the network inside its cooldown) until it
    returns or *down_grace* (``REPRO_BROKER_GRACE``, 60 s) of
    continuous unavailability passes while draining; a completion the
    server never acknowledged is simply recomputed by a later claim
    and deduped by content key.

    Args:
        worker: worker identity for leases (host:pid by default).
        task_timeout: per-task wall budget; with *timeout_kills* the
            worker SIGKILLs itself when exceeded (subprocess workers
            only!), otherwise it just stops heartbeating so the task is
            reclaimed while the local attempt burns out.
        drain: return once no task is runnable or running anywhere in
            the queue; ``False`` keeps serving until interrupted.
        max_tasks: stop after this many completed claims (tests).
        down_grace: seconds of continuous broker unavailability a
            draining worker tolerates before giving up.

    Returns:
        the number of tasks this worker completed.
    """
    down_grace = resolve_down_grace(down_grace)
    worker = worker or default_worker_id()
    started = time.monotonic()
    while True:
        # A worker may legitimately start before its broker server is
        # up (CI launches both at once): keep trying to connect for the
        # grace window instead of crashing on the first refused socket.
        try:
            broker = connect(
                directory,
                lease_ttl=lease_ttl,
                max_attempts=max_attempts,
                backoff_base=backoff_base,
            )
            break
        except BrokerUnavailableError as exc:
            if time.monotonic() - started > down_grace:
                raise
            if log is not None:
                log(f"worker {worker}: {exc}; waiting for broker")
            time.sleep(poll_interval)
    # Warm the pipeline cache from the shared store (when configured)
    # before claiming anything: a sweep point then reuses the fleet's
    # static-pipeline products instead of recomputing them per worker.
    from repro.tuning.pipeline import default_cache

    prefetched = default_cache().warm_from_store()
    if prefetched and log is not None:
        log(f"worker {worker}: prefetched {prefetched} pipeline "
            f"entries from the store")
    rec = current_recorder()
    completed = 0
    task_run = None
    down_since = None
    traced_cache: dict = {}
    while True:
        if max_tasks is not None and completed >= max_tasks:
            return completed
        try:
            lease = broker.claim(worker)
        except BrokerUnavailableError as exc:
            # Hard-down server: keep polling (the breaker makes each
            # poll an instant no-network raise) until it returns or the
            # grace window closes.  Never a hung worker, never a crash.
            now = time.monotonic()
            if down_since is None:
                down_since = now
                if log is not None:
                    log(f"worker {worker}: {exc}; polling")
            if drain and now - down_since > down_grace:
                if log is not None:
                    log(
                        f"worker {worker}: broker still unreachable "
                        f"after {down_grace:g}s; giving up"
                    )
                return completed
            time.sleep(poll_interval)
            continue
        down_since = None
        if lease is None:
            try:
                counts = broker.counts()
            except BrokerUnavailableError:
                time.sleep(poll_interval)
                continue
            if counts["pending"] == 0 and counts["leased"] == 0:
                if drain:
                    return completed
            time.sleep(poll_interval)
            continue
        if log is not None:
            log(
                f"worker {worker}: claimed {lease.label} "
                f"(attempt {lease.attempt})"
            )
        heartbeat = _Heartbeat(broker, lease, task_timeout, timeout_kills)
        heartbeat.start()
        started = time.perf_counter()
        try:
            fn, task = lease.load()
            # The content key doubles as the snapshot's store ref, so a
            # reclaimed task resumes from the fleet's last published
            # checkpoint even on a host with an empty ckpt/ directory.
            with task_checkpoint_dir(broker.checkpoint_dir(lease.key),
                                     ref=lease.key):
                value = fn(task)
        except BaseException as exc:
            heartbeat.stop()
            try:
                state = broker.fail(lease, exc)
            except BrokerUnavailableError:
                # The lease lapses on its own and the task is
                # re-offered; losing the failure report costs nothing.
                state = "unreported"
            if log is not None:
                log(f"worker {worker}: {lease.label} failed ({exc!r}) -> {state}")
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            continue
        heartbeat.stop()
        try:
            if lease.sweep not in traced_cache:
                traced_cache[lease.sweep] = broker.sweep_traced(lease.sweep)
            recorded = broker.complete(
                lease, value, traced=traced_cache[lease.sweep]
            )
        except BrokerUnavailableError as exc:
            # The completion was computed but could not be recorded
            # past the transport's retries.  Safe to drop: the lease
            # lapses, the task is re-offered, and the recomputed result
            # dedupes by content key.
            if log is not None:
                log(
                    f"worker {worker}: could not record {lease.label} "
                    f"({exc}); it will be recomputed"
                )
            continue
        completed += 1
        if rec.enabled and rec.wants("task"):
            if task_run is None:
                task_run = rec.begin_run(f"broker-worker:{worker}", clock="wall")
            rec.span(
                "task", lease.label, started,
                time.perf_counter() - started, run=task_run,
            )
        if log is not None:
            log(
                f"worker {worker}: {lease.label} "
                f"{'recorded' if recorded else 'deduped'}"
            )
