"""Table 1: core switches and isolated runtime per benchmark.

"In Table 1 we show the number of core switches and runtime (in
isolation) for each benchmark ... most programs change phase types
occasionally throughout execution.  Some programs ... have few or only
one phase ... Finally, two benchmarks (459 and 473) do not have any
phases at all."  Configuration: Loop[45] with a 0.2 IPC threshold.

Each benchmark runs alone on the AMP with the tuning runtime attached;
we count actual core switches (affinity-forced migrations) and the
wall-clock runtime.  This experiment uses the *literal* Algorithm 2 tie
handling (``tie_policy="algorithm"``): on the paper's machine every
phase type gets pinned to a concrete core — ties land on whichever core
measurement noise ranked first — so alternating phases with different
pins produce Table 1's per-benchmark switch counts.  (The workload
experiments use the default ``"free"`` policy, whose affinity masks
cannot express per-core noise pins.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instrument.marker import LoopStrategy
from repro.sim.executor import Simulation
from repro.sim.machine import core2quad_amp
from repro.sim.process import SimProcess, Trace
from repro.tuning.pipeline import tune_program
from repro.tuning.runtime import PhaseTuningRuntime
from repro.workloads.spec import SPEC_BENCHMARKS, TABLE1_REFERENCE, spec_benchmark
from repro.experiments.harness import run_tasks
from repro.experiments.report import format_table

#: Table 1's caption: Loop[45] with threshold 0.2.  On this simulator's
#: IPC scale the calibrated analogue threshold is 0.12.
TABLE1_DELTA = 0.12


@dataclass
class Table1Row:
    """One benchmark's isolated-run measurements."""

    name: str
    switches: float
    runtime_seconds: float
    total_cycles: float
    marks: int

    @property
    def cycles_per_switch(self) -> float:
        """Figure 5's metric (infinity when there are no switches)."""
        if self.switches <= 0:
            return float("inf")
        return self.total_cycles / self.switches


@dataclass
class Table1Result:
    rows: list
    delta: float


def _point(task) -> Table1Row:
    """Harness worker: one benchmark's isolated tuned run."""
    name, delta, min_size, *rest = task
    faults = rest[0] if rest else None
    machine = core2quad_amp()
    benchmark = spec_benchmark(name)
    tuned = tune_program(
        benchmark.program, LoopStrategy(min_size), machine, benchmark.spec
    )
    process = SimProcess(
        1,
        name,
        Trace(tuned.tuned_trace.nodes),
        machine.all_cores_mask,
        isolated_time=1.0,
    )
    simulation = Simulation(
        machine,
        runtime=PhaseTuningRuntime(machine, delta, tie_policy="algorithm"),
        faults=faults,
    )
    simulation.add_process(process, 0.0)
    result = simulation.run(10_000.0)
    if not result.completed:
        raise RuntimeError(f"{name} did not complete in isolation")
    total_cycles = sum(process.stats.cycles_by_type.values())
    return Table1Row(
        name,
        process.stats.switches,
        process.completion,
        total_cycles,
        tuned.mark_count,
    )


def run(
    delta: float = TABLE1_DELTA,
    min_size: int = 45,
    benchmarks=SPEC_BENCHMARKS,
    jobs=None,
    log=None,
    faults=None,
) -> Table1Result:
    """Run every benchmark alone under Loop[min_size]."""
    if faults is None:
        tasks = [(name, delta, min_size) for name in benchmarks]
    else:
        tasks = [(name, delta, min_size, faults) for name in benchmarks]
    rows = run_tasks(
        _point,
        tasks,
        jobs=jobs,
        log=log,
        labels=list(benchmarks),
    )
    return Table1Result(rows, delta)


def format_result(result: Table1Result) -> str:
    rows = []
    for row in result.rows:
        paper_switches, paper_runtime = TABLE1_REFERENCE[row.name]
        rows.append(
            (
                row.name,
                f"{row.switches:.0f}",
                f"{row.runtime_seconds:.2f}",
                f"{row.marks}",
                f"{paper_switches}",
                f"{paper_runtime}",
            )
        )
    return format_table(
        (
            "benchmark",
            "switches",
            "runtime (s)",
            "marks",
            "paper switches",
            "paper runtime (s)",
        ),
        rows,
        title=f"Table 1: switches per benchmark (Loop[45], delta={result.delta})",
    )


if __name__ == "__main__":
    print(format_result(run()))
