"""Parallel fan-out for experiment sweeps.

Every experiment in this package is a sweep: the same deterministic
point function evaluated at many parameter values (δ thresholds, error
rates, technique variants, benchmarks).  The points are independent, so
:func:`run_tasks` fans them out over a :class:`ProcessPoolExecutor` and
returns results in task order — the caller's loop body becomes a
module-level worker function and nothing else changes.

Determinism contract: a point function must be a pure function of its
(picklable) task tuple.  Under that contract parallel results are bit
for bit identical to serial ones, whatever the worker count or
completion order — ``tests/experiments/test_determinism.py`` pins this
for Figure 6 and Table 1.

Worker count resolution (first match wins):

1. the explicit ``jobs=`` argument,
2. the ``REPRO_JOBS`` environment variable,
3. ``os.cpu_count()``.

``REPRO_JOBS=1`` (or ``jobs=1``) runs every task serially in-process —
no pool, no pickling — which is also the debugging fallback.  On Linux
the pool forks, so workers inherit the parent's already-populated
static-pipeline cache (:mod:`repro.tuning.pipeline`) for free.

:func:`derive_seed` gives sweeps stable per-task seeds: hashing the
base seed with the task's identifying parts decorrelates tasks without
coupling any task's seed to how many tasks run or in what order.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence

from repro.errors import ExperimentError

#: Environment variable overriding the default worker count.
JOBS_ENV = "REPRO_JOBS"


def worker_count(jobs: Optional[int] = None) -> int:
    """Resolve the effective worker count (always >= 1).

    Args:
        jobs: explicit override; ``None`` defers to the ``REPRO_JOBS``
            environment variable, then to ``os.cpu_count()``.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ExperimentError(
                    f"{JOBS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def derive_seed(base: int, *parts) -> int:
    """A stable 63-bit seed for one task of a sweep.

    Hashes *base* with the task's identifying *parts* (stringified), so
    each task gets an independent stream that does not depend on task
    count or execution order.
    """
    h = hashlib.sha256()
    h.update(str(int(base)).encode("utf-8"))
    for part in parts:
        h.update(b"\x00")
        h.update(str(part).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") >> 1


def run_tasks(
    fn: Callable,
    tasks: Sequence,
    jobs: Optional[int] = None,
    log: Optional[Callable] = None,
    labels: Optional[Sequence[str]] = None,
) -> list:
    """Evaluate ``fn(task)`` for every task, results in task order.

    Args:
        fn: module-level point function (must be picklable for the
            parallel path; any callable works serially).
        tasks: picklable task tuples/values.
        jobs: worker count; see :func:`worker_count`.  Capped at the
            task count; ``1`` means serial in-process execution.
        log: optional progress callback, called with one line per
            completed task (completion order in the parallel path).
        labels: display names per task for *log*; repr of the task by
            default.

    Raises:
        ExperimentError: a worker died without reporting an exception
            (e.g. killed by the OS).  Exceptions raised *inside* ``fn``
            propagate unchanged.
    """
    tasks = list(tasks)
    total = len(tasks)
    if labels is None:
        labels = [repr(task) for task in tasks]
    elif len(labels) != total:
        raise ExperimentError(
            f"got {len(labels)} labels for {total} tasks"
        )
    if total == 0:
        return []

    jobs = min(worker_count(jobs), total)
    if jobs == 1:
        results = []
        for index, task in enumerate(tasks):
            results.append(fn(task))
            if log is not None:
                log(f"[{index + 1}/{total}] {labels[index]}")
        return results

    results = [None] * total
    done = 0
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        # Submit in chunks of one pool-width so a long tail of tasks
        # does not pile up queued pickles, then top the window up as
        # futures complete.
        index_of = {}
        pending = set()
        next_task = 0

        def submit_up_to(limit: int) -> None:
            nonlocal next_task
            while next_task < total and len(pending) < limit:
                future = pool.submit(fn, tasks[next_task])
                index_of[future] = next_task
                pending.add(future)
                next_task += 1

        submit_up_to(2 * jobs)
        while pending:
            completed, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in completed:
                index = index_of.pop(future)
                try:
                    results[index] = future.result()
                except BrokenProcessPool as exc:  # pragma: no cover
                    raise ExperimentError(
                        f"worker running task {labels[index]} died: {exc}"
                    ) from exc
                done += 1
                if log is not None:
                    log(f"[{done}/{total}] {labels[index]}")
            submit_up_to(2 * jobs)
    return results
