"""Parallel fan-out for experiment sweeps.

Every experiment in this package is a sweep: the same deterministic
point function evaluated at many parameter values (δ thresholds, error
rates, technique variants, benchmarks).  The points are independent, so
:func:`run_tasks` fans them out over a :class:`ProcessPoolExecutor` and
returns results in task order — the caller's loop body becomes a
module-level worker function and nothing else changes.

Determinism contract: a point function must be a pure function of its
(picklable) task tuple.  Under that contract parallel results are bit
for bit identical to serial ones, whatever the worker count or
completion order — ``tests/experiments/test_determinism.py`` pins this
for Figure 6 and Table 1.

Worker count resolution (first match wins):

1. the explicit ``jobs=`` argument,
2. the ``REPRO_JOBS`` environment variable,
3. ``os.cpu_count()``.

``REPRO_JOBS=1`` (or ``jobs=1``) runs every task serially in-process —
no pool, no pickling — which is also the debugging fallback.  On Linux
the pool forks, so workers inherit the parent's already-populated
static-pipeline cache (:mod:`repro.tuning.pipeline`) for free; under
``spawn``/``forkserver`` (``start_method=``) the same entries are
shipped to each worker through a pool initializer instead, so every
start method sees a warm cache.

:func:`derive_seed` gives sweeps stable per-task seeds: hashing the
base seed with the task's identifying parts decorrelates tasks without
coupling any task's seed to how many tasks run or in what order.
"""

from __future__ import annotations

import functools
import hashlib
import multiprocessing
import os
import shutil
import signal
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence

from repro.errors import ExperimentError, TaskTimeoutError
from repro.telemetry.context import current_recorder, set_recorder
from repro.telemetry.recorder import TraceRecorder

#: Placeholder for a task slot whose result has not been produced yet
#: (distinguishes "not run" from a legitimate ``None`` result).
_UNSET = object()

#: Environment variable overriding the default worker count.
JOBS_ENV = "REPRO_JOBS"


def worker_count(jobs: Optional[int] = None) -> int:
    """Resolve the effective worker count (always >= 1).

    Args:
        jobs: explicit override; ``None`` defers to the ``REPRO_JOBS``
            environment variable, then to ``os.cpu_count()``.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ExperimentError(
                    f"{JOBS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def derive_seed(base: int, *parts) -> int:
    """A stable 63-bit seed for one task of a sweep.

    Hashes *base* with the task's identifying *parts* (stringified), so
    each task gets an independent stream that does not depend on task
    count or execution order.
    """
    h = hashlib.sha256()
    h.update(str(int(base)).encode("utf-8"))
    for part in parts:
        h.update(b"\x00")
        h.update(str(part).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") >> 1


def run_tasks(
    fn: Callable,
    tasks: Sequence,
    jobs: Optional[int] = None,
    log: Optional[Callable] = None,
    labels: Optional[Sequence[str]] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    start_method: Optional[str] = None,
) -> list:
    """Evaluate ``fn(task)`` for every task, results in task order.

    Args:
        fn: module-level point function (must be picklable for the
            parallel path; any callable works serially).
        tasks: picklable task tuples/values.
        jobs: worker count; see :func:`worker_count`.  Capped at the
            task count; ``1`` means serial in-process execution.
        log: optional progress callback, called with one line per
            completed task (completion order in the parallel path).
        labels: display names per task for *log*; repr of the task by
            default.
        timeout: per-task wall-clock budget in seconds, measured from
            submission (give queueing headroom: a task may briefly wait
            behind a sibling).  A task over budget is abandoned — and
            its worker, identified through a per-task pid file, is
            SIGKILLed so the slot is reclaimed — then resubmitted to a
            rebuilt pool while *retries* remain.  Only enforced on the
            pool path — serial execution cannot interrupt a call.
        retries: resubmissions allowed per task after a timeout.
        start_method: multiprocessing start method for the pool
            (``fork`` / ``spawn`` / ``forkserver``); the platform
            default when omitted.  Non-fork workers do not inherit the
            parent's warm pipeline cache through memory, so its entries
            are shipped to each worker via a pool initializer instead.

    Raises:
        TaskTimeoutError: a task exceeded *timeout* on its last allowed
            attempt.
        ExperimentError: invalid arguments.  Exceptions raised *inside*
            ``fn`` propagate unchanged.  If the worker pool itself dies
            (a worker killed by the OS), the surviving tasks are rerun
            serially in-process instead of raising.
    """
    tasks = list(tasks)
    total = len(tasks)
    if labels is None:
        labels = [repr(task) for task in tasks]
    elif len(labels) != total:
        raise ExperimentError(
            f"got {len(labels)} labels for {total} tasks"
        )
    if timeout is not None and timeout <= 0:
        raise ExperimentError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    if total == 0:
        return []

    jobs = min(worker_count(jobs), total)
    rec = current_recorder()
    rec = rec if rec.enabled else None
    if jobs == 1:
        results = []
        task_run = None
        for index, task in enumerate(tasks):
            started = time.perf_counter()
            results.append(fn(task))
            if rec is not None:
                elapsed = time.perf_counter() - started
                if rec.wants("task"):
                    if task_run is None:
                        task_run = rec.begin_run("harness", clock="wall")
                    rec.span(
                        "task", labels[index], started, elapsed, run=task_run
                    )
                rec.incr("harness.tasks")
                rec.incr("harness.task_seconds", elapsed)
            if log is not None:
                log(f"[{index + 1}/{total}] {labels[index]}")
        return results

    if rec is not None:
        # Each worker records into its own fresh recorder and ships the
        # result home pickled (the pipeline cache's export_entries
        # pattern); shipping the *parent's* recorder out would duplicate
        # every event already collected here.
        fn = functools.partial(_telemetry_task, fn, tuple(rec.categories))
    results = [_UNSET] * total
    try:
        _run_pool(
            fn, tasks, labels, jobs, log, timeout, retries, results,
            start_method,
        )
    except BrokenProcessPool:
        # A worker died without reporting an exception (OOM-killed,
        # segfaulted C extension, ...).  The pool is unusable, but the
        # sweep need not be lost: rerun whatever is incomplete serially
        # in-process, where a real traceback surfaces if fn itself is
        # the culprit.
        incomplete = [i for i in range(total) if results[i] is _UNSET]
        if log is not None:
            log(
                f"worker pool died; rerunning {len(incomplete)} "
                f"unfinished task(s) serially"
            )
        for count, index in enumerate(incomplete):
            results[index] = fn(tasks[index])
            if log is not None:
                log(f"[serial {count + 1}/{len(incomplete)}] {labels[index]}")
    if rec is not None:
        # Absorb worker traces in task order so re-based run ids are
        # deterministic whatever the completion order was.
        for index, wrapped in enumerate(results):
            value, blob = wrapped
            rec.absorb_blob(blob)
            results[index] = value
    return results


def _telemetry_task(fn, categories, task):
    """Worker shim for traced sweeps: run the task under a fresh
    recorder and return ``(result, exported trace blob)``.

    The previous recorder is restored afterwards, so the in-parent
    rerun after a broken pool records into its own recorder too instead
    of scribbling on (or double-counting) the parent's.
    """
    recorder = TraceRecorder(categories=frozenset(categories))
    previous = set_recorder(recorder)
    started = time.perf_counter()
    try:
        value = fn(task)
    finally:
        elapsed = time.perf_counter() - started
        if recorder.wants("task"):
            run = recorder.begin_run(f"worker:{os.getpid()}", clock="wall")
            recorder.span(
                "task",
                getattr(fn, "__name__", "task"),
                started,
                elapsed,
                run=run,
            )
        recorder.incr("harness.tasks")
        recorder.incr("harness.task_seconds", elapsed)
        set_recorder(previous)
    return value, recorder.export_blob()


def _warm_spawned_worker(blob: bytes) -> None:
    """Pool initializer for non-fork start methods: install the
    parent's pipeline-cache entries (fork inherits them for free)."""
    if blob:
        from repro.tuning.pipeline import default_cache

        default_cache().install_entries(blob)


def _traced_call(payload: tuple):
    """Worker shim recording which pid runs which task, so a hung task's
    worker can be SIGKILLed from the parent."""
    fn, task, pid_path = payload
    try:
        with open(pid_path, "w") as handle:
            handle.write(str(os.getpid()))
    except OSError:
        pass
    try:
        return fn(task)
    finally:
        try:
            os.unlink(pid_path)
        except OSError:
            pass


class _StragglersKilled(Exception):
    """Internal: a hung worker was SIGKILLed; the pool is gone and the
    incomplete tasks need a fresh one."""


def _kill_straggler(pool, pid_dir: Optional[str], index: int) -> bool:
    """SIGKILL the worker recorded for task *index*, if it is still one
    of *pool*'s own processes (guards against pid reuse)."""
    if pid_dir is None:
        return False
    pid_path = os.path.join(pid_dir, f"{index}.pid")
    try:
        with open(pid_path) as handle:
            pid = int(handle.read().strip() or "0")
    except (OSError, ValueError):
        return False
    processes = getattr(pool, "_processes", None) or {}
    if pid not in processes:
        return False
    try:
        os.kill(pid, signal.SIGKILL)
    except OSError:
        return False
    return True


def _run_pool(
    fn: Callable,
    tasks: list,
    labels: Sequence[str],
    jobs: int,
    log: Optional[Callable],
    timeout: Optional[float],
    retries: int,
    results: list,
    start_method: Optional[str] = None,
) -> None:
    """Pool path of :func:`run_tasks`, filling *results* in place.

    Runs the tasks in pool *generations*: when a straggler has to be
    SIGKILLed (its slot cannot otherwise be reclaimed — a worker with a
    task is unkillable through the executor API), the broken pool is
    dropped and the still-incomplete tasks resubmitted to a fresh one,
    with per-task attempt counts carried across generations.
    """
    total = len(tasks)
    context = multiprocessing.get_context(start_method)
    initializer = None
    initargs: tuple = ()
    if context.get_start_method() != "fork":
        from repro.tuning.pipeline import default_cache

        initializer = _warm_spawned_worker
        initargs = (default_cache().export_entries(),)
    attempts = [0] * total
    progress = [0]
    pid_dir = (
        tempfile.mkdtemp(prefix="repro-harness-")
        if timeout is not None
        else None
    )
    try:
        while True:
            todo = [i for i in range(total) if results[i] is _UNSET]
            if not todo:
                return
            pool = ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=context,
                initializer=initializer,
                initargs=initargs,
            )
            try:
                _pool_generation(
                    pool, fn, tasks, labels, jobs, log, timeout, retries,
                    results, attempts, todo, pid_dir, progress,
                )
                return
            except _StragglersKilled:
                if log is not None:
                    remaining = sum(
                        1 for i in range(total) if results[i] is _UNSET
                    )
                    log(
                        f"rebuilding worker pool for {remaining} "
                        f"unfinished task(s)"
                    )
    finally:
        if pid_dir is not None:
            shutil.rmtree(pid_dir, ignore_errors=True)


def _pool_generation(
    pool,
    fn: Callable,
    tasks: list,
    labels: Sequence[str],
    jobs: int,
    log: Optional[Callable],
    timeout: Optional[float],
    retries: int,
    results: list,
    attempts: list,
    todo: list,
    pid_dir: Optional[str],
    progress: list,
) -> None:
    """Run the *todo* task indices through *pool*, filling *results*."""
    total = len(tasks)
    index_of: dict = {}
    deadline_of: dict = {}
    pending: set = set()
    next_slot = 0

    def submit(index: int) -> None:
        if pid_dir is not None:
            pid_path = os.path.join(pid_dir, f"{index}.pid")
            try:
                os.unlink(pid_path)
            except OSError:
                pass
            future = pool.submit(_traced_call, (fn, tasks[index], pid_path))
        else:
            future = pool.submit(fn, tasks[index])
        index_of[future] = index
        if timeout is not None:
            deadline_of[future] = time.monotonic() + timeout
        pending.add(future)

    def submit_up_to(limit: int) -> None:
        # Submit in chunks of one pool-width so a long tail of tasks
        # does not pile up queued pickles, then top the window up as
        # futures complete.
        nonlocal next_slot
        while next_slot < len(todo) and len(pending) < limit:
            submit(todo[next_slot])
            next_slot += 1

    try:
        submit_up_to(2 * jobs)
        while pending:
            wait_timeout = None
            if timeout is not None:
                nearest = min(deadline_of[f] for f in pending)
                wait_timeout = max(0.0, nearest - time.monotonic())
            completed, pending = wait(
                pending, timeout=wait_timeout, return_when=FIRST_COMPLETED
            )
            for future in completed:
                index = index_of.pop(future)
                deadline_of.pop(future, None)
                results[index] = future.result()
                progress[0] += 1
                if log is not None:
                    log(f"[{progress[0]}/{total}] {labels[index]}")
            if timeout is not None:
                now = time.monotonic()
                expired = [f for f in pending if deadline_of[f] <= now]
                for future in expired:
                    if future.done():
                        continue  # finished just now; collected next loop
                    cancelled = future.cancel()
                    pending.discard(future)
                    index = index_of.pop(future)
                    deadline_of.pop(future)
                    attempts[index] += 1
                    if attempts[index] > retries:
                        raise TaskTimeoutError(
                            f"task {labels[index]} exceeded {timeout:g}s "
                            f"(attempt {attempts[index]}, retries={retries})"
                        )
                    if log is not None:
                        log(
                            f"task {labels[index]} exceeded {timeout:g}s; "
                            f"retry {attempts[index]}/{retries}"
                        )
                    if cancelled:
                        # Never started; resubmit into this same pool.
                        submit(index)
                        continue
                    # A running straggler holds its worker hostage:
                    # SIGKILL the recorded pid to reclaim the slot, then
                    # rebuild the (now broken) pool for whatever is
                    # incomplete.  Without a recorded pid (start-up
                    # race), fall back to abandoning the future — the
                    # straggler burns out on its own.
                    if _kill_straggler(pool, pid_dir, index):
                        if log is not None:
                            log(
                                f"killed straggling worker of task "
                                f"{labels[index]}"
                            )
                        raise _StragglersKilled()
                    submit(index)
            submit_up_to(2 * jobs)
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=False)
