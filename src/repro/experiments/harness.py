"""Parallel fan-out for experiment sweeps.

Every experiment in this package is a sweep: the same deterministic
point function evaluated at many parameter values (δ thresholds, error
rates, technique variants, benchmarks).  The points are independent, so
:func:`run_tasks` fans them out over a :class:`ProcessPoolExecutor` and
returns results in task order — the caller's loop body becomes a
module-level worker function and nothing else changes.

Determinism contract: a point function must be a pure function of its
(picklable) task tuple.  Under that contract parallel results are bit
for bit identical to serial ones, whatever the worker count or
completion order — ``tests/experiments/test_determinism.py`` pins this
for Figure 6 and Table 1.

Worker count resolution (first match wins):

1. the explicit ``jobs=`` argument,
2. the ``REPRO_JOBS`` environment variable,
3. ``os.cpu_count()``.

``REPRO_JOBS=1`` (or ``jobs=1``) runs every task serially in-process —
no pool, no pickling — which is also the debugging fallback.  On Linux
the pool forks, so workers inherit the parent's already-populated
static-pipeline cache (:mod:`repro.tuning.pipeline`) for free; under
``spawn``/``forkserver`` (``start_method=``) the same entries are
shipped to each worker through a pool initializer instead, so every
start method sees a warm cache.

:func:`derive_seed` gives sweeps stable per-task seeds: hashing the
base seed with the task's identifying parts decorrelates tasks without
coupling any task's seed to how many tasks run or in what order.

Durable sweeps
==============

Pass ``journal=`` (a :class:`~repro.experiments.journal.RunJournal` or
a directory path) — or call :func:`set_run_root` once to journal every
subsequent sweep under numbered subdirectories — and ``run_tasks``
becomes crash-safe: each completed task is journaled with a content
digest, a rerun (``python -m repro.experiments resume RUNDIR``) skips
journaled results and recomputes only what never finished, each task
runs with :data:`~repro.sim.checkpoint.TASK_CHECKPOINT_DIR_ENV`
pointing at its own checkpoint directory (checkpoint-aware point
functions then resume mid-simulation), pool deaths are blamed on the
tasks that were running via the pid files the straggler-reclamation
path already maintains, and a task blamed for
:data:`~repro.experiments.journal.MAX_TASK_CRASHES` pool deaths is
demoted to serial-with-checkpoints in the parent instead of being
allowed to take another pool down.  Because point functions are pure
and results are replayed in task order, a resumed sweep returns bit-
identical results to an uninterrupted one.
"""

from __future__ import annotations

import functools
import hashlib
import multiprocessing
import os
import shutil
import signal
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import (
    BrokerError,
    BrokerUnavailableError,
    ExperimentError,
    TaskTimeoutError,
)
from repro.experiments.broker import BROKER_DIR_ENV, BROKER_URL_ENV
from repro.experiments.journal import MAX_TASK_CRASHES, RunJournal
from repro.sim.checkpoint import TASK_CHECKPOINT_DIR_ENV, task_checkpoint_dir
from repro.taxonomy import demotion_reason, pool_death_reason
from repro.telemetry.context import current_recorder, set_recorder
from repro.telemetry.recorder import TraceRecorder

#: Placeholder for a task slot whose result has not been produced yet
#: (distinguishes "not run" from a legitimate ``None`` result).
_UNSET = object()

#: Environment variable overriding the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Environment variables giving the per-task retry knobs defaults
#: (CLI ``--task-timeout`` / ``--task-retries`` write them through, so
#: pool workers and resumed runs see the same budgets).
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"

#: Local worker count for the broker backend.  Resolved on the host
#: that runs the workers (``REPRO_JOBS``/``--jobs`` otherwise), never
#: recorded in the queue — a worker host honors its own core budget,
#: not the enqueuing host's.  ``0`` means "submit and wait": enqueue
#: the sweep and block until workers elsewhere complete it.
BROKER_WORKERS_ENV = "REPRO_BROKER_WORKERS"

#: Run root installed by :func:`set_run_root`; when set, every
#: ``run_tasks`` call without an explicit ``journal=`` gets one under
#: ``<root>/sweep-NNNN``.
_run_root: Optional[Path] = None
_sweep_seq = 0


def set_run_root(path) -> Optional[Path]:
    """Journal every subsequent :func:`run_tasks` sweep under *path*.

    Sweeps are numbered ``sweep-0000``, ``sweep-0001``, ... in call
    order; experiments run their sweeps in a deterministic order, so a
    resumed invocation assigns every sweep the same directory it had in
    the interrupted one.  Pass ``None`` to turn auto-journaling off.
    """
    global _run_root, _sweep_seq
    _run_root = Path(path) if path is not None else None
    _sweep_seq = 0
    return _run_root


def _auto_journal() -> Optional[RunJournal]:
    global _sweep_seq
    if _run_root is None:
        return None
    journal = RunJournal(_run_root / f"sweep-{_sweep_seq:04d}")
    _sweep_seq += 1
    return journal


def worker_count(jobs: Optional[int] = None) -> int:
    """Resolve the effective worker count (always >= 1).

    Args:
        jobs: explicit override; ``None`` defers to the ``REPRO_JOBS``
            environment variable, then to ``os.cpu_count()``.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ExperimentError(
                    f"{JOBS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def _env_number(name: str, cast, fallback):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return cast(raw)
    except ValueError:
        raise ExperimentError(
            f"{name} must be a number, got {raw!r}"
        ) from None


def resolve_timeout(timeout: Optional[float]) -> Optional[float]:
    """The effective per-task timeout: the explicit argument, else the
    ``REPRO_TASK_TIMEOUT`` environment variable, else no timeout."""
    if timeout is not None:
        return timeout
    value = _env_number(TASK_TIMEOUT_ENV, float, None)
    return value if value and value > 0 else None


def resolve_retries(retries: Optional[int]) -> int:
    """The effective per-task retry budget: the explicit argument, else
    the ``REPRO_TASK_RETRIES`` environment variable, else 0."""
    if retries is not None:
        return retries
    return _env_number(TASK_RETRIES_ENV, int, 0)


def derive_seed(base: int, *parts) -> int:
    """A stable 63-bit seed for one task of a sweep.

    Hashes *base* with the task's identifying *parts* (stringified), so
    each task gets an independent stream that does not depend on task
    count or execution order.
    """
    h = hashlib.sha256()
    h.update(str(int(base)).encode("utf-8"))
    for part in parts:
        h.update(b"\x00")
        h.update(str(part).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") >> 1


def run_tasks(
    fn: Callable,
    tasks: Sequence,
    jobs: Optional[int] = None,
    log: Optional[Callable] = None,
    labels: Optional[Sequence[str]] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    start_method: Optional[str] = None,
    journal=None,
    backend: Optional[str] = None,
    broker_dir=None,
) -> list:
    """Evaluate ``fn(task)`` for every task, results in task order.

    Args:
        fn: module-level point function (must be picklable for the
            parallel path; any callable works serially).
        tasks: picklable task tuples/values.
        jobs: worker count; see :func:`worker_count`.  Capped at the
            task count; ``1`` means serial in-process execution.
        log: optional progress callback, called with one line per
            completed task (completion order in the parallel path).
        labels: display names per task for *log*; repr of the task by
            default.
        timeout: per-task wall-clock budget in seconds, measured from
            submission (give queueing headroom: a task may briefly wait
            behind a sibling).  A task over budget is abandoned — and
            its worker, identified through a per-task pid file, is
            SIGKILLed so the slot is reclaimed — then resubmitted to a
            rebuilt pool while *retries* remain.  Defaults to the
            ``REPRO_TASK_TIMEOUT`` environment variable (no timeout
            when unset).  Not enforced on the serial path, which
            cannot interrupt a call; broker workers enforce it by
            letting their lease lapse (and, as subprocesses, killing
            themselves) so the task is re-offered.
        retries: resubmissions allowed per task after a timeout;
            defaults to the ``REPRO_TASK_RETRIES`` environment
            variable, else 0.  The pool path resubmits immediately;
            the broker backend re-offers with exponential backoff
            (``REPRO_BACKOFF_BASE`` seconds, doubling per attempt).
        start_method: multiprocessing start method for the pool
            (``fork`` / ``spawn`` / ``forkserver``); the platform
            default when omitted.  Non-fork workers do not inherit the
            parent's warm pipeline cache through memory, so its entries
            are shipped to each worker via a pool initializer instead.
        journal: optional :class:`~repro.experiments.journal.RunJournal`
            (or directory path) making the sweep durable: completed
            tasks are journaled and skipped on rerun, tasks checkpoint
            into per-task directories, pool deaths are blamed on the
            tasks that were running, and repeat offenders are demoted
            to serial-in-parent execution.  Defaults to the
            :func:`set_run_root` auto-journal, or no journaling.
        backend: ``"pool"`` (the single-host ProcessPoolExecutor,
            default) or ``"broker"`` (route the sweep through the
            claim/lease queue of :mod:`repro.experiments.broker` —
            multi-worker, multi-host, crash-safe).  ``None`` selects
            the broker automatically when *broker_dir* or the
            ``REPRO_BROKER_DIR`` environment variable names a broker
            directory.  If that directory cannot be opened the sweep
            degrades gracefully to the pool backend.
        broker_dir: the broker directory for ``backend="broker"``;
            defaults to ``REPRO_BROKER_DIR``.

    Raises:
        TaskTimeoutError: a task exceeded *timeout* on its last allowed
            attempt.
        ExperimentError: invalid arguments.  Exceptions raised *inside*
            ``fn`` propagate unchanged.  If the worker pool itself dies
            (a worker killed by the OS), the surviving tasks are rerun
            serially in-process instead of raising.
    """
    tasks = list(tasks)
    total = len(tasks)
    if labels is None:
        labels = [repr(task) for task in tasks]
    elif len(labels) != total:
        raise ExperimentError(
            f"got {len(labels)} labels for {total} tasks"
        )
    timeout = resolve_timeout(timeout)
    retries = resolve_retries(retries)
    if timeout is not None and timeout <= 0:
        raise ExperimentError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    if backend is None:
        has_broker = (
            broker_dir
            or os.environ.get(BROKER_URL_ENV, "").strip()
            or os.environ.get(BROKER_DIR_ENV, "").strip()
        )
        backend = "broker" if has_broker else "pool"
    elif backend not in ("pool", "broker"):
        raise ExperimentError(
            f"backend must be 'pool' or 'broker', got {backend!r}"
        )
    if journal is None:
        # Resolve the auto-journal before the empty-sweep return so the
        # sweep numbering consumed from set_run_root is identical in
        # clean and resumed invocations whatever the task counts.
        journal = _auto_journal()
    elif not isinstance(journal, RunJournal):
        journal = RunJournal(journal)
    if total == 0:
        return []

    # Warm-fetch published pipeline entries from the shared store (when
    # one is configured) before any worker starts: fork workers inherit
    # them through memory, spawn workers receive them via the pool
    # initializer, and the sweep skips recomputing what the fleet
    # already built.  A dead store degrades to fetching nothing.
    from repro.tuning.pipeline import default_cache

    default_cache().warm_from_store()

    rec = current_recorder()
    rec = rec if rec.enabled else None
    if backend == "broker":
        # *broker_dir* may be a directory or an http(s):// URL — the
        # broker's connect() factory picks the transport either way.
        resolved_dir = (
            broker_dir
            or os.environ.get(BROKER_URL_ENV, "").strip()
            or os.environ.get(BROKER_DIR_ENV)
        )
        if not resolved_dir:
            raise ExperimentError(
                "backend='broker' requires broker_dir= or the "
                f"{BROKER_URL_ENV}/{BROKER_DIR_ENV} environment variable"
            )
        try:
            return _run_broker(
                fn, tasks, labels, jobs, log, timeout, retries, rec,
                resolved_dir, start_method,
            )
        except BrokerError as exc:
            # Graceful degradation: an unusable broker directory (read-
            # only filesystem, missing mount, bad sqlite build) must
            # not take the sweep down — fall through to the single-host
            # pool, which needs nothing but this machine.
            if log is not None:
                log(f"broker unavailable ({exc}); using single-host pool")

    jobs = min(worker_count(jobs), total)
    if jobs == 1:
        return _run_serial(fn, tasks, labels, log, rec, journal)

    traced = rec is not None
    if traced:
        # Each worker records into its own fresh recorder and ships the
        # result home pickled (the pipeline cache's export_entries
        # pattern); shipping the *parent's* recorder out would duplicate
        # every event already collected here.
        fn = functools.partial(_telemetry_task, fn, tuple(rec.categories))
    results = [_UNSET] * total
    if journal is not None:
        done = journal.completed_results(traced=traced)
        for index, value in done.items():
            if 0 <= index < total:
                results[index] = value
        prefilled = sum(1 for value in results if value is not _UNSET)
        if log is not None and prefilled:
            log(f"journal: {prefilled} of {total} task(s) already complete")
    try:
        _run_pool(
            fn, tasks, labels, jobs, log, timeout, retries, results,
            start_method, journal, traced,
        )
    except BrokenProcessPool:
        # A worker died without reporting an exception (OOM-killed,
        # segfaulted C extension, ...).  The pool is unusable, but the
        # sweep need not be lost: rerun whatever is incomplete serially
        # in-process, where a real traceback surfaces if fn itself is
        # the culprit.  Journaled results (including any collected from
        # the dying pool) are kept, not recomputed.
        incomplete = [i for i in range(total) if results[i] is _UNSET]
        if log is not None:
            log(
                f"worker pool died; rerunning {len(incomplete)} "
                f"unfinished task(s) serially"
            )
        for count, index in enumerate(incomplete):
            if journal is not None:
                value = _call_with_checkpoint_dir(
                    fn, tasks[index], journal.checkpoint_dir(index)
                )
                journal.record(index, labels[index], value, traced=traced)
            else:
                value = fn(tasks[index])
            results[index] = value
            if log is not None:
                log(f"[serial {count + 1}/{len(incomplete)}] {labels[index]}")
    if traced:
        # Absorb worker traces in task order so re-based run ids are
        # deterministic whatever the completion order was.
        for index, wrapped in enumerate(results):
            value, blob = wrapped
            rec.absorb_blob(blob)
            results[index] = value
    return results


def _run_serial(
    fn: Callable,
    tasks: list,
    labels: Sequence[str],
    log: Optional[Callable],
    rec,
    journal: Optional[RunJournal],
) -> list:
    """``jobs=1`` path of :func:`run_tasks`: in-process, in task order.

    With a journal, completed tasks are skipped and fresh ones recorded
    (bare values — no telemetry blobs, the parent recorder is live) and
    each task runs with its checkpoint directory exported.
    """
    total = len(tasks)
    done = journal.completed_results() if journal is not None else {}
    results = []
    task_run = None
    for index, task in enumerate(tasks):
        if index in done:
            results.append(done[index])
            if log is not None:
                log(f"[{index + 1}/{total}] {labels[index]} (journaled)")
            continue
        started = time.perf_counter()
        if journal is not None:
            value = _call_with_checkpoint_dir(
                fn, task, journal.checkpoint_dir(index)
            )
            journal.record(index, labels[index], value)
        else:
            value = fn(task)
        results.append(value)
        if rec is not None:
            elapsed = time.perf_counter() - started
            if rec.wants("task"):
                if task_run is None:
                    task_run = rec.begin_run("harness", clock="wall")
                rec.span(
                    "task", labels[index], started, elapsed, run=task_run
                )
            rec.incr("harness.tasks")
            rec.incr("harness.task_seconds", elapsed)
        if log is not None:
            log(f"[{index + 1}/{total}] {labels[index]}")
    return results


def _call_with_checkpoint_dir(fn: Callable, task, ckpt_dir, ref=None) -> object:
    """Run ``fn(task)`` with :data:`TASK_CHECKPOINT_DIR_ENV` pointing at
    the task's checkpoint directory, so checkpoint-aware point functions
    (``runner.run_technique_point``) save there — and resume from there
    when the directory already holds a valid snapshot.  *ref* names the
    snapshots in the shared artifact store (broker content key)."""
    with task_checkpoint_dir(ckpt_dir, ref=ref):
        return fn(task)


def _telemetry_task(fn, categories, task):
    """Worker shim for traced sweeps: run the task under a fresh
    recorder and return ``(result, exported trace blob)``.

    The previous recorder is restored afterwards, so the in-parent
    rerun after a broken pool records into its own recorder too instead
    of scribbling on (or double-counting) the parent's.
    """
    recorder = TraceRecorder(categories=frozenset(categories))
    previous = set_recorder(recorder)
    started = time.perf_counter()
    try:
        value = fn(task)
    finally:
        elapsed = time.perf_counter() - started
        if recorder.wants("task"):
            run = recorder.begin_run(f"worker:{os.getpid()}", clock="wall")
            recorder.span(
                "task",
                getattr(fn, "__name__", "task"),
                started,
                elapsed,
                run=run,
            )
        recorder.incr("harness.tasks")
        recorder.incr("harness.task_seconds", elapsed)
        set_recorder(previous)
    return value, recorder.export_blob()


def _broker_worker_entry(
    directory, lease_ttl, max_attempts, task_timeout
) -> None:
    """Subprocess entry for one local broker worker.

    Runs the claim loop until the queue drains.  ``timeout_kills=True``:
    a task over its wall budget SIGKILLs this worker, the lease lapses,
    and the task is re-offered (with backoff) until quarantined —
    the broker analogue of the pool path's straggler SIGKILL.
    """
    from repro.experiments.broker import worker_loop

    worker_loop(
        directory,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
        task_timeout=task_timeout,
        timeout_kills=True,
        drain=True,
    )


def _broker_local_workers(jobs: Optional[int], total: int) -> int:
    """How many local broker workers this host should run.

    ``REPRO_BROKER_WORKERS`` wins (0 = submit-and-wait for workers on
    other hosts); otherwise the usual :func:`worker_count` resolution —
    of *this* host's environment, never anything recorded in the queue.
    """
    override = _env_number(BROKER_WORKERS_ENV, int, None)
    if override is not None:
        return max(0, min(override, total))
    return min(worker_count(jobs), total)


def _run_broker(
    fn: Callable,
    tasks: list,
    labels: Sequence[str],
    jobs: Optional[int],
    log: Optional[Callable],
    timeout: Optional[float],
    retries: int,
    rec,
    broker_dir,
    start_method: Optional[str] = None,
) -> list:
    """Broker backend of :func:`run_tasks`: enqueue, drive workers,
    replay in task order.

    The queue is the durable layer here (results are recorded
    idempotently by content key), so the sweep journal is not used.
    Tasks that end up quarantined — or whose results cannot be
    verified — are rescued serially in-parent as the last resort, the
    same demotion the journal applies to pool-killing tasks; a genuine
    poison task then raises its real traceback in the caller.
    """
    from repro.experiments.broker import (
        DEFAULT_MAX_ATTEMPTS,
        Lease,
        connect,
        task_key,
    )
    from repro.experiments.results_db import ResultsDB

    traced = rec is not None
    run_fn = fn
    if traced:
        # sorted() so the partial's pickle — and with it every task's
        # content key and the sweep id — is deterministic across
        # processes and invocations.
        run_fn = functools.partial(
            _telemetry_task, fn, tuple(sorted(rec.categories))
        )
    # Worker deaths must not instantly quarantine: grant the broker at
    # least its own default budget even when the caller asked for zero
    # timeout-retries.
    max_attempts = max(retries + 1, DEFAULT_MAX_ATTEMPTS)
    broker = connect(broker_dir, max_attempts=max_attempts)
    total = len(tasks)
    sweep = broker.enqueue(run_fn, tasks, labels=labels, traced=traced)
    fn_name = (
        f"{getattr(fn, '__module__', '?')}."
        f"{getattr(fn, '__qualname__', repr(fn))}"
    )
    try:
        if broker.directory is None:
            # Networked broker: the results DB lives next to the queue
            # on the server, so the session is recorded over the wire.
            broker.record_session(sweep, fn_name, total)
        else:
            ResultsDB.for_broker(broker.directory).record_session(
                sweep, fn_name, total
            )
    except BrokerError:
        pass  # session log is advisory; the queue itself is intact
    done = broker.replay(sweep, traced=traced)
    if log is not None and done:
        log(f"broker: {len(done)} of {total} task(s) already complete")
    if len(done) < total:
        _drive_broker_sweep(
            broker, sweep, jobs, log, timeout, total - len(done),
            start_method,
        )
        done = broker.replay(sweep, traced=traced)
    missing = [index for index in range(total) if index not in done]
    if missing:
        quarantined = {
            idx: reason
            for _, idx, _, _, reason in broker.quarantined(sweep)
        }
        for count, index in enumerate(missing):
            if log is not None:
                why = quarantined.get(index, "result missing")
                log(
                    f"[rescue {count + 1}/{len(missing)}] {labels[index]} "
                    f"serially in parent ({why})"
                )
            key = task_key(run_fn, tasks[index])
            value = _call_with_checkpoint_dir(
                run_fn, tasks[index], broker.checkpoint_dir(key), ref=key
            )
            try:
                broker.complete(
                    Lease(sweep, index, key, labels[index], b"", 0, 0.0,
                          "parent-rescue"),
                    value,
                    traced=traced,
                )
            except BrokerUnavailableError as exc:
                # Recording the rescue is best-effort: the value is in
                # hand and the sweep must not fail because the broker
                # went away after the compute finished.
                if log is not None:
                    log(f"broker: could not record rescue ({exc})")
            done[index] = value
    results = [done[index] for index in range(total)]
    if traced:
        for index, wrapped in enumerate(results):
            value, blob = wrapped
            rec.absorb_blob(blob)
            results[index] = value
    return results


def _drive_broker_sweep(
    broker,
    sweep: str,
    jobs: Optional[int],
    log: Optional[Callable],
    timeout: Optional[float],
    remaining: int,
    start_method: Optional[str] = None,
    poll_interval: float = 0.2,
) -> None:
    """Run local workers (and/or wait for remote ones) until *sweep*
    settles — every task done or quarantined.

    Dead local workers are respawned while runnable work remains, up to
    a budget bounded by the per-task attempt limits (so a worker-killing
    task ends in quarantine, not an infinite respawn loop).

    A networked broker may drop out mid-sweep: the supervision loops
    here poll through outages for the down-grace window
    (``REPRO_BROKER_GRACE``) and only then let
    :class:`BrokerUnavailableError` propagate — which ``run_tasks``
    turns into the single-host pool fallback.
    """
    from repro.experiments.broker import resolve_down_grace, worker_loop

    grace = resolve_down_grace(None)
    down_since = None

    def outage(exc) -> bool:
        """Track one outage tick; ``True`` while inside the grace
        window, raises the original error once it is spent."""
        nonlocal down_since
        now = time.monotonic()
        if down_since is None:
            down_since = now
            if log is not None:
                log(f"broker: {exc}; waiting up to {grace:.0f}s")
        if now - down_since > grace:
            raise exc
        return True

    local = _broker_local_workers(jobs, remaining)
    if local == 0:
        if log is not None:
            log(f"broker: waiting for remote workers to finish {sweep}")
        while True:
            try:
                if broker.settled(sweep):
                    return
                broker.reclaim_expired()
            except BrokerUnavailableError as exc:
                outage(exc)
            else:
                down_since = None
            time.sleep(poll_interval)
    if local == 1:
        # In-process: deterministic, no subprocess to supervise.  A
        # timeout here cannot kill the worker (it is us); the lease
        # lapsing still re-offers the task to any other worker.
        worker_loop(
            broker.target,
            lease_ttl=broker.lease_ttl,
            max_attempts=broker.max_attempts,
            task_timeout=timeout,
            timeout_kills=False,
            poll_interval=poll_interval,
            drain=True,
            log=log,
        )
        return
    context = multiprocessing.get_context(start_method)
    entry_args = (
        broker.target, broker.lease_ttl, broker.max_attempts, timeout,
    )

    def spawn():
        proc = context.Process(
            target=_broker_worker_entry, args=entry_args, daemon=True
        )
        proc.start()
        return proc

    workers = [spawn() for _ in range(local)]
    respawns = 0
    respawn_budget = remaining * broker.max_attempts + local
    try:
        while True:
            try:
                if broker.settled(sweep):
                    return
                broker.reclaim_expired()
                counts = broker.counts()
            except BrokerUnavailableError as exc:
                outage(exc)
                time.sleep(poll_interval)
                continue
            down_since = None
            alive = [proc for proc in workers if proc.is_alive()]
            dead = len(workers) - len(alive)
            if dead and log is not None:
                log(f"broker: {dead} local worker(s) died")
            workers = alive
            runnable = counts["pending"] + counts["leased"]
            while (
                runnable > 0
                and len(workers) < local
                and respawns < respawn_budget
            ):
                workers.append(spawn())
                respawns += 1
                if log is not None:
                    log("broker: respawned a local worker")
            if not workers and respawns >= respawn_budget:
                # Workers keep dying faster than the attempt budget
                # burns down; stop supervising and let the parent
                # rescue whatever is left.
                if log is not None:
                    log("broker: worker respawn budget exhausted")
                return
            time.sleep(poll_interval)
    finally:
        deadline = time.monotonic() + 5.0
        for proc in workers:
            proc.terminate()
        for proc in workers:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()


def _warm_spawned_worker(blob: bytes) -> None:
    """Pool initializer for non-fork start methods: install the
    parent's pipeline-cache entries (fork inherits them for free)."""
    if blob:
        from repro.tuning.pipeline import default_cache

        default_cache().install_entries(blob)


def _traced_call(payload: tuple):
    """Worker shim recording which pid runs which task, so a hung task's
    worker can be SIGKILLed from the parent — and, because the pid file
    is removed only on completion, so a pool death can be blamed on the
    tasks that were actually running.  Under a journal the task also
    gets its checkpoint directory exported."""
    fn, task, pid_path, ckpt_dir = payload
    try:
        with open(pid_path, "w") as handle:
            handle.write(str(os.getpid()))
    except OSError:
        pass
    try:
        if ckpt_dir is not None:
            return _call_with_checkpoint_dir(fn, task, ckpt_dir)
        return fn(task)
    finally:
        try:
            os.unlink(pid_path)
        except OSError:
            pass


class _StragglersKilled(Exception):
    """Internal: a hung worker was SIGKILLed; the pool is gone and the
    incomplete tasks need a fresh one."""


class _PoolBroken(Exception):
    """Internal: the pool died under a journal; ``indices`` are the
    tasks whose pid files say they were running when it happened."""

    def __init__(self, indices: list):
        super().__init__(f"pool died running task(s) {indices}")
        self.indices = indices


def _has_pid_file(pid_dir: Optional[str], index: int) -> bool:
    return pid_dir is not None and os.path.exists(
        os.path.join(pid_dir, f"{index}.pid")
    )


def _kill_straggler(pool, pid_dir: Optional[str], index: int) -> bool:
    """SIGKILL the worker recorded for task *index*, if it is still one
    of *pool*'s own processes (guards against pid reuse)."""
    if pid_dir is None:
        return False
    pid_path = os.path.join(pid_dir, f"{index}.pid")
    try:
        with open(pid_path) as handle:
            pid = int(handle.read().strip() or "0")
    except (OSError, ValueError):
        return False
    processes = getattr(pool, "_processes", None) or {}
    if pid not in processes:
        return False
    try:
        os.kill(pid, signal.SIGKILL)
    except OSError:
        return False
    return True


def _run_pool(
    fn: Callable,
    tasks: list,
    labels: Sequence[str],
    jobs: int,
    log: Optional[Callable],
    timeout: Optional[float],
    retries: int,
    results: list,
    start_method: Optional[str] = None,
    journal: Optional[RunJournal] = None,
    traced: bool = False,
) -> None:
    """Pool path of :func:`run_tasks`, filling *results* in place.

    Runs the tasks in pool *generations*: when a straggler has to be
    SIGKILLed (its slot cannot otherwise be reclaimed — a worker with a
    task is unkillable through the executor API), the broken pool is
    dropped and the still-incomplete tasks resubmitted to a fresh one,
    with per-task attempt counts carried across generations.  Under a
    journal, a pool death is survivable too: the tasks whose pid files
    say they were running get the blame, and a task blamed for
    :data:`MAX_TASK_CRASHES` deaths (counted across resumed
    invocations) is demoted to serial-with-checkpoints in the parent
    before the next pool is built.
    """
    total = len(tasks)
    context = multiprocessing.get_context(start_method)
    initializer = None
    initargs: tuple = ()
    if context.get_start_method() != "fork":
        from repro.tuning.pipeline import default_cache

        initializer = _warm_spawned_worker
        initargs = (default_cache().export_entries(),)
    attempts = [0] * total
    progress = [sum(1 for value in results if value is not _UNSET)]
    crash_counts = journal.crash_counts() if journal is not None else {}
    pid_dir = (
        tempfile.mkdtemp(prefix="repro-harness-")
        if (timeout is not None or journal is not None)
        else None
    )
    try:
        while True:
            todo = [i for i in range(total) if results[i] is _UNSET]
            if journal is not None:
                for index in todo:
                    if crash_counts.get(index, 0) < MAX_TASK_CRASHES:
                        continue
                    # Watchdog: this task keeps taking pools down with
                    # it.  Run it serially in the parent — with its
                    # checkpoint directory, so even repeated deaths of
                    # the whole invocation make forward progress.
                    if log is not None:
                        log(demotion_reason(labels[index], crash_counts[index]))
                    value = _call_with_checkpoint_dir(
                        fn, tasks[index], journal.checkpoint_dir(index)
                    )
                    journal.record(index, labels[index], value, traced=traced)
                    results[index] = value
                    progress[0] += 1
                    if log is not None:
                        log(f"[{progress[0]}/{total}] {labels[index]}")
                todo = [i for i in todo if results[i] is _UNSET]
            if not todo:
                return
            pool = ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=context,
                initializer=initializer,
                initargs=initargs,
            )
            try:
                _pool_generation(
                    pool, fn, tasks, labels, jobs, log, timeout, retries,
                    results, attempts, todo, pid_dir, progress,
                    journal, traced,
                )
                return
            except _StragglersKilled:
                if log is not None:
                    remaining = sum(
                        1 for i in range(total) if results[i] is _UNSET
                    )
                    log(
                        f"rebuilding worker pool for {remaining} "
                        f"unfinished task(s)"
                    )
            except _PoolBroken as exc:
                for index in exc.indices:
                    crash_counts[index] = crash_counts.get(index, 0) + 1
                    journal.note_crash(index, labels[index])
                if log is not None:
                    log(pool_death_reason(labels[i] for i in exc.indices))
    finally:
        if pid_dir is not None:
            shutil.rmtree(pid_dir, ignore_errors=True)


def _pool_generation(
    pool,
    fn: Callable,
    tasks: list,
    labels: Sequence[str],
    jobs: int,
    log: Optional[Callable],
    timeout: Optional[float],
    retries: int,
    results: list,
    attempts: list,
    todo: list,
    pid_dir: Optional[str],
    progress: list,
    journal: Optional[RunJournal] = None,
    traced: bool = False,
) -> None:
    """Run the *todo* task indices through *pool*, filling *results*."""
    total = len(tasks)
    index_of: dict = {}
    deadline_of: dict = {}
    pending: set = set()
    next_slot = 0

    def submit(index: int) -> None:
        if pid_dir is not None:
            pid_path = os.path.join(pid_dir, f"{index}.pid")
            try:
                os.unlink(pid_path)
            except OSError:
                pass
            ckpt_dir = (
                journal.checkpoint_dir(index) if journal is not None else None
            )
            future = pool.submit(
                _traced_call, (fn, tasks[index], pid_path, ckpt_dir)
            )
        else:
            future = pool.submit(fn, tasks[index])
        index_of[future] = index
        if timeout is not None:
            deadline_of[future] = time.monotonic() + timeout
        pending.add(future)

    def submit_up_to(limit: int) -> None:
        # Submit in chunks of one pool-width so a long tail of tasks
        # does not pile up queued pickles, then top the window up as
        # futures complete.
        nonlocal next_slot
        while next_slot < len(todo) and len(pending) < limit:
            submit(todo[next_slot])
            next_slot += 1

    try:
        submit_up_to(2 * jobs)
        while pending:
            wait_timeout = None
            if timeout is not None:
                nearest = min(deadline_of[f] for f in pending)
                wait_timeout = max(0.0, nearest - time.monotonic())
            completed, pending = wait(
                pending, timeout=wait_timeout, return_when=FIRST_COMPLETED
            )
            pool_error = None
            for future in completed:
                index = index_of.pop(future)
                deadline_of.pop(future, None)
                try:
                    value = future.result()
                except BrokenProcessPool as exc:
                    # This future died with the pool.  Keep collecting
                    # (and journaling) the siblings that genuinely
                    # finished in the same batch before giving up, so
                    # their results are never recomputed.
                    pool_error = exc
                    continue
                results[index] = value
                if journal is not None:
                    journal.record(index, labels[index], value, traced=traced)
                progress[0] += 1
                if log is not None:
                    log(f"[{progress[0]}/{total}] {labels[index]}")
            if pool_error is not None:
                raise pool_error
            if timeout is not None:
                now = time.monotonic()
                expired = [f for f in pending if deadline_of[f] <= now]
                for future in expired:
                    if future.done():
                        continue  # finished just now; collected next loop
                    cancelled = future.cancel()
                    pending.discard(future)
                    index = index_of.pop(future)
                    deadline_of.pop(future)
                    attempts[index] += 1
                    if attempts[index] > retries:
                        raise TaskTimeoutError(
                            f"task {labels[index]} exceeded {timeout:g}s "
                            f"(attempt {attempts[index]}, retries={retries})"
                        )
                    if log is not None:
                        log(
                            f"task {labels[index]} exceeded {timeout:g}s; "
                            f"retry {attempts[index]}/{retries}"
                        )
                    if cancelled:
                        # Never started; resubmit into this same pool.
                        submit(index)
                        continue
                    # A running straggler holds its worker hostage:
                    # SIGKILL the recorded pid to reclaim the slot, then
                    # rebuild the (now broken) pool for whatever is
                    # incomplete.  Without a recorded pid (start-up
                    # race), fall back to abandoning the future — the
                    # straggler burns out on its own.
                    if _kill_straggler(pool, pid_dir, index):
                        if log is not None:
                            log(
                                f"killed straggling worker of task "
                                f"{labels[index]}"
                            )
                        raise _StragglersKilled()
                    submit(index)
            submit_up_to(2 * jobs)
    except BrokenProcessPool as exc:
        pool.shutdown(wait=False, cancel_futures=True)
        if journal is None:
            raise
        # Blame the tasks that were actually running: _traced_call
        # removes a task's pid file on completion, so an incomplete task
        # with a lingering pid file had a worker die under it.
        blamed = sorted(
            index
            for index in range(total)
            if results[index] is _UNSET and _has_pid_file(pid_dir, index)
        )
        if not blamed:
            raise
        raise _PoolBroken(blamed) from exc
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=False)
