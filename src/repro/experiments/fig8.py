"""Figure 8: speedup vs fairness trade-off.

"Here we examine the trade-off between speedup and fairness.  Speedup
refers to the decrease in average process runtime.  Max-stretch is used
for fairness ... Our interval and loop techniques perform quite well at
balancing these two metrics.  Many variations show significant increases
in speedup, but at a loss of fairness."

The scatter's points are Table 2's rows, so this module just reshapes a
:class:`~repro.experiments.table2.Table2Result`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import Table2Result, run as run_table2
from repro.experiments.report import format_table


@dataclass
class Fig8Point:
    technique: str
    speedup: float       # avg-time decrease, %
    fairness: float      # max-stretch decrease, %


@dataclass
class Fig8Result:
    points: list

    def balanced(self) -> list:
        """Points improving (or holding) both axes."""
        return [
            p for p in self.points if p.speedup >= 0 and p.fairness >= -1.0
        ]


def run(
    config: ExperimentConfig = None, table2: Table2Result = None
) -> Fig8Result:
    table2 = table2 or run_table2(config)
    points = [
        Fig8Point(
            row.technique,
            row.comparison.average_time_decrease,
            row.comparison.max_stretch_decrease,
        )
        for row in table2.rows
    ]
    return Fig8Result(points)


def format_result(result: Fig8Result) -> str:
    rows = [
        (p.technique, f"{p.speedup:+.2f}", f"{p.fairness:+.2f}")
        for p in sorted(result.points, key=lambda p: -p.speedup)
    ]
    return format_table(
        ("technique", "speedup (avg time %)", "fairness (max-stretch %)"),
        rows,
        title="Figure 8: speedup vs fairness (scatter data)",
    )


if __name__ == "__main__":
    print(format_result(run()))
