"""Run every experiment at full scale and print the paper-style output.

Usage::

    python -m repro.experiments                 # everything (a few minutes)
    python -m repro.experiments fig3 table2     # just the named ones
    python -m repro.experiments --jobs 4 --log fig6   # 4 workers, progress
    python -m repro.experiments --cache-dir .repro-cache fig6   # disk cache
    python -m repro.experiments --trace-out traces fig6   # Chrome trace
    python -m repro.experiments --trace-out traces telemetry  # summary
    python -m repro.experiments --no-coalesce table2   # per-quantum debug

``--jobs`` caps the harness worker pool (overriding ``REPRO_JOBS``;
``--jobs 1`` runs serially) and ``--log`` prints one progress line per
completed sweep point to stderr.  ``--cache-dir`` (or the
``REPRO_CACHE_DIR`` environment variable) persists the static-pipeline
cache to disk: a second invocation rebuilds nothing and reports a 100%
pipeline-cache hit rate in the stats line printed at the end.

``--store-url`` (or ``REPRO_STORE_URL``) adds shared artifact-store
tiers — comma-separated ``http(s)://`` servers (``python -m
repro.store serve``) and/or rsync-able directories — consulted on a
local cache miss: a host that never ran the pipeline fetches every
entry (digest-verified) instead of recomputing it.  ``--store-dir``
(or ``REPRO_STORE_DIR``) names the local store directory used by
broker results and checkpoint snapshots; the ``--cache-dir`` directory
is itself a valid store, so it can be served or listed in another
host's ``REPRO_STORE_URL`` directly.  A dead or slow remote tier costs
one bounded timeout and the run falls back to local compute with
byte-identical output.

``--trace-out DIR`` (or the ``REPRO_TRACE_DIR`` environment variable)
enables :mod:`repro.telemetry`: every simulation and harness task is
recorded and the run writes ``DIR/trace.json`` (Chrome ``trace_event``
format — load it in chrome://tracing or https://ui.perfetto.dev) and
``DIR/metrics.json``.  ``--trace-categories`` (or
``REPRO_TRACE_CATEGORIES``) selects event categories.  The
pseudo-experiment ``telemetry`` prints a text summary of the trace —
of the current invocation when run together with experiments, or of an
existing ``DIR/trace.json`` (falling back to the streamed
``DIR/trace.jsonl``, tolerating a torn tail) when run alone.  Without
``--trace-out`` nothing is recorded and the output is byte-identical
to a build without telemetry.

Crash-safe runs::

    python -m repro.experiments --run-dir run1 --jobs 4 fig6
    # ... SIGKILL, power loss, OOM ...
    python -m repro.experiments resume run1

Broker-backed sweeps (multi-worker, multi-host, fault-tolerant)::

    python -m repro.experiments --broker-dir /shared/q fig6   # self-contained
    python -m repro.experiments enqueue /shared/q fig6 &      # submit + wait
    python -m repro.experiments work /shared/q                # on any host
    python -m repro.experiments status /shared/q              # queue + drift
    python -m repro.experiments bless /shared/q               # golden baseline

Networked sweeps (no shared filesystem; see
:mod:`repro.experiments.broker_net`)::

    python -m repro.experiments serve /srv/q --port 8751      # broker host
    python -m repro.experiments enqueue http://host:8751 fig6 &
    python -m repro.experiments work http://host:8751          # any machine
    python -m repro.experiments status http://host:8751 --watch

Every broker verb accepts an ``http(s)://`` URL wherever it accepts a
directory (or ``--broker-url``/``REPRO_BROKER_URL`` instead of the
positional target).  The transport retries with backoff and jitter,
carries idempotency keys on every mutating request, and trips a
cooldown circuit breaker when the server is down — workers poll
through outages for ``REPRO_BROKER_GRACE`` seconds and results stay
exactly-once through server crashes.  ``serve --token`` (or
``REPRO_AUTH_TOKEN``, which clients also read) requires a bearer token
on every request; ``--readonly`` serves status-only.  ``enqueue
--priority N`` claims higher-priority sweeps first (FIFO within a
band).

``--broker-dir DIR`` (or ``REPRO_BROKER_DIR``) routes every sweep
through the claim/lease task queue of :mod:`repro.experiments.broker`:
tasks survive worker ``kill -9`` via lease reclamation, repeatedly
crashing tasks are quarantined instead of failing the sweep, and
results are recorded idempotently by content key.  ``enqueue`` submits
without computing (workers elsewhere run ``work``, which sizes itself
from *its own* host's ``REPRO_JOBS``/``--jobs``, never the submitter's);
``status`` reports queue states, quarantines, sessions, and drift
against the golden baseline recorded by ``bless``.

Per-task retry knobs (all backends): ``--task-timeout SECONDS``,
``--task-retries N``, ``--backoff-base SECONDS``, matching the
``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES`` /
``REPRO_BACKOFF_BASE`` environment variables (``--lease-ttl`` likewise
matches ``REPRO_LEASE_TTL`` for broker leases).

``--run-dir DIR`` makes the invocation durable: the chosen experiments
and options are written to ``DIR/manifest.json``, every sweep journals
its completed tasks under ``DIR/sweep-NNNN/``, each task checkpoints
its simulation periodically (``--checkpoint-interval`` simulated
seconds), and with ``--trace-out`` events also stream to
``trace.jsonl`` as they happen.  ``resume DIR`` replays the manifest:
journaled tasks are skipped, interrupted tasks continue from their
latest valid checkpoint, and the completed output is byte-identical to
an uninterrupted run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional

from repro.experiments import (
    extras,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    harness,
    open_system,
    table1,
    table2,
)
from repro.experiments.broker import (
    BACKOFF_BASE_ENV,
    BROKER_DIR_ENV,
    BROKER_URL_ENV,
    LEASE_TTL_ENV,
    PRIORITY_ENV,
    Broker,
    connect,
    worker_loop,
)
from repro.errors import BrokerError
from repro.net import AUTH_TOKEN_ENV
from repro.experiments.config import ExperimentConfig
from repro.experiments.results_db import ResultsDB, format_diff
from repro.sim.checkpoint import CHECKPOINT_INTERVAL_ENV
from repro.sim.executor import NO_COALESCE_ENV
from repro.telemetry import (
    TRACE_CATEGORIES_ENV,
    TRACE_DIR_ENV,
    TimelineAnalyzer,
    TraceRecorder,
    current_recorder,
    env_categories,
    render_report,
    set_recorder,
    write_chrome_trace,
    write_metrics,
)
from repro.store import STORE_DIR_ENV, STORE_URL_ENV
from repro.tuning.pipeline import CACHE_DIR_ENV, default_cache


def _run_fig3(jobs, log):
    print(fig3.format_result(fig3.run()))


def _run_table1(jobs, log):
    result = table1.run(jobs=jobs, log=log)
    print(table1.format_result(result))
    print()
    print(fig5.format_result(fig5.run(result)))


def _run_fig4(jobs, log):
    config = ExperimentConfig(slots=84, interval=400.0, seed=101)
    print(fig4.format_result(fig4.run(config, jobs=jobs, log=log)))


def _run_fig6(jobs, log):
    print(
        fig6.format_result(
            fig6.run(
                ExperimentConfig.paper(), strategy="Loop[45]", jobs=jobs, log=log
            )
        )
    )


def _run_fig7(jobs, log):
    print(
        fig7.format_result(
            fig7.run(
                ExperimentConfig.paper(), strategy="Loop[45]", jobs=jobs, log=log
            )
        )
    )


def _run_table2(jobs, log):
    result = table2.run(ExperimentConfig.fairness_paper(), jobs=jobs, log=log)
    print(table2.format_result(result))
    print()
    print(fig8.format_result(fig8.run(table2=result)))


def _run_faults(jobs, log):
    print(
        extras.format_fault_resilience(
            extras.fault_resilience(jobs=jobs, log=log)
        )
    )


def _run_extras(jobs, log):
    print(extras.format_atom(extras.atom_comparison()))
    accuracy = extras.typing_accuracy()
    print(
        f"\ntyping accuracy: {accuracy.misclassified}/{accuracy.total_loops} "
        f"loops misclassified ({accuracy.error_rate:.1%}; paper ~15%)"
    )
    print()
    print(
        extras.format_sweep(
            extras.lookahead_sweep(ExperimentConfig.paper(), jobs=jobs, log=log)
        )
    )
    print()
    print(
        extras.format_sweep(
            extras.min_size_sweep(ExperimentConfig.paper(), jobs=jobs, log=log)
        )
    )
    three = extras.three_core_speedup(ExperimentConfig.paper())
    print(
        f"\n3-core AMP: avg {three.average_time_decrease:+.2f}%, "
        f"throughput {three.throughput_improvement:+.2f}%, "
        f"max-stretch {three.max_stretch_decrease:+.2f}%"
    )
    many = extras.many_core_speedup()
    print(
        f"8-core AMP: avg {many.average_time_decrease:+.2f}%, "
        f"throughput {many.throughput_improvement:+.2f}%, "
        f"max-stretch {many.max_stretch_decrease:+.2f}%"
    )
    threads = extras.multithreaded_comparison()
    print(
        f"multi-threaded app: makespan {threads.makespan_decrease:+.1f}%, "
        f"decisions shared: {threads.decisions_shared}"
    )
    feedback = extras.feedback_adaptation()
    print(
        f"feedback adaptation: {feedback.feedback_gain:+.1f}% more "
        f"post-shock progress ({feedback.resamples} re-samples)"
    )


def _run_open_system(jobs, log):
    print(
        open_system.format_result(
            open_system.run(ExperimentConfig.paper(), jobs=jobs, log=log)
        )
    )


_EXPERIMENTS = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "table1": _run_table1,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "table2": _run_table2,
    "faults": _run_faults,
    "extras": _run_extras,
    "open_system": _run_open_system,
}


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiments and print their tables.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="experiment",
        help=f"experiments to run (default: all): {', '.join(_EXPERIMENTS)}",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="harness worker processes (default: REPRO_JOBS or cpu count; "
        "1 = serial)",
    )
    parser.add_argument(
        "--log",
        action="store_true",
        help="print per-task sweep progress to stderr",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist the static-pipeline cache under DIR (default: the "
        "REPRO_CACHE_DIR environment variable, if set); repeat runs then "
        "skip the whole static pipeline",
    )
    parser.add_argument(
        "--store-url",
        default=None,
        metavar="URL[,URL...]",
        help="read artifacts through shared store tiers on a cache miss: "
        "http(s) servers (python -m repro.store serve) and/or plain "
        "directories, consulted in order (default: the REPRO_STORE_URL "
        "environment variable, if set)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="local artifact-store directory for broker results and "
        "checkpoint snapshots (default: the REPRO_STORE_DIR environment "
        "variable, if set); a --cache-dir directory is already a store "
        "and needs no extra flag",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="record telemetry and write DIR/trace.json (Chrome "
        "trace_event format) plus DIR/metrics.json (default: the "
        "REPRO_TRACE_DIR environment variable, if set)",
    )
    parser.add_argument(
        "--trace-categories",
        default=None,
        metavar="CATS",
        help="comma-separated trace categories, e.g. "
        "'exec,sched,tuning,quantum' or 'all' (default: the "
        "REPRO_TRACE_CATEGORIES environment variable, or a standard set "
        "excluding the high-volume quantum/segment spans)",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable macro-quantum coalescing and run every scheduling "
        "quantum through the per-quantum path (debug escape hatch, "
        f"parallel to the {NO_COALESCE_ENV} environment variable; the "
        "output is byte-identical either way, only slower)",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="make the run durable: write DIR/manifest.json, journal "
        "every sweep under DIR, and checkpoint each task's simulation; "
        "an interrupted invocation continues with "
        "'python -m repro.experiments resume DIR'",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="simulated seconds between task checkpoints under "
        "--run-dir (default: 10)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget (default: REPRO_TASK_TIMEOUT, "
        "else none); over-budget pool workers are SIGKILLed and the task "
        "resubmitted, broker workers let the lease lapse so the task is "
        "re-offered",
    )
    parser.add_argument(
        "--task-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget per task (default: REPRO_TASK_RETRIES, else 0); "
        "the broker backend always grants at least its quarantine "
        "threshold of attempts",
    )
    parser.add_argument(
        "--backoff-base",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exponential-backoff base between broker re-offers of a "
        "failed task (default: REPRO_BACKOFF_BASE, else 0.5)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="broker lease TTL: how long a dead worker's task stays "
        "claimed before reclamation (default: REPRO_LEASE_TTL, else 30)",
    )
    parser.add_argument(
        "--broker-dir",
        default=None,
        metavar="DIR",
        help="route sweeps through the fault-tolerant broker queue at DIR "
        "(default: the REPRO_BROKER_DIR environment variable, if set); "
        "see also the enqueue/work/status/bless verbs",
    )
    parser.add_argument(
        "--broker-url",
        default=None,
        metavar="URL",
        help="route sweeps through a networked broker server "
        "(python -m repro.experiments serve DIR) instead of a shared "
        "directory (default: the REPRO_BROKER_URL environment variable, "
        "if set); broker verbs also accept the URL positionally",
    )
    parser.add_argument(
        "--priority",
        type=int,
        default=None,
        metavar="N",
        help="with enqueue (or any broker-backed sweep): claim this "
        "sweep's tasks before lower-priority ones (default: "
        "REPRO_SWEEP_PRIORITY, else 0; FIFO within a priority band)",
    )
    parser.add_argument(
        "--token",
        default=None,
        metavar="TOKEN",
        help="bearer token for networked broker/store servers; with the "
        "serve verb, require it on every request (default: the "
        "REPRO_AUTH_TOKEN environment variable, if set)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="with the serve verb: address to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8751,
        metavar="N",
        help="with the serve verb: port to bind (default: 8751; "
        "0 = ephemeral)",
    )
    parser.add_argument(
        "--readonly",
        action="store_true",
        help="with the serve verb: reject mutating requests with 403 "
        "(status-only mirror)",
    )
    parser.add_argument(
        "--forever",
        action="store_true",
        help="with the work verb: keep serving after the queue drains "
        "(until interrupted)",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="with the status verb: poll the broker and re-render the "
        "report in place (plus the audit-event tail) until interrupted",
    )
    parser.add_argument(
        "--watch-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between --watch refreshes (default: 2)",
    )
    return parser.parse_args(argv)


def _run_telemetry(trace_dir, live: bool) -> None:
    """Print the summary report for the ``telemetry`` pseudo-experiment.

    Reports on the live recorder when the current invocation also ran
    experiments under ``--trace-out``; otherwise loads a previously
    written ``trace.json`` from *trace_dir* — falling back to the
    streamed ``trace.jsonl`` (tolerating a torn final line) when the
    recording run was killed before it could write ``trace.json``.
    """
    recorder = current_recorder()
    if live and recorder.enabled:
        analyzer = TimelineAnalyzer.from_recorder(recorder)
    else:
        if not trace_dir:
            raise SystemExit(
                "telemetry: nothing recorded and no trace directory; pass "
                f"--trace-out DIR or set {TRACE_DIR_ENV}"
            )
        path = Path(trace_dir) / "trace.json"
        tolerant = False
        if not path.exists():
            streamed = Path(trace_dir) / "trace.jsonl"
            if streamed.exists():
                path, tolerant = streamed, True
            else:
                raise SystemExit(f"telemetry: {path} does not exist")
        metrics_path = Path(trace_dir) / "metrics.json"
        metrics = (
            json.loads(metrics_path.read_text(encoding="utf-8"))
            if metrics_path.exists()
            else None
        )
        analyzer = TimelineAnalyzer.from_file(
            path, metrics=metrics, tolerant_tail=tolerant
        )
    print(render_report(analyzer))


#: Options carried through DIR/manifest.json so ``resume DIR`` replays
#: the original invocation without re-typing it.
_MANIFEST_KEYS = (
    "names",
    "jobs",
    "log",
    "cache_dir",
    "store_url",
    "store_dir",
    "no_coalesce",
    "trace_out",
    "trace_categories",
    "checkpoint_interval",
    "task_timeout",
    "task_retries",
    "backoff_base",
    "lease_ttl",
    "broker_dir",
    "broker_url",
    "priority",
)


def _write_manifest(run_dir: Path, args, chosen: list) -> None:
    manifest = {key: getattr(args, key) for key in _MANIFEST_KEYS}
    manifest["names"] = chosen
    run_dir.mkdir(parents=True, exist_ok=True)
    tmp = run_dir / "manifest.json.tmp"
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    os.replace(tmp, run_dir / "manifest.json")


def _merge_manifest(run_dir: Path, args):
    """The resumed invocation's effective options: the manifest's,
    overridden by anything given again on the resume command line."""
    path = run_dir / "manifest.json"
    try:
        manifest = json.loads(path.read_text())
    except OSError:
        raise SystemExit(
            f"resume: {path} does not exist; was this directory created "
            f"with --run-dir?"
        )
    except ValueError as exc:
        raise SystemExit(f"resume: {path} is not valid JSON: {exc}")
    for key in _MANIFEST_KEYS:
        override = getattr(args, key, None)
        if key != "names" and override not in (None, False):
            manifest[key] = override
    merged = argparse.Namespace(**{
        key: manifest.get(key) for key in _MANIFEST_KEYS
    })
    return merged, list(manifest.get("names") or _EXPERIMENTS)


def _execute(args, chosen: list, run_dir: Optional[Path]) -> None:
    """Run *chosen* experiments under *args*; the body shared by a
    fresh invocation and ``resume``."""
    if args.cache_dir:
        # Through the environment so harness worker processes — spawned
        # as well as forked — attach the same disk tier.
        os.environ[CACHE_DIR_ENV] = args.cache_dir
        default_cache().set_disk_dir(args.cache_dir)
    if getattr(args, "store_url", None):
        # Same routing as --cache-dir: workers (fork or spawn) and the
        # process-wide default_store() read the environment.
        os.environ[STORE_URL_ENV] = args.store_url
    if getattr(args, "store_dir", None):
        os.environ[STORE_DIR_ENV] = args.store_dir
    if getattr(args, "no_coalesce", False):
        # Same routing as --cache-dir: pool workers inherit the
        # environment, so every simulation in the invocation steps its
        # quanta individually.
        os.environ[NO_COALESCE_ENV] = "1"
    # Retry/broker knobs travel through the environment too, so pool
    # workers, broker workers, and resumed invocations all see them.
    if getattr(args, "task_timeout", None) is not None:
        os.environ[harness.TASK_TIMEOUT_ENV] = str(args.task_timeout)
    if getattr(args, "task_retries", None) is not None:
        os.environ[harness.TASK_RETRIES_ENV] = str(args.task_retries)
    if getattr(args, "backoff_base", None) is not None:
        os.environ[BACKOFF_BASE_ENV] = str(args.backoff_base)
    if getattr(args, "lease_ttl", None) is not None:
        os.environ[LEASE_TTL_ENV] = str(args.lease_ttl)
    if getattr(args, "broker_dir", None):
        os.environ[BROKER_DIR_ENV] = args.broker_dir
    if getattr(args, "broker_url", None):
        os.environ[BROKER_URL_ENV] = args.broker_url
    if getattr(args, "priority", None) is not None:
        os.environ[PRIORITY_ENV] = str(args.priority)
    if getattr(args, "token", None):
        # The token is never written to manifests — it travels through
        # the environment only.
        os.environ[AUTH_TOKEN_ENV] = args.token
    if args.trace_categories:
        os.environ[TRACE_CATEGORIES_ENV] = args.trace_categories
    if args.trace_out:
        # Through the environment for the same reason as --cache-dir:
        # harness workers read it when building their own recorders.
        os.environ[TRACE_DIR_ENV] = args.trace_out
    trace_dir = os.environ.get(TRACE_DIR_ENV)
    if run_dir is not None:
        harness.set_run_root(run_dir)
        if args.checkpoint_interval is not None:
            # Through the environment so pool workers checkpoint at the
            # same cadence (task_checkpoint_manager reads it).
            os.environ[CHECKPOINT_INTERVAL_ENV] = str(args.checkpoint_interval)
    live = any(name != "telemetry" for name in chosen)
    recorder = None
    if trace_dir and live:
        # A `telemetry`-only invocation must not install (and later
        # flush) an empty recorder over an existing trace.json.  Under
        # a durable run the recorder also streams each event to
        # trace.jsonl as it happens, so a killed run still leaves a
        # loadable trace.
        stream_to = (
            Path(trace_dir) / "trace.jsonl" if run_dir is not None else None
        )
        recorder = TraceRecorder(
            categories=env_categories(), stream_to=stream_to
        )
        set_recorder(recorder)
    log = (
        (lambda line: print(line, file=sys.stderr, flush=True))
        if args.log
        else None
    )
    try:
        for name in chosen:
            print(f"===== {name} =====")
            if name == "telemetry":
                _run_telemetry(trace_dir, live)
            else:
                _EXPERIMENTS[name](args.jobs, log)
            print()
    finally:
        if run_dir is not None:
            harness.set_run_root(None)
        if recorder is not None:
            recorder.close_stream()
    if recorder is not None:
        out = Path(trace_dir)
        trace_path = write_chrome_trace(recorder, out / "trace.json")
        write_metrics(recorder, out / "metrics.json")
        print(
            f"telemetry: {len(recorder.events)} events from "
            f"{len(recorder.runs)} runs -> {trace_path}",
            file=sys.stderr,
        )
    stats = default_cache().stats()
    print(
        f"pipeline cache: {stats['hits']} hits / {stats['misses']} misses "
        f"({stats['hit_rate']:.0%} hit rate, {stats['disk_hits']} from disk, "
        f"{stats['store_hits']} from store, {stats['corruptions']} corrupt, "
        f"{stats['evicted_entries']} evicted / {stats['evicted_bytes']} "
        f"bytes)",
        file=sys.stderr,
    )


def _flag_target(args) -> str:
    """The broker target from flags/environment (no positional)."""
    return (
        getattr(args, "broker_url", None)
        or os.environ.get(BROKER_URL_ENV, "").strip()
        or getattr(args, "broker_dir", None)
        or os.environ.get(BROKER_DIR_ENV, "").strip()
    )


def _verb_dir(args, verb: str) -> str:
    """The verb's broker target: the positional argument, else
    ``--broker-url``/``--broker-dir`` (or their environment variables).
    Directories and ``http(s)://`` URLs are both valid everywhere."""
    if len(args.names) >= 2:
        return args.names[1]
    target = _flag_target(args)
    if target:
        return target
    raise SystemExit(
        f"usage: python -m repro.experiments {verb} TARGET"
        + (" [experiment ...]" if verb == "enqueue" else "")
        + " (TARGET = broker directory or http(s):// URL;"
        " or pass --broker-url)"
    )


def _cmd_enqueue(args) -> None:
    """Submit experiments through the broker and wait for workers.

    Spawns no local workers (``REPRO_BROKER_WORKERS=0``): the sweep is
    claimable by ``work`` processes on any host sharing the directory
    (or reaching the URL), and this invocation blocks until they
    finish, then prints the experiment output exactly as a local run
    would.
    """
    rest = args.names[1:]
    if rest and rest[0] not in _EXPERIMENTS:
        target, chosen = rest[0], rest[1:]
    else:
        # Every positional is an experiment name: the target must come
        # from --broker-url/--broker-dir or the environment.
        target = _flag_target(args)
        chosen = rest
        if not target:
            raise SystemExit(
                "usage: python -m repro.experiments enqueue TARGET "
                "[experiment ...] (or pass --broker-url)"
            )
    if target.startswith(("http://", "https://")):
        os.environ[BROKER_URL_ENV] = target
    else:
        os.environ[BROKER_DIR_ENV] = target
    os.environ[harness.BROKER_WORKERS_ENV] = "0"
    chosen = list(chosen) or list(_EXPERIMENTS)
    for name in chosen:
        if name not in _EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(_EXPERIMENTS)}"
            )
    _execute(args, chosen, None)


def _cmd_work(args) -> None:
    """Serve tasks from a broker directory on this host.

    The worker count comes from this host's ``--jobs``/``REPRO_JOBS``
    (never from anything the enqueuing host wrote into the queue), so
    every worker host honors its own core budget.
    """
    directory = _verb_dir(args, "work")
    if getattr(args, "lease_ttl", None) is not None:
        os.environ[LEASE_TTL_ENV] = str(args.lease_ttl)
    if getattr(args, "backoff_base", None) is not None:
        os.environ[BACKOFF_BASE_ENV] = str(args.backoff_base)
    jobs = harness.worker_count(args.jobs)
    log = lambda line: print(line, file=sys.stderr, flush=True)  # noqa: E731
    timeout = harness.resolve_timeout(args.task_timeout)
    if jobs == 1:
        try:
            completed = worker_loop(
                directory,
                task_timeout=timeout,
                timeout_kills=True,
                drain=not args.forever,
                log=log if args.log else None,
            )
        except BrokerError as exc:
            raise SystemExit(f"work: {exc}")
        print(f"worker drained: {completed} task(s) completed")
        return
    import multiprocessing

    procs = [
        multiprocessing.Process(
            target=worker_loop,
            args=(directory,),
            kwargs=dict(
                task_timeout=timeout,
                timeout_kills=True,
                drain=not args.forever,
            ),
        )
        for _ in range(jobs)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
    print(f"{jobs} worker(s) drained")


def _render_status(directory: str, events_tail: int = 0,
                   broker=None) -> str:
    """One status snapshot as text: queue states, workers, quarantines,
    sessions, drift against the golden baseline, and (for ``--watch``)
    the tail of the broker's audit-trail ``events`` table.

    *directory* may be a broker directory or an ``http(s)://`` URL;
    ``--watch`` passes its long-lived *broker* back in so transport
    state (the circuit breaker) survives across refreshes.
    """
    if broker is None:
        broker = connect(directory)
    http = broker.directory is None
    db = None if http else ResultsDB.for_broker(directory)
    lines = []
    sweeps = broker.sweeps()
    if not sweeps:
        lines.append(f"{directory}: empty broker (no sweeps enqueued)")
    for sweep, fn, total, traced, _created in sweeps:
        counts = broker.counts(sweep)
        state = "settled" if broker.settled(sweep) else "running"
        lines.append(
            f"{sweep} [{state}] {fn}: "
            f"{counts['done']}/{total} done, {counts['pending']} pending, "
            f"{counts['leased']} leased, {counts['quarantined']} quarantined"
            + (" (traced)" if traced else "")
        )
        if http:
            # The results DB lives on the server; it renders the diff.
            info = broker.diff_info(sweep)
            show, text = info.get("show"), info.get("text", "")
        else:
            rows = broker.result_rows(sweep)
            show = rows or db.golden_for(fn)
            text = format_diff(db.diff(fn, rows)) if show else ""
        if show:
            lines.append("  " + text.replace("\n", "\n  "))
    workers = broker.active_workers()
    if workers:
        lines.append(f"active workers: {', '.join(workers)}")
    for sweep, idx, label, attempts, reason in broker.quarantined():
        lines.append(f"QUARANTINED {sweep}[{idx}] {label}: {reason}")
    sessions = broker.sessions(limit=5) if http else db.sessions(limit=5)
    if sessions:
        lines.append("recent sessions:")
        for session, sweep, fn, total, host, _note, _created in sessions:
            lines.append(
                f"  #{session} {sweep} {fn} ({total} task(s)) from {host}"
            )
    if events_tail > 0:
        lines.append("")
        lines.append(f"last {events_tail} event(s):")
        events = broker.events(limit=events_tail)
        if not events:
            lines.append("  (none)")
        for ts, kind, sweep, idx, worker, detail in events:
            where = f"{sweep}[{idx}]" if idx is not None else (sweep or "-")
            lines.append(
                f"  {ts:.2f} {kind:<12} {where}"
                + (f" worker={worker}" if worker else "")
                + (f" {detail}" if detail else "")
            )
    return "\n".join(lines)


def _cmd_status(args) -> None:
    """Report queue states, workers, quarantines, sessions, and drift
    against the golden baseline; with ``--watch``, poll the broker
    and re-render in place until interrupted.

    An unreachable networked broker is a report, not a crash: without
    ``--watch`` it exits with the transport's reason; with ``--watch``
    the snapshot shows the outage and the circuit-breaker state and
    polling continues — the display recovers by itself when the server
    comes back.
    """
    directory = _verb_dir(args, "status")
    if not args.watch:
        try:
            print(_render_status(directory))
        except BrokerError as exc:
            raise SystemExit(f"status: {exc}")
        return
    import time as _time

    interval = args.watch_interval
    broker = None
    try:
        while True:
            try:
                if broker is None:
                    broker = connect(directory)
                snapshot = _render_status(
                    directory, events_tail=10, broker=broker
                )
            except BrokerError as exc:
                state = (
                    broker.breaker_state()
                    if broker is not None and hasattr(broker, "breaker_state")
                    else "unreachable"
                )
                snapshot = (
                    f"{directory}: broker unavailable ({exc})\n"
                    f"transport breaker: {state}; still polling"
                )
            # Clear screen + home, then the snapshot: a cheap in-place
            # re-render with no terminal library dependencies.
            sys.stdout.write("\x1b[2J\x1b[H")
            sys.stdout.write(
                f"watching {directory} every {interval:g}s "
                f"(ctrl-c to stop)\n\n"
            )
            sys.stdout.write(snapshot + "\n")
            sys.stdout.flush()
            _time.sleep(interval)
    except KeyboardInterrupt:
        print()


def _cmd_bless(args) -> None:
    """Record every settled sweep's result digests as the golden
    baseline future runs are diffed against.  Over HTTP the blessing
    runs on the server, where the results DB lives."""
    directory = _verb_dir(args, "bless")
    if directory.startswith(("http://", "https://")):
        try:
            out = connect(directory).bless_all()
        except BrokerError as exc:
            raise SystemExit(f"bless: {exc}")
        for sweep, fn in out.get("skipped", []):
            print(f"skipping {sweep} ({fn}): still running")
        blessed = 0
        for sweep, fn, count in out.get("blessed", []):
            blessed += count
            print(f"blessed {count} result(s) of {sweep} ({fn})")
        if not blessed:
            print("nothing to bless (no settled sweeps with results)")
        return
    broker = Broker(directory)
    db = ResultsDB.for_broker(directory)
    blessed = 0
    for sweep, fn, _total, _traced, _created in broker.sweeps():
        if not broker.settled(sweep):
            print(f"skipping {sweep} ({fn}): still running")
            continue
        rows = broker.result_rows(sweep)
        if not rows:
            continue
        count = db.bless(fn, rows, sweep=sweep)
        blessed += count
        print(f"blessed {count} result(s) of {sweep} ({fn})")
    if not blessed:
        print("nothing to bless (no settled sweeps with results)")


def _cmd_serve(args) -> None:
    """Serve a broker directory over HTTP (see
    :mod:`repro.experiments.broker_net`)."""
    from repro.experiments.broker_net import serve

    directory = _verb_dir(args, "serve")
    if directory.startswith(("http://", "https://")):
        raise SystemExit("serve needs a broker *directory*, not a URL")
    serve(
        directory,
        host=args.host,
        port=args.port,
        lease_ttl=args.lease_ttl,
        backoff_base=args.backoff_base,
        token=args.token,
        readonly=args.readonly,
        verbose=args.log,
    )


_VERBS = {
    "enqueue": _cmd_enqueue,
    "work": _cmd_work,
    "status": _cmd_status,
    "bless": _cmd_bless,
    "serve": _cmd_serve,
}


def main(argv) -> None:
    args = _parse_args(argv)
    if args.names and args.names[0] == "resume":
        if len(args.names) != 2:
            raise SystemExit("usage: python -m repro.experiments resume RUNDIR")
        run_dir = Path(args.names[1])
        merged, chosen = _merge_manifest(run_dir, args)
        _execute(merged, chosen, run_dir)
        return
    if args.names and args.names[0] in _VERBS:
        _VERBS[args.names[0]](args)
        return
    chosen = args.names or list(_EXPERIMENTS)
    for name in chosen:
        if name not in _EXPERIMENTS and name != "telemetry":
            raise SystemExit(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(_EXPERIMENTS) + sorted(_VERBS) + ['resume', 'telemetry']}"
            )
    run_dir = Path(args.run_dir) if args.run_dir else None
    if run_dir is not None:
        _write_manifest(run_dir, args, chosen)
    _execute(args, chosen, run_dir)


if __name__ == "__main__":
    main(sys.argv[1:])
