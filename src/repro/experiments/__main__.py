"""Run every experiment at full scale and print the paper-style output.

Usage::

    python -m repro.experiments            # everything (a few minutes)
    python -m repro.experiments fig3 table2  # just the named ones
"""

from __future__ import annotations

import sys

from repro.experiments import extras, fig3, fig4, fig5, fig6, fig7, fig8, table1, table2
from repro.experiments.config import ExperimentConfig


def _run_fig3():
    print(fig3.format_result(fig3.run()))


def _run_table1():
    result = table1.run()
    print(table1.format_result(result))
    print()
    print(fig5.format_result(fig5.run(result)))


def _run_fig4():
    config = ExperimentConfig(slots=84, interval=400.0, seed=101)
    print(fig4.format_result(fig4.run(config)))


def _run_fig6():
    print(fig6.format_result(fig6.run(ExperimentConfig.paper(), strategy="Loop[45]")))


def _run_fig7():
    print(fig7.format_result(fig7.run(ExperimentConfig.paper(), strategy="Loop[45]")))


def _run_table2():
    result = table2.run(ExperimentConfig.fairness_paper())
    print(table2.format_result(result))
    print()
    print(fig8.format_result(fig8.run(table2=result)))


def _run_extras():
    print(extras.format_atom(extras.atom_comparison()))
    accuracy = extras.typing_accuracy()
    print(
        f"\ntyping accuracy: {accuracy.misclassified}/{accuracy.total_loops} "
        f"loops misclassified ({accuracy.error_rate:.1%}; paper ~15%)"
    )
    print()
    print(extras.format_sweep(extras.lookahead_sweep(ExperimentConfig.paper())))
    print()
    print(extras.format_sweep(extras.min_size_sweep(ExperimentConfig.paper())))
    three = extras.three_core_speedup(ExperimentConfig.paper())
    print(
        f"\n3-core AMP: avg {three.average_time_decrease:+.2f}%, "
        f"throughput {three.throughput_improvement:+.2f}%, "
        f"max-stretch {three.max_stretch_decrease:+.2f}%"
    )
    many = extras.many_core_speedup()
    print(
        f"8-core AMP: avg {many.average_time_decrease:+.2f}%, "
        f"throughput {many.throughput_improvement:+.2f}%, "
        f"max-stretch {many.max_stretch_decrease:+.2f}%"
    )
    threads = extras.multithreaded_comparison()
    print(
        f"multi-threaded app: makespan {threads.makespan_decrease:+.1f}%, "
        f"decisions shared: {threads.decisions_shared}"
    )
    feedback = extras.feedback_adaptation()
    print(
        f"feedback adaptation: {feedback.feedback_gain:+.1f}% more "
        f"post-shock progress ({feedback.resamples} re-samples)"
    )


_EXPERIMENTS = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "table1": _run_table1,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "table2": _run_table2,
    "extras": _run_extras,
}


def main(names) -> None:
    chosen = names or list(_EXPERIMENTS)
    for name in chosen:
        if name not in _EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; choose from {sorted(_EXPERIMENTS)}"
            )
        print(f"===== {name} =====")
        _EXPERIMENTS[name]()
        print()


if __name__ == "__main__":
    main(sys.argv[1:])
