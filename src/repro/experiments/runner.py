"""Shared run machinery for the experiments.

All experiments compare runs over *identical workload queues* — the
paper's methodology ("when comparing two techniques, the same queues
were used for each experiment").  :func:`run_baseline` executes the
stock-scheduler run, :func:`run_technique` a tuned run, and both return
a :class:`TechniqueOutcome` carrying the simulation result plus the
derived metrics the tables/figures consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.fairness import FairnessReport, fairness_report
from repro.metrics.throughput import throughput
from repro.sim.checkpoint import task_checkpoint_manager
from repro.sim.executor import SimulationResult
from repro.workloads.workload import Workload, WorkloadRun
from repro.experiments.config import ExperimentConfig


@dataclass
class TechniqueOutcome:
    """One run's results.

    Attributes:
        name: technique name, or ``"linux"`` for the stock baseline.
        result: the raw simulation result.
        fairness: Table 2's metrics over completed processes.
        instructions: committed instructions within the interval.
        switches: total core switches across all processes.
        runtime: the tuning runtime the simulation actually used, if
            any.  When the run resumed from a checkpoint this is the
            *snapshot's* runtime (carrying the accumulated tuning
            state), not the one the caller passed in — read post-run
            statistics from here.
    """

    name: str
    result: SimulationResult
    fairness: FairnessReport
    instructions: float
    switches: float
    runtime: object = None

    @property
    def completed(self) -> int:
        return self.fairness.completed


def _outcome(
    name: str,
    result: SimulationResult,
    interval: float,
    runtime=None,
) -> TechniqueOutcome:
    return TechniqueOutcome(
        name,
        result,
        fairness_report(result.completed),
        throughput(result, interval),
        result.total_switches(),
        runtime,
    )


def make_workload(config: ExperimentConfig) -> Workload:
    """The experiment's workload (same seed -> same queues)."""
    return Workload.random(config.slots, seed=config.seed)


def run_baseline(
    config: ExperimentConfig,
    workload: Optional[Workload] = None,
    faults=None,
    checkpoint=None,
) -> TechniqueOutcome:
    """Run the stock-Linux-scheduler baseline.

    Args:
        faults: optional :class:`~repro.sim.faults.FaultPlan` perturbing
            the run (fault-resilience experiments); ``None`` (default)
            runs fault-free.
        checkpoint: optional checkpoint manager or directory; the run
            checkpoints there and resumes from any valid snapshot (see
            :meth:`~repro.workloads.workload.WorkloadRun.run`).
    """
    workload = workload or make_workload(config)
    run = WorkloadRun(workload, config.resolved_machine())
    result = run.run(
        config.interval,
        contention_alpha=config.contention_alpha,
        pollution_beta=config.pollution_beta,
        faults=faults,
        checkpoint=checkpoint,
    )
    return _outcome(
        "linux", result, config.interval, run.last_simulation.runtime
    )


def run_technique(
    config: ExperimentConfig,
    strategy_name: str,
    workload: Optional[Workload] = None,
    delta: Optional[float] = None,
    typing_overrides: Optional[dict] = None,
    runtime=None,
    faults=None,
    checkpoint=None,
) -> TechniqueOutcome:
    """Run one phase-based-tuning variant.

    Args:
        strategy_name: e.g. ``"Loop[45]"``.
        delta: override the config's IPC threshold.
        typing_overrides: per-benchmark typings (error injection).
        runtime: override the runtime entirely (e.g. switch-to-all).
        faults: optional :class:`~repro.sim.faults.FaultPlan` perturbing
            the run; ``None`` (default) runs fault-free.
        checkpoint: optional checkpoint manager or directory; the run
            checkpoints there and resumes from any valid snapshot (see
            :meth:`~repro.workloads.workload.WorkloadRun.run`).
    """
    workload = workload or make_workload(config)
    run = WorkloadRun(
        workload,
        config.resolved_machine(),
        config.strategy(strategy_name),
        typing_overrides=typing_overrides,
    )
    result = run.run(
        config.interval,
        runtime=runtime if runtime is not None else config.make_runtime(delta),
        contention_alpha=config.contention_alpha,
        pollution_beta=config.pollution_beta,
        faults=faults,
        checkpoint=checkpoint,
    )
    return _outcome(
        strategy_name, result, config.interval, run.last_simulation.runtime
    )


def run_technique_point(task: tuple) -> TechniqueOutcome:
    """Harness worker: one technique run from a picklable task tuple.

    ``task`` is ``(config, strategy_name, workload, delta)`` with an
    optional trailing ``faults`` plan; module level so
    :func:`repro.experiments.harness.run_tasks` can ship it to pool
    workers.  Under a durable sweep the harness exports each task's
    checkpoint directory; :func:`task_checkpoint_manager` picks it up
    here, making every pool task resumable mid-simulation.
    """
    config, strategy_name, workload, delta, *rest = task
    faults = rest[0] if rest else None
    return run_technique(
        config,
        strategy_name,
        workload=workload,
        delta=delta,
        faults=faults,
        checkpoint=task_checkpoint_manager(),
    )
