"""Figure 3: space overhead per technique variant.

"To measure space overhead, we compared the sizes of the original and
modified binaries for variations of our technique ... As the minimum
size increases, space overhead decreases.  Similarly, as lookahead depth
increases, space overhead generally decreases ... For our best technique
(loop technique with minimum size of 45), we have less than 4% space
overhead ... an average of 20.24 phase marks per benchmark where each
phase mark is at most 78 bytes."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instrument.marker import parse_strategy
from repro.metrics.overhead import SpaceOverheadReport, space_overhead_report
from repro.workloads.spec import spec_suite
from repro.experiments.config import TABLE2_VARIANTS
from repro.experiments.report import format_table


@dataclass
class Fig3Result:
    """Box-plot data per technique variant."""

    reports: dict  # variant name -> SpaceOverheadReport


def run(variants=TABLE2_VARIANTS) -> Fig3Result:
    """Instrument the whole suite with every variant."""
    suite = spec_suite()
    reports = {
        name: space_overhead_report(suite, parse_strategy(name))
        for name in variants
    }
    return Fig3Result(reports)


def format_result(result: Fig3Result) -> str:
    rows = []
    for name, report in result.reports.items():
        box = report.summary
        rows.append(
            (
                name,
                f"{box.minimum:.2%}",
                f"{box.q1:.2%}",
                f"{box.median:.2%}",
                f"{box.q3:.2%}",
                f"{box.maximum:.2%}",
                f"{report.mean_marks:.1f}",
                f"{report.max_mark_bytes}",
            )
        )
    return format_table(
        ("technique", "min", "q1", "median", "q3", "max", "marks/bench", "max mark B"),
        rows,
        title="Figure 3: space overhead (fraction of original binary)",
    )


if __name__ == "__main__":
    print(format_result(run()))
