"""Additional experiments the paper reports in prose.

* :func:`lookahead_sweep` — §IV-C2: "less lookahead gives higher
  throughput but at a significant cost in fairness."
* :func:`min_size_sweep` — §IV-C4: "considering smaller blocks and
  intervals generally results in higher throughput" (at overhead cost).
* :func:`atom_comparison` — §III: binaries instrumented with the tuned
  framework execute ~10x faster than ATOM-style general instrumentation
  (measured as per-block probe cost for every-block insertion).
* :func:`three_core_speedup` — §VII: on a 3-core (2 fast, 1 slow) AMP
  "performance results for our technique are similar (e.g. 32% speedup)."
* :func:`many_core_speedup` — §VI-C: grouping cores into types keeps the
  technique viable on larger AMPs.
* :func:`multithreaded_comparison` — §VI-A: threads of one process share
  the binary's phase marks and tuning state, so multi-threaded
  applications work unmodified.
* :func:`feedback_adaptation` — §VI-B: "the workload on a system may
  change the perceived characteristics of the individual cores ...
  simple feedback mechanisms can be added"; compares the one-shot
  runtime against the re-sampling feedback runtime under a mid-run
  workload shock.
* :func:`typing_accuracy` — §II-A3: the static block typer
  "miss-classifies only about 15% of loops" against observed behaviour.
* :func:`fault_resilience` — robustness extension: sweep the injected
  fault rate (counter failures, corrupt reads, affinity errors,
  hotplug, DVFS — :mod:`repro.sim.faults`) and measure how gracefully
  the hardened runtime's throughput advantage degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.annotate import annotate_program
from repro.analysis.block_typing import ProfileBlockTyper, StaticBlockTyper
from repro.analysis.loop_summary import summarize_loops
from repro.instrument.atom_baseline import AtomInstrumenter, ATOM_PROBE_CYCLES
from repro.instrument.phase_mark import MARK_FIRE_CYCLES
from repro.metrics.throughput import throughput_improvement
from repro.metrics.fairness import percent_decrease
from repro.sim.machine import core2quad_amp, many_core_amp, three_core_amp
from repro.workloads.spec import spec_suite
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_tasks
from repro.experiments.runner import (
    make_workload,
    run_baseline,
    run_technique,
    run_technique_point,
)
from repro.experiments.report import format_series, format_table


# -- §IV-C2: lookahead depth ---------------------------------------------------

@dataclass
class SweepResult:
    xs: tuple
    throughput: list
    max_stretch_decrease: list
    label: str


def _strategy_sweep(config, workload, baseline, strategies, jobs, log):
    """Fan a list of strategy names out over the harness; collect the
    throughput/fairness deltas each sweep reports."""
    tuned_runs = run_tasks(
        run_technique_point,
        [(config, strategy, workload, None) for strategy in strategies],
        jobs=jobs,
        log=log,
        labels=list(strategies),
    )
    throughputs, fairness = [], []
    for tuned in tuned_runs:
        throughputs.append(
            throughput_improvement(baseline.result, tuned.result, config.interval)
        )
        fairness.append(
            percent_decrease(
                baseline.fairness.max_stretch, tuned.fairness.max_stretch
            )
        )
    return throughputs, fairness


def lookahead_sweep(
    config: ExperimentConfig = None,
    depths=(0, 1, 2, 3),
    min_size: int = 15,
    jobs=None,
    log=None,
) -> SweepResult:
    """Throughput and fairness across lookahead depths (BB technique)."""
    config = config or ExperimentConfig.paper()
    workload = make_workload(config)
    baseline = run_baseline(config, workload)
    throughputs, fairness = _strategy_sweep(
        config,
        workload,
        baseline,
        [f"BB[{min_size},{depth}]" for depth in depths],
        jobs,
        log,
    )
    return SweepResult(tuple(depths), throughputs, fairness, "lookahead depth")


def min_size_sweep(
    config: ExperimentConfig = None,
    sizes=(30, 45, 60),
    technique: str = "Loop",
    jobs=None,
    log=None,
) -> SweepResult:
    """Throughput and fairness across minimum section sizes."""
    config = config or ExperimentConfig.paper()
    workload = make_workload(config)
    baseline = run_baseline(config, workload)
    throughputs, fairness = _strategy_sweep(
        config,
        workload,
        baseline,
        [f"{technique}[{size}]" for size in sizes],
        jobs,
        log,
    )
    return SweepResult(tuple(sizes), throughputs, fairness, "minimum size")


def format_sweep(result: SweepResult) -> str:
    rows = [
        (str(x), f"{t:+.2f}", f"{f:+.2f}")
        for x, t, f in zip(result.xs, result.throughput, result.max_stretch_decrease)
    ]
    return format_table(
        (result.label, "throughput %", "max-stretch %"),
        rows,
        title=f"Sweep over {result.label}",
    )


# -- §III: ATOM comparison ------------------------------------------------------

@dataclass
class AtomComparisonRow:
    benchmark: str
    atom_probe_bytes: int
    atom_probes: int
    mark_bytes: int
    marks: int
    dynamic_cost_ratio: float


@dataclass
class AtomComparisonResult:
    rows: list

    def mean_dynamic_ratio(self) -> float:
        return sum(r.dynamic_cost_ratio for r in self.rows) / len(self.rows)


def atom_comparison(min_size: int = 45) -> AtomComparisonResult:
    """Per-probe dynamic cost of ATOM-style vs tuned instrumentation.

    The paper measured a 10x execution-speed difference when inserting
    code before every basic block; the fragments' per-execution cycle
    costs carry that ratio (full register save/restore + generic callout
    vs specialized jump + few pushes).
    """
    from repro.instrument.marker import LoopStrategy
    from repro.instrument.rewriter import instrument

    atom = AtomInstrumenter()
    rows = []
    for benchmark in spec_suite():
        atom_result = atom.instrument(benchmark.program)
        tuned = instrument(benchmark.program, LoopStrategy(min_size))
        rows.append(
            AtomComparisonRow(
                benchmark.name,
                atom_result.added_bytes,
                atom_result.probe_count,
                tuned.added_bytes,
                len(tuned.marks),
                ATOM_PROBE_CYCLES / MARK_FIRE_CYCLES,
            )
        )
    return AtomComparisonResult(rows)


def format_atom(result: AtomComparisonResult) -> str:
    rows = [
        (
            r.benchmark,
            f"{r.atom_probes}",
            f"{r.atom_probe_bytes}",
            f"{r.marks}",
            f"{r.mark_bytes}",
            f"{r.dynamic_cost_ratio:.1f}x",
        )
        for r in result.rows
    ]
    return format_table(
        ("benchmark", "ATOM probes", "ATOM bytes", "marks", "mark bytes", "per-probe cost"),
        rows,
        title="ATOM-style vs phase-mark instrumentation (Section III)",
    )


# -- §VII: the 3-core AMP --------------------------------------------------------

@dataclass
class ThreeCoreResult:
    average_time_decrease: float
    throughput_improvement: float
    max_stretch_decrease: float


def three_core_speedup(
    config: ExperimentConfig = None, strategy: str = "Loop[45]"
) -> ThreeCoreResult:
    """Run the standard comparison on the 2-fast/1-slow machine."""
    config = (config or ExperimentConfig.paper()).with_(
        machine=three_core_amp()
    )
    workload = make_workload(config)
    baseline = run_baseline(config, workload)
    tuned = run_technique(config, strategy, workload=workload)
    comparison = tuned.fairness.versus(baseline.fairness)
    return ThreeCoreResult(
        comparison.average_time_decrease,
        throughput_improvement(baseline.result, tuned.result, config.interval),
        comparison.max_stretch_decrease,
    )


def many_core_speedup(
    config: ExperimentConfig = None,
    strategy: str = "Loop[45]",
    fast_cores: int = 4,
    slow_cores: int = 4,
) -> ThreeCoreResult:
    """Section VI-C: the standard comparison on a larger AMP.

    The runtime explores and assigns core *types*, so its monitoring
    cost does not grow with core count — the paper's proposed answer to
    the many-core scalability concern.
    """
    base = config or ExperimentConfig.paper()
    config = base.with_(
        machine=many_core_amp(fast_cores, slow_cores),
        slots=max(base.slots, 2 * (fast_cores + slow_cores)),
    )
    workload = make_workload(config)
    baseline = run_baseline(config, workload)
    tuned = run_technique(config, strategy, workload=workload)
    comparison = tuned.fairness.versus(baseline.fairness)
    return ThreeCoreResult(
        comparison.average_time_decrease,
        throughput_improvement(baseline.result, tuned.result, config.interval),
        comparison.max_stretch_decrease,
    )


# -- §VI-A: multi-threaded applications -----------------------------------------

@dataclass
class MultithreadedResult:
    """Tuned vs stock completion of one multi-threaded application."""

    baseline_makespan: float
    tuned_makespan: float
    decisions_shared: bool
    total_switches: float

    @property
    def makespan_decrease(self) -> float:
        return percent_decrease(self.baseline_makespan, self.tuned_makespan)


def multithreaded_comparison(
    threads: int = 2, strategy: str = "Loop[45]", delta: float = 0.12
) -> MultithreadedResult:
    """Run one multi-threaded phased application stock vs tuned.

    Threads share one tuning state (the marks' descriptor data lives in
    the process image), so a phase type decided by any thread steers all
    of them.  The machine also carries two streaming background jobs —
    segregation only matters on a loaded machine.
    """
    from repro.instrument.marker import parse_strategy
    from repro.sim.executor import Simulation
    from repro.sim.process import SimProcess, Trace, spawn_thread_group
    from repro.tuning.pipeline import baseline_binary, tune_program
    from repro.tuning.runtime import PhaseTuningRuntime
    from repro.workloads.spec import spec_benchmark

    machine = core2quad_amp()
    bench = spec_benchmark("172.mgrid")
    tuned = tune_program(
        bench.program, parse_strategy(strategy), machine, bench.spec
    )
    tuned_trace = tuned.tuned_trace
    stock_trace = tuned.baseline_trace
    streamer = spec_benchmark("459.GemsFDTD")
    streamer_trace, _ = baseline_binary(
        streamer.program, machine, streamer.spec
    )

    def run(trace_template, runtime):
        simulation = Simulation(machine, runtime=runtime)
        group = spawn_thread_group(
            1,
            bench.name,
            [Trace(trace_template.nodes) for _ in range(threads)],
            machine.all_cores_mask,
            isolated_time=1.0,
        )
        for thread in group:
            simulation.add_process(thread, 0.0)
        for pid in (100, 101):
            simulation.add_process(
                SimProcess(
                    pid, "bg", Trace(streamer_trace.nodes),
                    machine.all_cores_mask, isolated_time=1.0,
                ),
                0.0,
            )
        simulation.run(100_000.0)
        makespan = max(t.completion for t in group)
        return makespan, group

    baseline_makespan, _ = run(stock_trace, None)
    runtime = PhaseTuningRuntime(machine, delta)
    tuned_makespan, group = run(tuned_trace, runtime)
    shared = all(
        thread.tuner_state is group[0].tuner_state for thread in group
    )
    switches = sum(t.stats.switches for t in group)
    return MultithreadedResult(
        baseline_makespan, tuned_makespan, shared, switches
    )


# -- §VI-B: feedback adaptation ---------------------------------------------------

@dataclass
class FeedbackResult:
    """Post-shock progress of a long-running process, one-shot vs
    feedback-adaptive tuning."""

    standard_instructions: float
    feedback_instructions: float
    resamples: int

    @property
    def feedback_gain(self) -> float:
        if self.standard_instructions <= 0:
            return 0.0
        return 100.0 * (
            self.feedback_instructions - self.standard_instructions
        ) / self.standard_instructions


def feedback_adaptation(
    shock_time: float = 2.0,
    horizon: float = 25.0,
    resample_after: int = 40,
    delta: float = 0.12,
) -> FeedbackResult:
    """Section VI-B: adapt when the cores' perceived behaviour changes.

    A long-running phased process tunes itself on a quiet machine; at
    ``shock_time`` two streaming hogs arrive pinned to the fast pair and
    pollute its shared L2, so decisions made pre-shock go stale.  The
    one-shot runtime keeps them; the feedback runtime re-samples every
    ``resample_after`` firings and can move away.  Returns the tagged
    process's instructions retired within the horizon under both.
    """
    from repro.instrument.marker import LoopStrategy
    from repro.sim.executor import Simulation
    from repro.sim.process import SimProcess, Trace
    from repro.tuning.pipeline import baseline_binary, tune_program
    from repro.tuning.runtime import PhaseTuningRuntime
    from repro.workloads.synthetic import (
        PhaseSpec,
        build_benchmark,
        cache_kernel,
        stream_kernel,
    )

    machine = core2quad_amp()

    # Long enough that most of the victim's life is post-shock.
    victim = build_benchmark(
        "victim",
        [
            PhaseSpec("hot", cache_kernel(8, 9), 40_000),
            PhaseSpec("cool", stream_kernel(12, 6), 8_000),
        ],
        outer_trips=40_000,
        cold_procs=2,
    )
    victim_trace = tune_program(
        victim.program, LoopStrategy(20), machine, victim.spec
    ).tuned_trace

    hog = build_benchmark(
        "hog",
        [PhaseSpec("burn", stream_kernel(12, 6), 2_000_000)],
        outer_trips=200,
        cold_procs=0,
    )
    hog_trace, _ = baseline_binary(hog.program, machine, hog.spec)

    def run(runtime):
        simulation = Simulation(machine, runtime=runtime)
        tagged = SimProcess(
            1, "victim", Trace(victim_trace.nodes),
            machine.all_cores_mask, isolated_time=1.0,
        )
        simulation.add_process(tagged, 0.0)
        fast_mask = machine.affinity_of_type(machine.core_types()[0])
        for pid in (2, 3):
            simulation.add_process(
                SimProcess(
                    pid, "hog", Trace(hog_trace.nodes), fast_mask,
                    isolated_time=1.0,
                ),
                shock_time,
            )
        simulation.run(horizon)
        return tagged

    standard = run(PhaseTuningRuntime(machine, delta))
    feedback_runtime = PhaseTuningRuntime(
        machine, delta, resample_after=resample_after
    )
    feedback = run(feedback_runtime)
    return FeedbackResult(
        standard.stats.instructions,
        feedback.stats.instructions,
        feedback_runtime.resamples,
    )


# -- §II-A3: static typing accuracy ------------------------------------------------

@dataclass
class TypingAccuracyResult:
    total_loops: int
    misclassified: int

    @property
    def error_rate(self) -> float:
        if self.total_loops == 0:
            return 0.0
        return self.misclassified / self.total_loops


def typing_accuracy(ipc_threshold: float = 0.1) -> TypingAccuracyResult:
    """Compare static (k-means) loop types against profile-derived ones.

    Mirrors Section II-A3's protocol: type blocks statically, summarize
    loops with Algorithm 1, and compare the dominant loop types against
    the typing obtained from per-core execution profiles.  The paper
    reports ~15% of loops misclassified.
    """
    machine = core2quad_amp()
    static_typer = StaticBlockTyper(num_types=2)
    profile_typer = ProfileBlockTyper(machine, ipc_threshold)

    total = 0
    wrong = 0
    for benchmark in spec_suite():
        program = benchmark.program
        static_summary = summarize_loops(
            annotate_program(program, static_typer.type_blocks(program))
        )
        profile_summary = summarize_loops(
            annotate_program(program, profile_typer.type_blocks(program))
        )
        for uid, static_loop in static_summary.all_loops.items():
            profile_loop = profile_summary.all_loops.get(uid)
            if profile_loop is None or static_loop.dominant_type is None:
                continue
            total += 1
            if static_loop.dominant_type != profile_loop.dominant_type:
                wrong += 1
    return TypingAccuracyResult(total, wrong)


# -- robustness: fault-rate sweep -------------------------------------------------

#: Hardened-runtime settings used at every fault rate (including 0) so
#: the sweep varies exactly one thing: the injected fault rate.
HARDENED_RUNTIME_KWARGS = dict(
    samples_per_type=3,
    max_monitor_retries=16,
    max_affinity_failures=4,
)


@dataclass
class FaultResilienceRow:
    """One fault-rate point of the resilience sweep.

    Attributes:
        rate: the abstract fault rate fed to
            :meth:`~repro.sim.faults.FaultPlan.scaled`.
        baseline_throughput: stock-scheduler instructions within the
            interval, under the same fault plan.
        tuned_throughput: hardened-runtime instructions.
        improvement: tuned-over-baseline throughput improvement (%).
        degradations: degradation-log entries the runtime recorded.
        invalidations: decided assignments discarded after hotplug/DVFS.
        degraded_decisions: phase types that fell back to FREE after
            exhausting counter retries.
        affinity_errors: failed affinity syscalls observed.
        rejected_samples: non-finite/non-positive IPC readings dropped.
    """

    rate: float
    baseline_throughput: float
    tuned_throughput: float
    improvement: float
    degradations: int
    invalidations: int
    degraded_decisions: int
    affinity_errors: int
    rejected_samples: int


@dataclass
class FaultResilienceResult:
    rows: list

    @property
    def rates(self) -> tuple:
        return tuple(row.rate for row in self.rows)

    @property
    def improvements(self) -> list:
        return [row.improvement for row in self.rows]


def _fault_resilience_point(task: tuple) -> FaultResilienceRow:
    """Harness worker: baseline + hardened-tuned run under one plan."""
    from repro.sim.checkpoint import task_checkpoint_manager
    from repro.sim.faults import FaultPlan
    from repro.tuning.runtime import PhaseTuningRuntime

    config, strategy, workload, rate, seed = task
    machine = config.resolved_machine()
    plan = FaultPlan.scaled(rate, machine, config.interval, seed=seed)
    # Two simulations in one task: each checkpoints into its own subdir
    # so neither resumes from the other's snapshot.
    baseline = run_baseline(
        config,
        workload,
        faults=plan,
        checkpoint=task_checkpoint_manager("baseline"),
    )
    runtime = PhaseTuningRuntime(
        machine,
        config.ipc_threshold,
        tie_policy=config.tie_policy,
        **HARDENED_RUNTIME_KWARGS,
    )
    tuned = run_technique(
        config,
        strategy,
        workload=workload,
        runtime=runtime,
        faults=plan,
        checkpoint=task_checkpoint_manager("tuned"),
    )
    # On a checkpoint resume the snapshot's runtime (not the fresh one
    # built above) accumulated the tuning statistics.
    runtime = tuned.runtime if tuned.runtime is not None else runtime
    return FaultResilienceRow(
        rate,
        baseline.instructions,
        tuned.instructions,
        throughput_improvement(
            baseline.result, tuned.result, config.interval
        ),
        len(runtime.degradation_log),
        runtime.invalidations,
        runtime.degraded_decisions,
        runtime.affinity_errors,
        runtime.rejected_samples,
    )


def fault_resilience(
    config: ExperimentConfig = None,
    rates=(0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3),
    strategy: str = "Loop[45]",
    seed: int = 7,
    jobs=None,
    log=None,
) -> FaultResilienceResult:
    """Sweep the injected fault rate; measure graceful degradation.

    At every rate (including 0) both runs execute under the *same*
    seeded :class:`~repro.sim.faults.FaultPlan` and the tuned run uses
    the same hardened runtime settings, so the only independent
    variable is the fault rate.  A robust runtime keeps a positive
    throughput improvement that shrinks smoothly as the machine gets
    more hostile — no crash, no cliff to zero.
    """
    from repro.experiments.harness import derive_seed

    config = config or ExperimentConfig.paper()
    workload = make_workload(config)
    tasks = [
        (config, strategy, workload, rate, derive_seed(seed, "fault", rate))
        for rate in rates
    ]
    rows = run_tasks(
        _fault_resilience_point,
        tasks,
        jobs=jobs,
        log=log,
        labels=[f"fault rate {rate:g}" for rate in rates],
    )
    return FaultResilienceResult(list(rows))


def format_fault_resilience(result: FaultResilienceResult) -> str:
    rows = [
        (
            f"{row.rate:g}",
            f"{row.baseline_throughput:.3e}",
            f"{row.tuned_throughput:.3e}",
            f"{row.improvement:+.2f}",
            f"{row.degradations}",
            f"{row.invalidations}",
            f"{row.degraded_decisions}",
        )
        for row in result.rows
    ]
    return format_table(
        (
            "fault rate",
            "stock instrs",
            "tuned instrs",
            "improvement %",
            "degradations",
            "re-explores",
            "FREE fallbacks",
        ),
        rows,
        title="Throughput improvement under fault injection",
    )


if __name__ == "__main__":
    print(format_atom(atom_comparison()))
    accuracy = typing_accuracy()
    print(
        f"\nTyping accuracy: {accuracy.misclassified}/{accuracy.total_loops} "
        f"loops misclassified ({accuracy.error_rate:.1%})"
    )
