"""Plain-text rendering of experiment results, paper-style."""

from __future__ import annotations


def format_table(headers, rows, title: str = "") -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(map(str, headers), widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(xs, ys, x_label: str, y_label: str, title: str = "") -> str:
    """Render an (x, y) series as the rows a figure would plot."""
    rows = [(f"{x}", f"{y:+.2f}") for x, y in zip(xs, ys)]
    return format_table((x_label, y_label), rows, title)


def pct(value: float) -> str:
    """Render a percentage with Table 2's sign convention."""
    return f"{value:+.2f}"
