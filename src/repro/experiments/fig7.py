"""Figure 7: throughput under injected clustering error.

"To introduce this error, after determining the clustering of blocks, a
percentage of blocks were randomly selected and placed into the opposite
cluster ... With a 10% error we see almost no loss in performance and
with 20% error we still see a significant performance increase.  At 30%
error we see little performance improvement."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.block_typing import StaticBlockTyper, inject_clustering_error
from repro.metrics.throughput import throughput_improvement
from repro.sim.checkpoint import task_checkpoint_manager
from repro.workloads.spec import spec_benchmark
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_tasks
from repro.experiments.runner import make_workload, run_baseline, run_technique
from repro.experiments.report import format_series

DEFAULT_ERRORS = (0.0, 0.1, 0.2, 0.3)

#: Figure 7's fixed technique (same as Figure 6).
FIG7_STRATEGY = "BB[15,0]"


@dataclass
class Fig7Result:
    errors: tuple
    improvements: list
    strategy: str
    config: ExperimentConfig


def _point(task):
    """Harness worker: one error rate, overrides built in the worker."""
    config, workload, strategy, error, error_seed = task
    typer = StaticBlockTyper(num_types=2)
    overrides = {}
    for name in sorted(workload.benchmark_names()):
        typing = typer.type_blocks(spec_benchmark(name).program)
        overrides[name] = inject_clustering_error(typing, error, seed=error_seed)
    return run_technique(
        config,
        strategy,
        workload=workload,
        typing_overrides=overrides,
        checkpoint=task_checkpoint_manager(),
    )


def run(
    config: ExperimentConfig = None,
    errors=DEFAULT_ERRORS,
    strategy: str = FIG7_STRATEGY,
    error_seed: int = 7,
    jobs=None,
    log=None,
) -> Fig7Result:
    config = config or ExperimentConfig.paper()
    workload = make_workload(config)
    baseline = run_baseline(config, workload)
    tuned_runs = run_tasks(
        _point,
        [(config, workload, strategy, error, error_seed) for error in errors],
        jobs=jobs,
        log=log,
        labels=[f"error={error:.0%}" for error in errors],
    )
    improvements = [
        throughput_improvement(baseline.result, tuned.result, config.interval)
        for tuned in tuned_runs
    ]
    return Fig7Result(tuple(errors), improvements, strategy, config)


def format_result(result: Fig7Result) -> str:
    return format_series(
        [f"{e:.0%}" for e in result.errors],
        result.improvements,
        "clustering error",
        "throughput improvement %",
        title=(
            f"Figure 7: throughput vs clustering error "
            f"({result.strategy}, slots={result.config.slots})"
        ),
    )


if __name__ == "__main__":
    print(format_result(run()))
