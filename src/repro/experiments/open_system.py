"""Open-system experiment: latency under offered load, stock vs tuned.

The paper's closed-system experiments fix the number of simultaneous
jobs and measure throughput/fairness over an interval.  This experiment
asks the question a service operator would: at a given *offered load*
(arrival rate as a fraction of the machine's measured service
capacity), what latency does each scheduling technique deliver?  Jobs
arrive under a seeded Poisson process, a fraction are cancelled
mid-flight, and both techniques see the *identical* arrival,
class-mix, and cancellation schedules at every load point — the
open-system analogue of the paper's "same queues for each experiment"
methodology.

Reported per load point and technique: p50/p95/p99 sojourn time, p95
wait time, time-weighted mean queue depth, throughput, and whether the
point saturated (queue growing without bound; see
:attr:`~repro.sim.opensys.OpenSystemResult.saturated`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.opensys import (
    OpenSystemPlan,
    OpenSystemResult,
    OpenSystemRun,
    service_capacity,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_tasks
from repro.experiments.report import format_table

#: Offered-load grid: arrival rate as a fraction of measured capacity.
DEFAULT_LOAD_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)

#: The job mix drawn from on each arrival (uniform over this tuple).
DEFAULT_CLASSES = ("164.gzip", "179.art", "183.equake", "429.mcf")

#: Fraction of arrivals later cancelled (exercises the departure path
#: under load; both techniques see identical cancellations).
DEFAULT_CANCEL_FRACTION = 0.05

#: The technique compared against stock (the paper's default strategy).
OPEN_SYSTEM_STRATEGY = "BB[15,0]"


@dataclass
class OpenSystemExperimentResult:
    fractions: tuple
    capacity: float
    stock: list  # OpenSystemResult per fraction
    tuned: list  # OpenSystemResult per fraction
    strategy: str
    config: ExperimentConfig


def base_plan(config: ExperimentConfig, classes=DEFAULT_CLASSES) -> OpenSystemPlan:
    """The load-point plan template: rate is filled in per point, and
    every stochastic schedule keys off the experiment seed."""
    return OpenSystemPlan(
        seed=config.seed,
        rate=0.0,
        horizon=config.interval,
        classes=tuple(classes),
        cancel_fraction=DEFAULT_CANCEL_FRACTION,
    )


def run_open_system_point(task: tuple) -> OpenSystemResult:
    """Harness worker: one (technique, load point) run from a picklable
    task tuple ``(config, strategy_name_or_None, plan)``; module level
    so :func:`repro.experiments.harness.run_tasks` can ship it to pool
    workers."""
    config, strategy_name, plan = task
    machine = config.resolved_machine()
    if strategy_name is None:
        run = OpenSystemRun(plan, machine)
        result = run.run(
            contention_alpha=config.contention_alpha,
            pollution_beta=config.pollution_beta,
        )
    else:
        run = OpenSystemRun(plan, machine, config.strategy(strategy_name))
        result = run.run(
            runtime=config.make_runtime(),
            contention_alpha=config.contention_alpha,
            pollution_beta=config.pollution_beta,
        )
    # The raw simulation result carries whole process objects (traces,
    # cursors); strip it before the outcome crosses the pool boundary.
    result.sim_result = None
    return result


def run(
    config: ExperimentConfig = None,
    fractions=DEFAULT_LOAD_FRACTIONS,
    strategy: str = OPEN_SYSTEM_STRATEGY,
    classes=DEFAULT_CLASSES,
    jobs=None,
    log=None,
) -> OpenSystemExperimentResult:
    config = config or ExperimentConfig.paper()
    machine = config.resolved_machine()
    plan0 = base_plan(config, classes)
    # Measure capacity once, from the stock pipeline's isolated service
    # times (also primes the pipeline cache for the point runs).
    probe = OpenSystemRun(replace(plan0, rate=1.0), machine)
    capacity = service_capacity(machine, probe.mean_isolated_seconds())
    tasks = []
    labels = []
    for name in (None, strategy):
        for fraction in fractions:
            tasks.append(
                (config, name, replace(plan0, rate=fraction * capacity))
            )
            labels.append(f"{name or 'linux'}@{fraction:g}")
    results = run_tasks(
        run_open_system_point, tasks, jobs=jobs, log=log, labels=labels
    )
    n = len(fractions)
    return OpenSystemExperimentResult(
        tuple(fractions),
        capacity,
        list(results[:n]),
        list(results[n:]),
        strategy,
        config,
    )


def _rows(fractions, results):
    rows = []
    for fraction, res in zip(fractions, results):
        rows.append(
            (
                f"{fraction:g}",
                f"{res.sojourn.quantile(0.5):.2f}",
                f"{res.sojourn.quantile(0.95):.2f}",
                f"{res.sojourn.quantile(0.99):.2f}",
                f"{res.wait.quantile(0.95):.2f}",
                f"{res.depth.mean(0.0, res.horizon):.2f}",
                f"{res.throughput:.3f}",
                "yes" if res.saturated else "no",
            )
        )
    return rows


_HEADERS = (
    "load",
    "p50 sojourn",
    "p95 sojourn",
    "p99 sojourn",
    "p95 wait",
    "mean depth",
    "jobs/s",
    "saturated",
)


def format_result(result: OpenSystemExperimentResult) -> str:
    title = (
        f"Open system: latency vs offered load "
        f"(capacity {result.capacity:.3f} jobs/s, "
        f"horizon {result.config.interval:g} s)"
    )
    parts = [
        format_table(
            _HEADERS, _rows(result.fractions, result.stock),
            title=f"{title}\n[linux]",
        ),
        format_table(
            _HEADERS, _rows(result.fractions, result.tuned),
            title=f"[{result.strategy}]",
        ),
    ]
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(format_result(run()))
