"""Networked transport for the sweep broker: HTTP client + server.

The claim/lease broker of :mod:`repro.experiments.broker` requires a
shared filesystem; this module puts the same queue on the network so a
fleet with nothing in common but an HTTP route can run one sweep.  A
stdlib :class:`~http.server.ThreadingHTTPServer` (the same shape as
:mod:`repro.store.server`) fronts one :class:`Broker` — every state
transition still runs through the broker's ``BEGIN IMMEDIATE``
transactions, so the server adds reach, never new race conditions —
and :class:`HTTPBroker` is the drop-in client: it exposes the claim/
heartbeat/complete/fail/replay surface of :class:`Broker`, so
:func:`~repro.experiments.broker.worker_loop`, the harness's broker
backend, and the CLI verbs work against either transport unchanged
(:func:`~repro.experiments.broker.connect` picks by target string).

Robustness model, layer by layer:

bounded timeouts + retries
    Every request carries a timeout (``REPRO_BROKER_TIMEOUT``) and a
    bounded exponential-backoff-with-jitter retry budget
    (``REPRO_BROKER_RETRIES``); a hard-down server costs a few bounded
    timeouts, never a hang.

idempotency keys
    Every mutating request carries a fresh ``Idempotency-Key`` header,
    reused verbatim across its retries.  The server records the
    response it served for each key (durably, in ``queue.db``), so a
    retry after a dropped response replays the original outcome instead
    of re-executing — a retried ``claim`` cannot double-lease, and a
    retried ``complete`` converges on the digest-named file-before-row
    discipline the broker already uses for racing local writers.

circuit breaker
    The first exhausted retry budget trips a cooldown breaker (shared
    implementation with :class:`repro.store.cas.HTTPStore`); until the
    cooldown (``REPRO_BROKER_COOLDOWN``) elapses every call raises
    :class:`~repro.errors.BrokerUnavailableError` instantly, no
    network.  A dead server costs a worker at most one timeout per
    cooldown window.

graceful degradation
    ``BrokerUnavailableError`` is a :class:`~repro.errors.BrokerError`,
    so ``run_tasks`` falls back to the single-host pool; workers poll
    through outages (heartbeat failures are absorbed — the lease
    simply lapses if the outage outlives the TTL, and the re-offered
    task's recomputed result dedupes by content key); and abandoned
    operations surface a ``broker-down`` taxonomy reason
    (:func:`repro.taxonomy.broker_down_reason`) — never a hung or
    corrupted sweep.

auth
    Bearer-token + readonly enforcement via
    :class:`repro.net.AuthPolicy`, shared with the store server:
    ``--token`` (or ``REPRO_AUTH_TOKEN``) rejects unauthenticated
    requests with 401, ``--readonly`` rejects mutations with 403.

Endpoints (all JSON unless noted)::

    GET  /api/ping                     server config handshake
    GET  /api/counts|sweeps|traced|quarantined|results|events|workers
    GET  /api/sessions|diff            results-DB surfaces
    GET  /api/payload/<sweep>/<key>    raw result bytes (client verifies)
    POST /api/enqueue|claim|heartbeat|complete|fail|reclaim|requeue
    POST /api/session|bless            results-DB mutations
"""

from __future__ import annotations

import base64
import hashlib
import http.client
import json
import os
import pickle
import re
import tempfile
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import BrokerError, BrokerUnavailableError, LeaseLostError
from repro.experiments.broker import (
    BROKER_URL_ENV,
    Broker,
    DEFAULT_MAX_ATTEMPTS,
    Lease,
    _resolve_priority,
    default_worker_id,
    prepare_enqueue,
)
from repro.experiments.results_db import ResultsDB, format_diff
from repro.net import (
    AuthPolicy,
    CooldownBreaker,
    RetryPolicy,
    bearer_headers,
    resolve_token,
)
from repro.store import default_store
from repro.taxonomy import broker_down_reason
from repro.telemetry.context import current_recorder

__all__ = [
    "BROKER_COOLDOWN_ENV",
    "BROKER_RETRIES_ENV",
    "BROKER_TIMEOUT_ENV",
    "BROKER_URL_ENV",
    "BrokerRequestHandler",
    "DEFAULT_BROKER_COOLDOWN",
    "DEFAULT_BROKER_RETRIES",
    "DEFAULT_BROKER_TIMEOUT",
    "HTTPBroker",
    "make_broker_server",
    "serve",
]

#: Per-request timeout (seconds) for the HTTP broker transport.
BROKER_TIMEOUT_ENV = "REPRO_BROKER_TIMEOUT"
DEFAULT_BROKER_TIMEOUT = 5.0

#: Seconds the transport's breaker stays open after the retry budget is
#: spent; within the window every call fails instantly, no network.
#: Shorter than the store's cooldown — the broker is the work source,
#: so workers should re-probe a recovering server promptly.
BROKER_COOLDOWN_ENV = "REPRO_BROKER_COOLDOWN"
DEFAULT_BROKER_COOLDOWN = 5.0

#: Tries per logical request (including the first).
BROKER_RETRIES_ENV = "REPRO_BROKER_RETRIES"
DEFAULT_BROKER_RETRIES = 3

#: Refuse request bodies above this size (mirrors the store server).
MAX_BODY = 256 * 1024 * 1024

_PAYLOAD_RE = re.compile(
    r"^/api/payload/([A-Za-z0-9._-]{1,80})/([0-9a-f]{8,64})$"
)


def _env_number(name: str, cast, fallback):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return fallback
    try:
        return cast(raw)
    except ValueError:
        raise BrokerError(f"{name} must be a number, got {raw!r}") from None


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


# ---------------------------------------------------------------------------
# client
# ---------------------------------------------------------------------------


class HTTPBroker:
    """Client for one broker server; drop-in for :class:`Broker`.

    Lease semantics — TTL, attempt budget, backoff — are governed by
    the *server's* broker (it runs the transactions); the constructor
    handshakes ``/api/ping`` and adopts the server's values, so the
    heartbeat cadence and supervision math on this side match what the
    queue actually enforces.  The ``lease_ttl``/``max_attempts``/
    ``backoff_base`` arguments are accepted for signature parity with
    :class:`Broker` and intentionally ignored.

    Raises:
        BrokerUnavailableError: the server cannot be reached (after the
            transport's bounded retries) — ``run_tasks`` degrades to
            the single-host pool on this.
        BrokerError: the server refused us (401/403) or rejected a
            request as invalid; not retried.
    """

    def __init__(
        self,
        url: str,
        lease_ttl: Optional[float] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: Optional[float] = None,
        timeout: Optional[float] = None,
        cooldown: Optional[float] = None,
        retries: Optional[int] = None,
        token: Optional[str] = None,
    ) -> None:
        if not url.startswith(("http://", "https://")):
            raise BrokerError(f"not an http(s) broker URL: {url!r}")
        self.url = url.rstrip("/")
        self.directory = None
        if timeout is None:
            timeout = _env_number(
                BROKER_TIMEOUT_ENV, float, DEFAULT_BROKER_TIMEOUT
            )
        if cooldown is None:
            cooldown = _env_number(
                BROKER_COOLDOWN_ENV, float, DEFAULT_BROKER_COOLDOWN
            )
        if retries is None:
            retries = _env_number(
                BROKER_RETRIES_ENV, int, DEFAULT_BROKER_RETRIES
            )
        self.timeout = float(timeout)
        self._breaker = CooldownBreaker(float(cooldown))
        self._retry = RetryPolicy(attempts=int(retries), base=0.1, cap=2.0)
        self._headers = bearer_headers(resolve_token(token))
        self._traced: dict = {}
        self._telemetry_run = None
        # Handshake: adopt the queue's actual lease semantics.
        cfg = self._call("/api/ping")
        self.lease_ttl = float(cfg.get("lease_ttl", 30.0))
        self.max_attempts = int(cfg.get("max_attempts", max_attempts))
        self.backoff_base = float(cfg.get("backoff_base", 0.5))
        self.readonly = bool(cfg.get("readonly", False))

    @property
    def target(self) -> str:
        return self.url

    # -- transport ----------------------------------------------------------

    def _note(self, name: str, kind: Optional[str] = None,
              detail: Optional[str] = None) -> None:
        rec = current_recorder()
        if not rec.enabled:
            return
        rec.incr(name)
        if kind is not None and rec.wants("broker"):
            if self._telemetry_run is None:
                self._telemetry_run = rec.begin_run(
                    f"broker-net:{default_worker_id()}", clock="wall"
                )
            rec.instant(
                "broker", kind, time.perf_counter(),
                run=self._telemetry_run,
                args={"url": self.url, "detail": detail},
            )

    def _trip(self, detail: str) -> None:
        self._breaker.trip()
        self._note("broker.net.breaker_trip", "breaker_trip", detail)

    def breaker_state(self) -> str:
        """Human-readable breaker state for status surfaces."""
        remaining = self._breaker.remaining()
        if remaining > 0:
            return f"open ({remaining:.0f}s until next probe)"
        return "closed"

    def _request(self, method: str, path: str, body: Optional[bytes],
                 headers: dict) -> bytes:
        req = urllib.request.Request(
            self.url + path, data=body, method=method
        )
        for name, value in headers.items():
            req.add_header(name, value)
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return resp.read()

    def _call(self, path: str, payload: Optional[dict] = None,
              raw: bool = False):
        """One logical request with retries, idempotency, breaker.

        GETs (``payload is None``) are naturally idempotent; POSTs
        carry a fresh ``Idempotency-Key`` reused across retries so the
        server replays (never re-executes) a mutation whose response
        was lost in flight.
        """
        mutating = payload is not None
        headers = dict(self._headers)
        body = None
        if mutating:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
            headers["Idempotency-Key"] = os.urandom(16).hex()
        if self._breaker.tripped:
            raise BrokerUnavailableError(
                broker_down_reason(
                    self.url,
                    f"circuit breaker {self.breaker_state()}",
                )
            )
        detail = "unreachable"
        sleeps = list(self._retry.delays()) + [None]
        for sleep in sleeps:
            try:
                data = self._request(
                    "POST" if mutating else "GET", path, body, headers
                )
            except urllib.error.HTTPError as exc:
                info = b""
                try:
                    info = exc.read()
                except Exception:
                    pass
                exc.close()
                why = _error_detail(info) or f"HTTP {exc.code}"
                if exc.code in (401, 403):
                    raise BrokerError(
                        f"broker {self.url} refused the request: "
                        f"{exc.code} ({why})"
                    ) from None
                if exc.code == 409:
                    raise LeaseLostError(why) from None
                if exc.code == 404 and raw:
                    return None
                if exc.code < 500:
                    raise BrokerError(
                        f"broker {self.url} rejected {path}: "
                        f"{exc.code} ({why})"
                    ) from None
                detail = f"HTTP {exc.code} ({why})"
            except (OSError, urllib.error.URLError, TimeoutError,
                    http.client.HTTPException) as exc:
                detail = f"{type(exc).__name__}: {exc}" if str(exc) else (
                    type(exc).__name__
                )
            else:
                if raw:
                    return data
                try:
                    return json.loads(data.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    detail = "torn response (invalid JSON)"
            if sleep is None:
                break
            self._note("broker.net.retry", "retry", detail)
            time.sleep(sleep)
        self._trip(detail)
        raise BrokerUnavailableError(broker_down_reason(self.url, detail))

    def _get(self, path: str, **params):
        if params:
            clean = {k: v for k, v in params.items() if v is not None}
            if clean:
                path += "?" + urllib.parse.urlencode(clean)
        return self._call(path)

    # -- enqueue ------------------------------------------------------------

    def enqueue(
        self,
        fn: Callable,
        tasks: Sequence,
        labels: Optional[Sequence[str]] = None,
        sweep: Optional[str] = None,
        traced: bool = False,
        priority: Optional[int] = None,
    ) -> str:
        """Shred the sweep client-side (identical keys and sweep id to
        a filesystem enqueue) and submit it in one request."""
        ref, derived, items = prepare_enqueue(
            fn, tasks, labels=labels, traced=traced
        )
        out = self._call("/api/enqueue", {
            "ref": ref,
            "sweep": sweep or derived,
            "traced": bool(traced),
            "priority": _resolve_priority(priority),
            "items": [
                {"key": key, "label": label, "payload": _b64(payload)}
                for key, label, payload in items
            ],
        })
        return out["sweep"]

    # -- claim / lease ------------------------------------------------------

    def claim(self, worker: Optional[str] = None,
              now: Optional[float] = None) -> Optional[Lease]:
        worker = worker or default_worker_id()
        out = self._call("/api/claim", {"worker": worker})
        info = out.get("lease")
        if not info:
            return None
        return Lease(
            info["sweep"], int(info["index"]), info["key"], info["label"],
            _unb64(info["payload"]), int(info["attempt"]),
            float(info["deadline"]), info["worker"],
        )

    def heartbeat(self, lease: Lease, now: Optional[float] = None) -> float:
        out = self._call("/api/heartbeat", {
            "sweep": lease.sweep, "index": lease.index,
            "worker": lease.worker,
        })
        lease.deadline = float(out["deadline"])
        return lease.deadline

    def reclaim_expired(self, now: Optional[float] = None) -> list:
        out = self._call("/api/reclaim", {})
        return [tuple(row) for row in out.get("reclaimed", [])]

    # -- completion ---------------------------------------------------------

    def complete(self, lease: Lease, value, traced: bool = False,
                 now: Optional[float] = None) -> bool:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        out = self._call("/api/complete", {
            "sweep": lease.sweep, "index": lease.index, "key": lease.key,
            "label": lease.label, "worker": lease.worker,
            "traced": bool(traced), "value": _b64(payload),
        })
        return bool(out.get("recorded"))

    def fail(self, lease: Lease, error,
             now: Optional[float] = None) -> str:
        detail = f"{type(error).__name__}: {error}" if isinstance(
            error, BaseException
        ) else str(error)
        out = self._call("/api/fail", {
            "sweep": lease.sweep, "index": lease.index,
            "worker": lease.worker, "detail": detail,
        })
        return out["state"]

    # -- inspection / replay ------------------------------------------------

    def counts(self, sweep: Optional[str] = None) -> dict:
        out = self._get("/api/counts", sweep=sweep)
        return {
            state: int(out.get(state, 0))
            for state in ("pending", "leased", "done", "quarantined")
        }

    def sweeps(self) -> list:
        return [tuple(row) for row in self._get("/api/sweeps")["sweeps"]]

    def sweep_traced(self, sweep: str) -> bool:
        if sweep not in self._traced:
            self._traced[sweep] = bool(
                self._get("/api/traced", sweep=sweep)["traced"]
            )
        return self._traced[sweep]

    def quarantined(self, sweep: Optional[str] = None) -> list:
        out = self._get("/api/quarantined", sweep=sweep)
        return [tuple(row) for row in out["rows"]]

    def requeue_quarantined(self, sweep: Optional[str] = None) -> int:
        return int(self._call("/api/requeue", {"sweep": sweep})["count"])

    def settled(self, sweep: str) -> bool:
        c = self.counts(sweep)
        return c["pending"] == 0 and c["leased"] == 0

    def result_rows(self, sweep: str) -> list:
        out = self._get("/api/results", sweep=sweep)
        return [tuple(row) for row in out["label_rows"]]

    def result_digests(self, sweep: str) -> dict:
        return {label: sha for label, _key, sha in self.result_rows(sweep)}

    def replay(self, sweep: str, traced: bool = False) -> dict:
        """``{task index: value}`` with every payload digest-verified.

        Payloads resolve from the shared artifact store first (the
        broker mirrors completions there) and fall back to the server's
        ``/api/payload`` route; either way the bytes are verified
        against the recorded digest before unpickling, so a damaged
        transfer reads as "absent" (the task re-runs), never as
        silently wrong bytes.
        """
        info = self._get("/api/results", sweep=sweep)
        store = default_store()
        by_key = {}
        for key, digest, rec_traced in info["rows"]:
            if bool(rec_traced) != bool(traced):
                continue
            data = store.get_object(digest) if store is not None else None
            if data is None:
                data = self._call(f"/api/payload/{sweep}/{key}", raw=True)
                if data is not None and (
                    hashlib.sha256(data).hexdigest() != digest
                ):
                    data = None
                if data is not None and store is not None:
                    store.put_object(data)
            if data is None:
                continue
            try:
                by_key[key] = pickle.loads(data)
            except Exception:
                continue
        return {
            int(idx): by_key[key]
            for idx, key in info["index_keys"]
            if key in by_key
        }

    def events(self, sweep: Optional[str] = None, limit: int = 200) -> list:
        out = self._get("/api/events", sweep=sweep, limit=int(limit))
        return [tuple(row) for row in out["events"]]

    def active_workers(self, now: Optional[float] = None) -> list:
        return list(self._get("/api/workers")["workers"])

    def checkpoint_dir(self, key: str) -> str:
        """Local scratch for the task's checkpoints.  The server's
        ``ckpt/`` tree is not reachable over HTTP; cross-host resume
        still works because snapshots are published to the shared
        artifact store under the content key."""
        scope = hashlib.sha256(self.url.encode("utf-8")).hexdigest()[:12]
        return str(
            Path(tempfile.gettempdir())
            / f"repro-broker-net-{scope}" / "ckpt" / key
        )

    # -- results DB (server-side) -------------------------------------------

    def record_session(self, sweep: str, fn: str, total: int) -> int:
        out = self._call("/api/session", {
            "sweep": sweep, "fn": fn, "total": int(total),
            "host": default_worker_id(),
        })
        return int(out["session"])

    def sessions(self, limit: int = 50) -> list:
        out = self._get("/api/sessions", limit=int(limit))
        return [tuple(row) for row in out["sessions"]]

    def bless_all(self) -> dict:
        """Bless every settled sweep server-side (the DB lives next to
        the queue); returns ``{"blessed": [...], "skipped": [...]}``."""
        return self._call("/api/bless", {})

    def diff_info(self, sweep: str) -> dict:
        """Server-side golden diff: ``{"show": bool, "text": str}``."""
        return self._get("/api/diff", sweep=sweep)

    def close(self) -> None:
        pass


def _error_detail(body: bytes) -> str:
    try:
        parsed = json.loads(body.decode("utf-8"))
        return str(parsed.get("error", "")) if isinstance(
            parsed, dict
        ) else ""
    except (UnicodeDecodeError, ValueError):
        return ""


# ---------------------------------------------------------------------------
# server
# ---------------------------------------------------------------------------


class BrokerRequestHandler(BaseHTTPRequestHandler):
    """Maps the ``/api/*`` route table onto one shared :class:`Broker`
    (``self.server.broker``; SQLite connections are per-thread, so the
    threading server needs no extra locking — every transition is a
    ``BEGIN IMMEDIATE`` transaction exactly as on a shared filesystem).
    """

    protocol_version = "HTTP/1.1"
    verbose = False

    def log_message(self, fmt, *args):  # noqa: D102 - stdlib override
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    @property
    def broker(self) -> Broker:
        return self.server.broker

    @property
    def auth(self) -> AuthPolicy:
        return self.server.auth

    # -- plumbing -----------------------------------------------------------

    def _reply(self, code: int, body: bytes = b"",
               content_type: str = "application/json") -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _reply_json(self, code: int, payload) -> None:
        self._reply(
            code, json.dumps(payload, sort_keys=True).encode("utf-8")
        )

    def _guard(self, mutating: bool) -> bool:
        verdict = self.auth.check(
            self.headers.get("Authorization"), mutating
        )
        if verdict is None:
            return True
        code, why = verdict
        self._reply_json(code, {"error": why})
        return False

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > MAX_BODY:
            raise BrokerError(f"request body of {length} bytes refused")
        return self.rfile.read(length)

    def _params(self) -> dict:
        return dict(urllib.parse.parse_qsl(self.path.partition("?")[2]))

    # -- GET routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if not self._guard(mutating=False):
            return
        path = self.path.partition("?")[0]
        try:
            self._dispatch_get(path)
        except BrokerError as exc:
            self._reply_json(400, {"error": str(exc)})
        except Exception as exc:  # never let a handler kill the server
            self._reply_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

    do_HEAD = do_GET  # noqa: N815 - stdlib naming

    def _dispatch_get(self, path: str) -> None:
        broker = self.broker
        params = self._params()
        sweep = params.get("sweep")
        if path == "/api/ping":
            self._reply_json(200, {
                "ok": True,
                "readonly": self.auth.readonly,
                "lease_ttl": broker.lease_ttl,
                "max_attempts": broker.max_attempts,
                "backoff_base": broker.backoff_base,
            })
        elif path == "/api/counts":
            self._reply_json(200, broker.counts(sweep))
        elif path == "/api/sweeps":
            self._reply_json(200, {"sweeps": broker.sweeps()})
        elif path == "/api/traced":
            self._reply_json(
                200, {"traced": broker.sweep_traced(sweep or "")}
            )
        elif path == "/api/quarantined":
            self._reply_json(200, {"rows": broker.quarantined(sweep)})
        elif path == "/api/results":
            if not sweep:
                raise BrokerError("results needs ?sweep=")
            out = broker.replay_manifest(sweep)
            out["label_rows"] = [
                list(row) for row in broker.result_rows(sweep)
            ]
            self._reply_json(200, out)
        elif path == "/api/events":
            limit = int(params.get("limit", 200))
            self._reply_json(
                200, {"events": broker.events(sweep, limit=limit)}
            )
        elif path == "/api/workers":
            self._reply_json(200, {"workers": broker.active_workers()})
        elif path == "/api/sessions":
            limit = int(params.get("limit", 50))
            self._reply_json(
                200,
                {"sessions": self.server.results_db().sessions(limit=limit)},
            )
        elif path == "/api/diff":
            if not sweep:
                raise BrokerError("diff needs ?sweep=")
            self._reply_json(200, self._diff_info(sweep))
        else:
            match = _PAYLOAD_RE.match(path)
            if match:
                data = broker.result_payload(match.group(1), match.group(2))
                if data is None:
                    self._reply_json(404, {"error": "no such result"})
                else:
                    self._reply(
                        200, data, content_type="application/octet-stream"
                    )
                return
            self._reply_json(404, {"error": f"no such endpoint {path}"})

    def _diff_info(self, sweep: str) -> dict:
        broker = self.broker
        db = self.server.results_db()
        fn = None
        for row in broker.sweeps():
            if row[0] == sweep:
                fn = row[1]
                break
        if fn is None:
            raise BrokerError(f"no such sweep {sweep}")
        rows = broker.result_rows(sweep)
        show = bool(rows or db.golden_for(fn))
        text = format_diff(db.diff(fn, rows)) if show else ""
        return {"show": show, "text": text}

    # -- POST routes --------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if not self._guard(mutating=True):
            return
        path = self.path.partition("?")[0]
        handler = self._POST_ROUTES.get(path)
        if handler is None:
            self._reply_json(404, {"error": f"no such endpoint {path}"})
            return
        try:
            body = self._read_body()
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("not an object")
        except BrokerError as exc:
            self._reply_json(400, {"error": str(exc)})
            return
        except (UnicodeDecodeError, ValueError):
            self._reply_json(
                400, {"error": "request body must be a JSON object"}
            )
            return
        # Idempotency: a key we already served replays its recorded
        # response — the mutation itself is NOT re-executed, so a retry
        # after a dropped response converges instead of double-acting.
        idem = self.headers.get("Idempotency-Key")
        if idem:
            stored = self.broker.idempotent_response(idem)
            if stored is not None:
                self._reply(200, stored.encode("utf-8"))
                return
        try:
            status, out = handler(self, payload)
        except LeaseLostError as exc:
            status, out = 409, {"error": str(exc)}
        except BrokerError as exc:
            status, out = 400, {"error": str(exc)}
        except Exception as exc:  # surface as a retryable 500
            status, out = 500, {"error": f"{type(exc).__name__}: {exc}"}
        encoded = json.dumps(out, sort_keys=True).encode("utf-8")
        if idem and status == 200:
            # Record durably BEFORE the response leaves: if the client
            # saw our bytes, a replay of its key must exist.
            self.broker.store_idempotent(idem, encoded.decode("utf-8"))
        self._reply(status, encoded)

    def _post_enqueue(self, p: dict) -> tuple:
        items = [
            (item["key"], item["label"], _unb64(item["payload"]))
            for item in p.get("items", [])
        ]
        sweep = self.broker.enqueue_raw(
            str(p.get("ref", "?")), items, sweep=str(p["sweep"]),
            traced=bool(p.get("traced")),
            priority=int(p.get("priority", 0)),
        )
        return 200, {"sweep": sweep}

    def _post_claim(self, p: dict) -> tuple:
        lease = self.broker.claim(str(p.get("worker") or "") or None)
        if lease is None:
            return 200, {"lease": None}
        return 200, {"lease": {
            "sweep": lease.sweep, "index": lease.index, "key": lease.key,
            "label": lease.label, "payload": _b64(lease.payload),
            "attempt": lease.attempt, "deadline": lease.deadline,
            "worker": lease.worker,
        }}

    def _lease_shim(self, p: dict) -> Lease:
        return Lease(
            str(p["sweep"]), int(p["index"]), p.get("key", ""),
            p.get("label", ""), b"", int(p.get("attempt", 0)), 0.0,
            str(p.get("worker", "")),
        )

    def _post_heartbeat(self, p: dict) -> tuple:
        deadline = self.broker.heartbeat(self._lease_shim(p))
        return 200, {"deadline": deadline}

    def _post_complete(self, p: dict) -> tuple:
        recorded = self.broker.complete_raw(
            str(p["sweep"]), int(p["index"]), str(p["key"]),
            str(p.get("label", "")), str(p.get("worker", "")) or None,
            _unb64(p["value"]), traced=bool(p.get("traced")),
        )
        return 200, {"recorded": recorded}

    def _post_fail(self, p: dict) -> tuple:
        state = self.broker.fail(
            self._lease_shim(p), str(p.get("detail", "unknown error"))
        )
        return 200, {"state": state}

    def _post_reclaim(self, p: dict) -> tuple:
        return 200, {"reclaimed": self.broker.reclaim_expired()}

    def _post_requeue(self, p: dict) -> tuple:
        count = self.broker.requeue_quarantined(p.get("sweep"))
        return 200, {"count": count}

    def _post_session(self, p: dict) -> tuple:
        session = self.server.results_db().record_session(
            str(p["sweep"]), str(p.get("fn", "?")),
            int(p.get("total", 0)),
            host=str(p.get("host", "")) or self.client_address[0],
        )
        return 200, {"session": session}

    def _post_bless(self, p: dict) -> tuple:
        broker = self.broker
        db = self.server.results_db()
        blessed = []
        skipped = []
        for sweep, fn, _total, _traced, _created in broker.sweeps():
            if not broker.settled(sweep):
                skipped.append([sweep, fn])
                continue
            rows = broker.result_rows(sweep)
            if not rows:
                continue
            count = db.bless(fn, rows, sweep=sweep)
            blessed.append([sweep, fn, count])
        return 200, {"blessed": blessed, "skipped": skipped}

    _POST_ROUTES = {
        "/api/enqueue": _post_enqueue,
        "/api/claim": _post_claim,
        "/api/heartbeat": _post_heartbeat,
        "/api/complete": _post_complete,
        "/api/fail": _post_fail,
        "/api/reclaim": _post_reclaim,
        "/api/requeue": _post_requeue,
        "/api/session": _post_session,
        "/api/bless": _post_bless,
    }


def make_broker_server(
    directory,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_ttl: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backoff_base: Optional[float] = None,
    token: Optional[str] = None,
    readonly: bool = False,
    verbose: bool = False,
    handler_base=None,
) -> ThreadingHTTPServer:
    """A ready-to-run threading broker server over *directory*.

    ``port=0`` binds an ephemeral port (read ``server.server_address``).
    *token* defaults to ``REPRO_AUTH_TOKEN``; *handler_base* lets fault-
    injection tests substitute a misbehaving handler subclass.
    """
    handler = type(
        "BoundBrokerRequestHandler",
        (handler_base or BrokerRequestHandler,),
        {"verbose": verbose},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.broker = Broker(
        directory, lease_ttl=lease_ttl, max_attempts=max_attempts,
        backoff_base=backoff_base,
    )
    server.auth = AuthPolicy(token=resolve_token(token), readonly=readonly)
    # ResultsDB holds one sqlite connection (not thread-safe), so the
    # threading server hands each handler thread its own instance.
    db_local = threading.local()
    db_dir = Path(directory)

    def results_db() -> ResultsDB:
        db = getattr(db_local, "db", None)
        if db is None:
            db = ResultsDB.for_broker(db_dir)
            db_local.db = db
        return db

    server.results_db = results_db
    return server


def serve(
    directory,
    host: str = "127.0.0.1",
    port: int = 8751,
    lease_ttl: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backoff_base: Optional[float] = None,
    token: Optional[str] = None,
    readonly: bool = False,
    verbose: bool = False,
) -> None:
    """Serve the broker at *directory* until interrupted (the
    ``serve`` CLI verb of ``python -m repro.experiments``)."""
    server = make_broker_server(
        directory, host=host, port=port, lease_ttl=lease_ttl,
        max_attempts=max_attempts, backoff_base=backoff_base,
        token=token, readonly=readonly, verbose=verbose,
    )
    bound_host, bound_port = server.server_address[:2]
    print(
        f"serving broker {directory} on http://{bound_host}:{bound_port}"
        + (" (readonly)" if readonly else ""),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
