"""Figure 5: average cycles per core switch (log scale).

"Most benchmarks fall in the range of tens of billions of cycles per
core switch which is clearly enough to amortize the switching cost"
(~1000 cycles per switch).  Our benchmarks are time-scaled by ~1/50, so
the amortization ratios — cycles-per-switch over switch cost — are the
comparable quantity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.scheduler.affinity import MIGRATION_CYCLES
from repro.experiments.table1 import Table1Result, run as run_table1
from repro.experiments.report import format_table


@dataclass
class Fig5Result:
    table1: Table1Result

    def amortization(self, name: str) -> float:
        """Cycles-per-switch over the switch cost for one benchmark."""
        for row in self.table1.rows:
            if row.name == name:
                return row.cycles_per_switch / MIGRATION_CYCLES
        raise KeyError(name)


def run(table1: Table1Result = None) -> Fig5Result:
    return Fig5Result(table1 or run_table1())


def format_result(result: Fig5Result) -> str:
    rows = []
    for row in result.table1.rows:
        cps = row.cycles_per_switch
        if math.isinf(cps):
            rendered = "inf (no switches)"
            log10 = "-"
        else:
            rendered = f"{cps:.3e}"
            log10 = f"{math.log10(cps):.1f}"
        rows.append((row.name, rendered, log10))
    return format_table(
        ("benchmark", "cycles/switch", "log10"),
        rows,
        title="Figure 5: average cycles per core switch (log scale)",
    )


if __name__ == "__main__":
    print(format_result(run()))
